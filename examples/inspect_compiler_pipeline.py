"""Walk one kernel through every stage of the compiler substrate.

This example is about the *substrate* rather than the learning: it shows the
loop extractor, the structured IR, the dependence/reduction analyses, the
legality verdict, the baseline cost model's choice, the brute-force landscape
and the simulated cycle breakdown for one kernel — everything the RL agent's
reward is built from.

Run with:  python examples/inspect_compiler_pipeline.py
"""

from repro.analysis.loopinfo import analyze_loop
from repro.core.loop_extractor import extract_loops
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.ir.printer import print_function
from repro.machine.description import MachineDescription
from repro.simulator.engine import Simulator
from repro.vectorizer.bruteforce import brute_force_search
from repro.vectorizer.legality import check_legality

SOURCE = """
short samples[8192];
int history[8192];

int smooth(int threshold) {
    int energy = 0;
    for (int i = 1; i < 8191; i++) {
        int centre = (int) samples[i];
        int blended = (centre + samples[i - 1] + samples[i + 1]) / 3;
        history[i] = (blended > threshold ? threshold : blended);
        energy += blended * blended;
    }
    return energy;
}
"""


def main() -> None:
    kernel = LoopKernel(name="smooth", source=SOURCE, function_name="smooth",
                        bindings={"threshold": 100})
    machine = MachineDescription()
    pipeline = CompileAndMeasure(machine=machine)

    print("=== 1. loop extraction ===")
    loops = extract_loops(kernel.source, function_name=kernel.function_name)
    for loop in loops:
        print(f"loop #{loop.loop_index} at line {loop.source_line}, "
              f"nest depth {loop.nest_depth}")

    print("\n=== 2. structured loop IR ===")
    ir_function = pipeline.lower_kernel(kernel)
    print(print_function(ir_function))

    print("\n=== 3. analysis ===")
    loop = ir_function.innermost_loops()[0]
    analysis = analyze_loop(ir_function, loop)
    print(f"trip count          : {analysis.trip_count}")
    print(f"operation mix       : {analysis.operation_mix.as_dict()}")
    print(f"access patterns     : "
          f"{[(p.access.array, p.kind, p.stride_elements) for p in analysis.access_patterns]}")
    print(f"reductions          : {[str(r) for r in analysis.reductions]}")
    print(f"predicated          : {analysis.has_predicates}")
    legality = check_legality(analysis, machine)
    print(f"legality            : {legality.describe()}")

    print("\n=== 4. baseline cost model ===")
    decision = pipeline.baseline_model.decide_loop(ir_function, loop)
    print(decision)
    print(f"cost-per-lane table : "
          f"{ {vf: round(c, 2) for vf, c in decision.cost_per_lane.items()} }")

    print("\n=== 5. brute-force landscape ===")
    simulator = Simulator(machine=machine, bindings=kernel.bindings)
    search = brute_force_search(ir_function, machine=machine, simulator=simulator)
    grid = search.grid_speedups(loop)
    vfs = sorted({vf for vf, _ in grid})
    ifs = sorted({interleave for _, interleave in grid})
    header = "VF\\IF " + " ".join(f"{interleave:>6}" for interleave in ifs)
    print(header)
    for vf in vfs:
        row = " ".join(f"{grid[(vf, interleave)]:6.2f}" for interleave in ifs)
        print(f"{vf:>5} {row}")
    best = search.best_factors[loop.loop_id]
    print(f"best factors: VF={best[0]}, IF={best[1]} "
          f"({search.speedup_over_baseline():.2f}x over the baseline)")

    print("\n=== 6. simulated cycle breakdown for the best factors ===")
    result = pipeline.measure_with_factors(kernel, {0: best})
    loop_cost = list(result.cost.loop_costs.values())[0]
    iteration = loop_cost.vector_iteration
    print(f"cycles total        : {result.cycles:.0f}")
    print(f"vector iterations   : {loop_cost.vector_iterations} "
          f"(+{loop_cost.epilogue_iterations} scalar epilogue iterations)")
    print(f"bound by            : {iteration.bound_by}")
    print(f"per-iteration parts : "
          f"{ {name: round(value, 2) for name, value in iteration.components.items()} }")
    print(f"estimated compile time: {result.compile_seconds * 1000:.1f} ms")


if __name__ == "__main__":
    main()
