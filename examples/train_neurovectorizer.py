"""Train the RL vectorizer and evaluate it on held-out benchmarks.

Reproduces a scaled-down version of the paper's main experiment (Figure 7):

1. generate a synthetic loop corpus (§3.2),
2. pretrain the code2vec embedding and train a PPO contextual bandit on the
   corpus with the execution-time-improvement reward (Eq. 2),
3. evaluate the frozen policy on the 12 held-out test benchmarks against
   random search, Polly, NNS, decision trees and brute force.

Reward evaluation can be sharded across worker processes and persisted to a
cross-run on-disk store:

    python examples/train_neurovectorizer.py --workers 4 --cache-dir .reward-store

A second invocation with the same ``--cache-dir`` warm-starts from disk and
recompiles nothing it has already measured.

Run with:  python examples/train_neurovectorizer.py  [--steps 4000] [--kernels 120]
"""

import argparse

from repro.core.pipeline import CompileAndMeasure
from repro.datasets.llvm_suite import llvm_vectorizer_suite, test_benchmarks
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.distributed import EvaluationService, EvaluationServiceConfig
from repro.evaluation.comparison import compare_methods, train_reference_agents
from repro.evaluation.report import (
    format_cache_stats_table,
    format_service_stats_table,
    format_speedup_table,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--steps", type=int, default=4000,
                        help="PPO environment steps (compilations)")
    parser.add_argument("--kernels", type=int, default=120,
                        help="number of synthetic training kernels")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0,
                        help="evaluation worker processes (0 = serial in-process)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="directory of the persistent reward store "
                             "(shared across runs; omit for memory-only)")
    arguments = parser.parse_args()

    print(f"generating {arguments.kernels} synthetic training kernels ...")
    kernels = list(
        generate_synthetic_dataset(
            SyntheticDatasetConfig(count=arguments.kernels, seed=arguments.seed)
        )
    )
    held_out = set(test_benchmarks().names())
    kernels.extend(k for k in llvm_vectorizer_suite() if k.name not in held_out)

    service = EvaluationService.from_config(
        CompileAndMeasure(),
        EvaluationServiceConfig(
            workers=arguments.workers, cache_dir=arguments.cache_dir
        ),
    )
    if arguments.workers or arguments.cache_dir:
        print(
            f"evaluation service: {arguments.workers} worker(s), "
            f"store={arguments.cache_dir or 'memory-only'}, "
            f"{getattr(service.cache, 'preloaded', 0)} measurement(s) "
            "warm-started from disk"
        )

    try:
        print(f"training (pretraining + {arguments.steps} PPO steps) ...")
        trained = train_reference_agents(
            kernels,
            rl_steps=arguments.steps,
            rl_batch_size=250,
            learning_rate=5e-4,
            pretrain_epochs=1,
            seed=arguments.seed,
            evaluation_service=service,
        )
        curve = [round(value, 3) for value in trained.history.reward_curve()]
        print(f"reward-mean curve over training: {curve}")

        print("evaluating on the 12 held-out test benchmarks ...")
        comparison = compare_methods(list(test_benchmarks()), trained)
        print()
        print(
            format_speedup_table(
                comparison.speedups,
                comparison.methods,
                title="Performance normalised to the baseline cost model (Figure 7 analogue)",
            ).render()
        )
        print()
        for method in comparison.methods:
            print(f"  average {method:14s}: {comparison.average(method):5.2f}x")
        rl_vs_brute = comparison.average("rl") / comparison.average("brute_force")
        print(f"\nRL captures {rl_vs_brute * 100:.0f}% of the brute-force oracle's gain.")

        print()
        print(format_cache_stats_table(service.cache.stats).render())
        store = getattr(service.cache, "store", None)
        print()
        print(
            format_service_stats_table(
                service.stats,
                store_stats=store.stats if store is not None else None,
                preloaded=getattr(service.cache, "preloaded", 0),
            ).render()
        )
    finally:
        service.close()
        closer = getattr(service.cache, "close", None)
        if closer is not None:
            closer()


if __name__ == "__main__":
    main()
