"""Serve a trained policy behind the compile service and query it.

Trains a tiny joint policy, stands up a :class:`repro.serving.CompileService`
on it, and sends a burst of requests two ways: in process (zero
serialization) and over the newline-delimited-JSON TCP front end.  The
burst mixes tasks and duplicates, so the printed stats table shows
coalescing, micro-batch sizes and the three answer tiers in action.

    python examples/serve_policy.py                # in-process + TCP
    python examples/serve_policy.py --no-tcp       # in-process only
    python examples/serve_policy.py --requests 32  # a bigger burst

See ``examples/train_neurovectorizer.py`` for full training runs and the
README's *Serving* section for the service's knobs.
"""

import argparse

from repro.core.framework import NeuroVectorizer, TrainingConfig
from repro.datasets.synthetic import (
    SyntheticDatasetConfig,
    generate_synthetic_dataset,
)
from repro.serving import (
    CompileRequest,
    CompileServer,
    CompileService,
    InProcessClient,
    TCPClient,
)

USER_SOURCE = """
float prices[4096], weights[4096];

float weighted_sum() {
    float total = 0;
    for (int i = 0; i < 4096; i++) {
        total += prices[i] * weights[i];
    }
    return total;
}
"""

TASKS = ("vectorization", "unrolling")


def train_tiny_framework() -> NeuroVectorizer:
    kernels = list(
        generate_synthetic_dataset(SyntheticDatasetConfig(count=6, seed=0))
    )
    config = TrainingConfig(
        tasks=list(TASKS),
        rl_total_steps=48,
        rl_batch_size=24,
        learning_rate=1e-3,
        pretrain_epochs=0,
        seed=0,
    )
    framework, _artifacts = NeuroVectorizer.train(kernels, config)
    return framework


def describe(response) -> str:
    if not response.ok:
        return f"ERROR: {response.error}"
    decisions = ", ".join(
        f"site {site}: {action}" for site, action in sorted(response.decisions.items())
    )
    return (
        f"task={response.task:<13} tier={response.tier:<8} "
        f"coalesced={str(response.coalesced):<5} "
        f"speedup={response.speedup:5.2f}x  [{decisions}]"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--requests", type=int, default=12, help="burst size (mixed tasks + dups)"
    )
    parser.add_argument(
        "--no-tcp", action="store_true", help="skip the TCP front-end demo"
    )
    arguments = parser.parse_args()

    print("training a tiny joint policy (vectorization + unrolling)...")
    framework = train_tiny_framework()

    # One service straight off the framework: same tasks, pipeline, reward
    # cache (so a warm cache serves the "store" tier) and embedding model.
    service = CompileService.from_framework(framework, max_batch_size=16)
    burst = [
        CompileRequest(
            source=USER_SOURCE,
            task=TASKS[index % len(TASKS)],
            name=f"user{index}",
            request_id=f"req-{index}",
        )
        for index in range(arguments.requests)
    ]

    print(f"\n=== in-process burst ({len(burst)} requests) ===")
    client = InProcessClient(service)
    with service:
        for response in client.optimize_many(burst):
            print(f"  {describe(response)}")

        if not arguments.no_tcp:
            print("\n=== the same kernel over TCP ===")
            with CompileServer(service) as server:
                host, port = server.address
                print(f"  listening on {host}:{port}")
                with TCPClient.connect(server.address) as tcp:
                    response = tcp.optimize(
                        CompileRequest(source=USER_SOURCE, task="vectorization")
                    )
                    print(f"  {describe(response)}")

    print()
    print(service.stats_report().render())
    framework.close()


if __name__ == "__main__":
    main()
