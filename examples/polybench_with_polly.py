"""Train an RL agent to drive Polly: per-nest tile-size/fusion decisions.

The Figure 8 observation — Polly's tiling and the learned factors compose —
motivated making the polyhedral pass a first-class *optimization task*.
This demo trains the same PPO contextual bandit the paper uses for (VF, IF)
on the ``polly-tiling`` task instead: for every top-level nest of every
PolyBench-like kernel the agent picks a tile size (1 = leave alone) and
whether to run fusion, rewarded by simulated execution-time improvement.

    python examples/polybench_with_polly.py                       # RL on tiling
    python examples/polybench_with_polly.py --task vectorization  # same pipeline, (VF, IF)
    python examples/polybench_with_polly.py --steps 2000          # longer training

After training it reports per-kernel speed-ups of the learned per-nest
decisions against the untransformed baseline, next to the fixed-config
:class:`repro.polly.PollyOptimizer` (Polly's own 32x32 defaults) for
reference.
"""

import argparse

from repro.core.framework import NeuroVectorizer, TrainingConfig
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.polybench import polybench_suite
from repro.polly.optimizer import PollyOptimizer
from repro.tasks import available_tasks


def fixed_polly_speedup(pipeline: CompileAndMeasure, kernel) -> float:
    """Speed-up of the fixed-configuration Polly pass over the baseline."""
    baseline = pipeline.measure_baseline(kernel)
    transformed = PollyOptimizer().optimize(pipeline.lower_kernel(kernel))
    return baseline.cycles / pipeline.measure_function(kernel, transformed).cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--task",
        default="polly-tiling",
        choices=available_tasks(),
        help="which optimization task to train",
    )
    parser.add_argument("--steps", type=int, default=600,
                        help="PPO environment steps")
    parser.add_argument("--batch-size", type=int, default=60)
    parser.add_argument("--learning-rate", type=float, default=1e-3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=0,
                        help="evaluation worker processes (0 = serial)")
    arguments = parser.parse_args()

    kernels = list(polybench_suite())
    print(f"training the RL agent on task {arguments.task!r} "
          f"over {len(kernels)} PolyBench kernels ...")
    config = TrainingConfig(
        task=arguments.task,
        rl_total_steps=arguments.steps,
        rl_batch_size=arguments.batch_size,
        learning_rate=arguments.learning_rate,
        seed=arguments.seed,
        workers=arguments.workers,
    )
    framework, artifacts = NeuroVectorizer.train(kernels, config)
    print(f"  iterations: {len(artifacts.history.iterations)}, "
          f"final mean reward: {artifacts.history.final_reward_mean:+.4f}")

    print()
    print(f"{'kernel':<12s} {'learned':>9s} {'fixed polly':>12s}   decisions")
    for kernel in kernels:
        result = framework.optimize_kernel(kernel)
        fixed = fixed_polly_speedup(framework.pipeline, kernel)
        decisions = ", ".join(
            f"#{site}:" + "/".join(str(v) for v in action)
            for site, action in sorted(result.decisions.items())
        )
        print(f"{kernel.name:<12s} {result.speedup_over_baseline:8.2f}x "
              f"{fixed:11.2f}x   {decisions}")

    print()
    print(framework.cache_stats_report().render())
    framework.close()


if __name__ == "__main__":
    main()
