"""Combine the polyhedral optimizer (Polly) with learned vectorization factors.

Reproduces the Figure 8 experiment on the PolyBench-like suite: the baseline
cost model, Polly's tiling/fusion alone, the learned RL factors alone, and
Polly + RL combined.  On these locality-bound linear-algebra kernels Polly is
strong, and the combination is the best configuration — the observation that
leads the paper to propose combining the two (§4.1, §5).

Run with:  python examples/polybench_with_polly.py
"""

from repro.core.loop_extractor import extract_loops
from repro.datasets.polybench import polybench_suite
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.evaluation.comparison import compare_methods, train_reference_agents
from repro.evaluation.report import format_speedup_table
from repro.polly.optimizer import PollyOptimizer


def main() -> None:
    print("training the RL vectorizer on the synthetic corpus ...")
    kernels = list(generate_synthetic_dataset(SyntheticDatasetConfig(count=100, seed=0)))
    trained = train_reference_agents(kernels, rl_steps=3000, rl_batch_size=250,
                                     learning_rate=5e-4, seed=0)

    print("running baseline / Polly / RL / Polly+RL on PolyBench ...")
    comparison = compare_methods(
        list(polybench_suite()),
        trained,
        include_polly=True,
        include_supervised=False,
        include_combined=True,
    )
    print()
    print(
        format_speedup_table(
            comparison.speedups,
            comparison.methods,
            title="PolyBench, normalised to the baseline (Figure 8 analogue)",
        ).render()
    )
    print()
    for method in comparison.methods:
        print(f"  average {method:12s}: {comparison.average(method):5.2f}x")

    # Show what Polly actually did to one kernel.
    print("\nWhat Polly did to gemm:")
    optimizer = PollyOptimizer()
    gemm = polybench_suite().by_name("gemm")
    transformed = optimizer.optimize(trained.pipeline.lower_kernel(gemm))
    report = optimizer.last_report
    print(f"  SCoPs detected : {report.scop_count}")
    print(f"  nests tiled    : {report.tiled_nests}")
    print(f"  loops fused    : {report.fused_loops}")
    print(f"  loop count     : {len(trained.pipeline.lower_kernel(gemm).all_loops())} "
          f"-> {len(transformed.all_loops())} (after tiling)")
    print(f"  innermost loops seen by the vectorizer: "
          f"{len(transformed.innermost_loops())}")
    loops = extract_loops(gemm.source, function_name=gemm.function_name)
    print(f"  loops the agent decides factors for   : {len(loops)}")


if __name__ == "__main__":
    main()
