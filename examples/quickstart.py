"""Quickstart: vectorize a C loop kernel end-to-end.

Runs the full NeuroVectorizer pipeline on a small kernel: extract the loop,
embed it, pick (VF, IF), inject the ``#pragma clang loop`` hint, compile on
the simulated machine and report the speed-up over the compiler's own cost
model.  The agent used here is the brute-force oracle so the example needs no
training; see ``examples/train_neurovectorizer.py`` for the RL path.

Run with:  python examples/quickstart.py
"""

from repro.agents.brute_force import BruteForceAgent
from repro.core.framework import NeuroVectorizer, build_embedding_model
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.motivating import dot_product_kernel

USER_SOURCE = """
float prices[4096], weights[4096];

float weighted_sum() {
    float total = 0;
    for (int i = 0; i < 4096; i++) {
        total += prices[i] * weights[i];
    }
    return total;
}
"""


def main() -> None:
    pipeline = CompileAndMeasure()
    # The embedding vocabulary only needs some representative loops; the
    # motivating kernel is enough for this tiny example.
    embedding = build_embedding_model([dot_product_kernel()])
    framework = NeuroVectorizer(embedding, BruteForceAgent(pipeline), pipeline)

    result = framework.vectorize_source(USER_SOURCE, function_name="weighted_sum")

    print("=== NeuroVectorizer quickstart ===")
    print()
    print("Chosen factors per innermost loop:")
    for decision in result.decisions:
        print(
            f"  loop #{decision.loop_index} in {decision.function_name}: "
            f"VF={decision.vf}, IF={decision.interleave}  ->  {decision.as_pragma()}"
        )
    print()
    print("Source with injected pragmas:")
    print(result.vectorized_source)
    print(f"baseline cycles : {result.baseline_cycles:12.0f}")
    print(f"tuned cycles    : {result.cycles:12.0f}")
    print(f"speedup         : {result.speedup_over_baseline:12.2f}x")
    print(f"reward (eq. 2)  : {result.reward:12.3f}")


if __name__ == "__main__":
    main()
