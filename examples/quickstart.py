"""Quickstart: optimize a C loop kernel end-to-end with a pluggable task.

Runs the full pipeline on a small kernel for any registered optimization
task: extract the decision sites, embed them, pick an action per site with
the brute-force oracle (so the example needs no training), apply the task's
transform and report the speed-up over the compiler's own cost model.

    python examples/quickstart.py                        # (VF, IF) pragmas
    python examples/quickstart.py --task polly-tiling    # tile/fusion per nest
    python examples/quickstart.py --task unrolling       # unroll_count pragmas

See ``examples/train_neurovectorizer.py`` for the RL path and
``examples/polybench_with_polly.py`` for training the Polly task.
"""

import argparse

from repro.agents.brute_force import BruteForceAgent
from repro.core.framework import NeuroVectorizer, build_embedding_model
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.datasets.motivating import dot_product_kernel
from repro.tasks import available_tasks, resolve_task

USER_SOURCE = """
float prices[4096], weights[4096];
float totals[512][512], updates[512][512];

float weighted_sum() {
    float total = 0;
    for (int i = 0; i < 4096; i++) {
        total += prices[i] * weights[i];
    }
    for (int r = 0; r < 512; r++) {
        for (int c = 0; c < 512; c++) {
            totals[r][c] = totals[r][c] + updates[c][r];
        }
    }
    return total;
}
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--task",
        default="vectorization",
        choices=available_tasks(),
        help="which optimization task decides per site",
    )
    arguments = parser.parse_args()

    task = resolve_task(arguments.task)
    pipeline = CompileAndMeasure()
    # The embedding vocabulary only needs some representative loops; the
    # motivating kernel is enough for this tiny example.
    embedding = build_embedding_model([dot_product_kernel()])
    agent = BruteForceAgent(pipeline, task=task)
    framework = NeuroVectorizer(embedding, agent, pipeline, task=task)

    kernel = LoopKernel(
        name="user_kernel",
        source=USER_SOURCE,
        function_name="weighted_sum",
        suite="user",
    )
    result = framework.optimize_kernel(kernel)

    print(f"=== NeuroVectorizer quickstart ({task.name}) ===")
    print()
    print("Chosen action per decision site:")
    for site in task.decision_sites(kernel):
        action = result.decisions.get(site.index)
        rendered = ", ".join(
            f"{label}={value}" for label, value in zip(task.action_labels, action)
        )
        print(f"  site #{site.index} ({site.description}): {rendered}")
    if result.transformed_source:
        print()
        print("Source with injected pragmas:")
        print(result.transformed_source)
    if result.description:
        print(f"transform       : {result.description}")
    print(f"baseline cycles : {result.baseline_cycles:12.0f}")
    print(f"tuned cycles    : {result.cycles:12.0f}")
    print(f"speedup         : {result.speedup_over_baseline:12.2f}x")
    print(f"reward (eq. 2)  : {result.reward:12.3f}")


if __name__ == "__main__":
    main()
