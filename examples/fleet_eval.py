"""Train against a two-worker evaluation fleet with speculative prefetch.

Stands up two :class:`repro.fleet.FleetWorker` daemons on localhost
ephemeral ports, then trains a tiny policy with reward evaluation sharded
across them over TCP.  While the trainer is busy inferring, the
policy-driven prefetcher speculatively evaluates the most likely next
actions on idle workers, so most async reward waits resolve as store hits.
The printed fleet table shows the dispatch split, the robustness counters
(nothing is lost here — see ``tests/test_fleet.py`` for the
kill-a-worker-mid-batch runs) and the speculative-prefetch ledger.

    python examples/fleet_eval.py
    python examples/fleet_eval.py --workers 3 --steps 320
    python examples/fleet_eval.py --top-k 0        # prefetch disabled

In production the workers run on other hosts
(``python -m repro.fleet.worker --host 0.0.0.0 --port 7070``) and training
points at them via ``TrainingConfig(fleet_workers=["hostA:7070", ...])``;
everything below is identical apart from the addresses.
"""

import argparse

from repro.core.framework import NeuroVectorizer, TrainingConfig
from repro.datasets.synthetic import (
    SyntheticDatasetConfig,
    generate_synthetic_dataset,
)
from repro.fleet import FleetWorker


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2, help="fleet size")
    parser.add_argument("--steps", type=int, default=160, help="PPO steps")
    parser.add_argument(
        "--top-k",
        type=int,
        default=35,
        help="actions speculatively evaluated per upcoming sample (0 = off)",
    )
    arguments = parser.parse_args()

    kernels = list(
        generate_synthetic_dataset(SyntheticDatasetConfig(count=4, seed=0))
    )

    print(f"starting {arguments.workers} localhost fleet workers...")
    workers = [FleetWorker().start() for _ in range(arguments.workers)]
    addresses = ["%s:%d" % worker.address for worker in workers]
    for name, address in zip((w.name for w in workers), addresses):
        print(f"  {name} listening on {address}")

    try:
        config = TrainingConfig(
            tasks=["vectorization"],
            rl_total_steps=arguments.steps,
            rl_batch_size=32,
            pretrain_epochs=0,
            seed=0,
            fleet_workers=addresses,
            fleet_prefetch_top_k=arguments.top_k,
        )
        print(f"\ntraining with sharded fleet evaluation ({arguments.steps} steps)...")
        framework, _artifacts = NeuroVectorizer.train(kernels, config)

        print()
        print(framework.service_stats_report().render())
        print()
        print(framework.cache_stats_report().render())

        stats = framework.evaluation_service.stats
        print(
            f"\n{stats.waits_converted:.0%} of async reward waits were "
            "converted into store hits by speculative prefetch"
        )
        framework.close()
    finally:
        for worker in workers:
            worker.stop()


if __name__ == "__main__":
    main()
