"""The fleet worker daemon: a TCP reward-measurement server.

A :class:`FleetWorker` is the multi-host analogue of the process worker in
:mod:`repro.distributed.worker`: it hosts its own
:class:`~repro.core.pipeline.CompileAndMeasure` pipeline per coordinator
connection (built from the coordinator's ``hello``, so measurements run
under exactly the caller's machine model and symbol defaults), keeps
kernels by content hash and tasks by name — each shipped at most once per
connection — and answers ``site`` and ``apply`` work with the *same code
paths* the serial batcher runs, so fleet answers are byte-identical to
serial ones.

The worker holds one worker-local reward cache shared by all connections.
With ``store_dir`` it is a :class:`~repro.distributed.store.DiskBackedRewardCache`
over the shared :class:`~repro.distributed.store.PersistentRewardStore`
directory — the fleet-wide cache: the store's append-only multi-writer
segments mean many workers (and the coordinator itself) write the same
directory safely, and a worker restarted against it comes back warm.

Threading mirrors :class:`repro.serving.server.CompileServer`: one accept
loop, and per connection a reader (decode + route), an evaluator draining
a priority queue (demand before speculative prefetch), and a writer
draining an outbox.  :class:`WorkerFaults` injects the failure modes the
fault-tolerance tests exercise — abrupt death mid-batch, silent
heartbeat loss, a torn connection.
"""

from __future__ import annotations

import argparse
import queue as _queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cache.reward_cache import CachedMeasurement, RewardCache
from repro.distributed.worker import kernel_from_payload
from repro.fleet.protocol import (
    FleetError,
    FleetProtocolError,
    b64_to_pickle,
    decode_message,
    encode_entries,
    encode_message,
    pong_message,
    register_message,
    result_message,
    welcome_message,
)

_WORKER_SEQUENCE = [0]
_WORKER_SEQUENCE_LOCK = threading.Lock()


def _next_worker_name() -> str:
    with _WORKER_SEQUENCE_LOCK:
        _WORKER_SEQUENCE[0] += 1
        return f"fleet-worker-{_WORKER_SEQUENCE[0]}"


@dataclass
class WorkerFaults:
    """Failure injection for the fault-tolerance tests.

    ``die_after`` — after answering N work items, the whole worker drops
    abruptly (listener and every connection closed with no ``bye``), like
    a host losing power; coordinators see EOF.  ``drop_heartbeats_after``
    — after N answers the worker goes silent: it keeps reading but sends
    nothing (no pongs, no results), so only a heartbeat timeout can
    unmask it.  ``tear_after`` — after N answers the current connection
    alone is torn; the worker itself stays up for fresh dials.
    """

    die_after: Optional[int] = None
    drop_heartbeats_after: Optional[int] = None
    tear_after: Optional[int] = None


class _Session:
    """One coordinator connection: its pipeline, payloads, and threads."""

    def __init__(self, worker: "FleetWorker", connection: socket.socket):
        self.worker = worker
        self.connection = connection
        self.pipeline = None
        self.kernels: Dict[str, object] = {}
        self.tasks: Dict[str, object] = {}
        # (priority, arrival sequence, message): demand (0) outranks
        # prefetch (1); arrival order breaks ties so demand stays FIFO.
        # The stop sentinel sorts first of all so shutdown never waits
        # behind queued speculation.
        self.work: "_queue.PriorityQueue" = _queue.PriorityQueue()
        self.outbox: "_queue.Queue" = _queue.Queue()
        self._sequence = 0
        self.torn = False

    STOP = (-1, -1, None)

    def enqueue_work(self, message: dict) -> None:
        self._sequence += 1
        priority = int(message.get("priority", 0))
        self.work.put((priority, self._sequence, message))

    def send(self, payload: dict) -> None:
        self.outbox.put(payload)

    def tear(self) -> None:
        """Abruptly drop this connection (no ``bye``)."""
        if self.torn:
            return
        self.torn = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.connection.close()


class FleetWorker:
    """Serve reward measurements to fleet coordinators over TCP.

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    :meth:`start`.  ``store_dir`` points the worker-local cache at the
    shared persistent store directory (the fleet-wide cache).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_dir=None,
        name: Optional[str] = None,
        faults: Optional[WorkerFaults] = None,
    ):
        self.name = name or _next_worker_name()
        self.faults = faults or WorkerFaults()
        self._host = host
        self._port = port
        self._store_dir = store_dir
        self.cache = None
        self._cache_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._sessions: List[_Session] = []
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        # Observability for the payload-dedup and fault tests.
        self.kernels_received = 0
        self.tasks_received = 0
        self.evaluations = 0
        self.results_sent = 0
        self._silent = False

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._listener is None:
            raise FleetError("fleet worker is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> "FleetWorker":
        if self._listener is not None:
            return self
        if self.cache is None:
            if self._store_dir is not None:
                from repro.distributed.store import DiskBackedRewardCache

                self.cache = DiskBackedRewardCache.open(self._store_dir)
            else:
                self.cache = RewardCache()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(32)
        listener.settimeout(0.2)
        self._listener = listener
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{self.name}-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join()
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        with self._lock:
            sessions, self._sessions = self._sessions, []
            threads, self._threads = self._threads, []
        for session in sessions:
            session.work.put(_Session.STOP)
            session.outbox.put(None)
            session.tear()
        current = threading.current_thread()
        for thread in threads:
            # die() is called from a session's own evaluator thread.
            if thread is not current:
                thread.join(timeout=5.0)

    def die(self) -> None:
        """Abrupt full-worker death: every socket closed, nothing sent."""
        self._silent = True
        self.stop()

    def __enter__(self) -> "FleetWorker":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- connections ----------------------------------------------------------

    def dial(self, host: str, port: int) -> None:
        """Register with a *listening* coordinator instead of being dialed."""
        if self.cache is None:
            self.start()
        connection = socket.create_connection((host, port), timeout=10.0)
        connection.settimeout(None)
        connection.sendall(encode_message(register_message(self.name)))
        self._spawn_session(connection)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            connection.settimeout(None)
            self._spawn_session(connection)

    def _spawn_session(self, connection: socket.socket) -> None:
        session = _Session(self, connection)
        reader = threading.Thread(
            target=self._read_loop, args=(session,),
            name=f"{self.name}-read", daemon=True,
        )
        evaluator = threading.Thread(
            target=self._evaluate_loop, args=(session,),
            name=f"{self.name}-eval", daemon=True,
        )
        writer = threading.Thread(
            target=self._write_loop, args=(session,),
            name=f"{self.name}-write", daemon=True,
        )
        with self._lock:
            self._sessions.append(session)
            self._threads.extend((reader, evaluator, writer))
        reader.start()
        evaluator.start()
        writer.start()

    # -- message handling -----------------------------------------------------

    def _read_loop(self, session: _Session) -> None:
        stream = session.connection.makefile("rb")
        try:
            for line in stream:
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except FleetProtocolError:
                    continue
                kind = message.get("type")
                if kind == "hello":
                    self._handle_hello(session, message)
                elif kind == "kernel":
                    session.kernels[message["hash"]] = kernel_from_payload(
                        message["kernel"]
                    )
                    self.kernels_received += 1
                elif kind == "task":
                    session.tasks[message["name"]] = b64_to_pickle(message["data"])
                    self.tasks_received += 1
                elif kind == "work":
                    session.enqueue_work(message)
                elif kind == "ping":
                    session.send(pong_message(message.get("n", 0)))
                elif kind == "bye":
                    break
        except (OSError, ValueError):
            pass
        finally:
            stream.close()
            session.work.put(_Session.STOP)
            session.outbox.put(None)
            session.tear()

    def _handle_hello(self, session: _Session, message: dict) -> None:
        from repro.core.pipeline import CompileAndMeasure

        machine = b64_to_pickle(message["machine"])
        session.pipeline = CompileAndMeasure(
            machine=machine,
            default_symbol_value=int(message.get("default_symbol_value", 100)),
        )
        session.send(welcome_message(self.name))

    def _write_loop(self, session: _Session) -> None:
        try:
            while True:
                payload = session.outbox.get()
                if payload is None:
                    return
                if self._silent:
                    # Fault injection: the worker is "alive" but mute —
                    # results and pongs vanish, only a heartbeat timeout
                    # can detect it.
                    continue
                session.connection.sendall(encode_message(payload))
                if payload.get("type") == "result":
                    self.results_sent += 1
                    self._after_result(session)
        except OSError:
            return

    def _after_result(self, session: _Session) -> None:
        faults = self.faults
        if (
            faults.drop_heartbeats_after is not None
            and self.results_sent >= faults.drop_heartbeats_after
        ):
            self._silent = True
        if faults.tear_after is not None and self.results_sent >= faults.tear_after:
            session.tear()

    # -- evaluation -----------------------------------------------------------

    def _evaluate_loop(self, session: _Session) -> None:
        while True:
            item = session.work.get()
            _priority, _sequence, message = item
            if message is None:
                return
            faults = self.faults
            if faults.die_after is not None and self.evaluations >= faults.die_after:
                self.die()
                return
            self.evaluations += 1
            try:
                session.send(self._evaluate(session, message))
            except OSError:
                return

    def _evaluate(self, session: _Session, message: dict) -> dict:
        import traceback

        request_id = int(message.get("id", 0))
        try:
            if session.pipeline is None:
                raise FleetError("work before hello: no pipeline configured")
            pipeline = session.pipeline
            kernel = session.kernels[message["hash"]]
            task_name = message["task"]
            task = session.tasks.get(task_name)
            if task is None:
                from repro.tasks import get_task

                task = session.tasks[task_name] = get_task(task_name)
            if message.get("kind") == "apply":
                # Exactly the serial whole-kernel path: cached baseline +
                # ``task.apply`` against a fresh per-request cache, whose
                # entries (precisely this application's measurements) ship
                # back and also warm the worker-local cache.
                local = RewardCache()
                local.measure_baseline(pipeline, kernel)
                decisions = {
                    int(site): tuple(int(value) for value in chosen)
                    for site, chosen in (message.get("decisions") or {}).items()
                }
                task.apply(pipeline, kernel, decisions, reward_cache=local)
                entries = local.items()
                with self._cache_lock:
                    for key, measurement in entries:
                        if self.cache.peek(key) is None:
                            self.cache.put(key, measurement)
                return result_message(request_id, entries=encode_entries(entries))
            action = tuple(int(value) for value in message["action"])
            key = self.cache.key_for(
                kernel,
                pipeline.machine,
                int(message["site"]),
                default_symbol_value=pipeline.default_symbol_value,
                action=action,
                task=task_name,
            )
            with self._cache_lock:
                cached = self.cache.peek(key)
            if cached is None:
                measured = task.evaluate(
                    pipeline, kernel, int(message["site"]), action
                )
                cached = CachedMeasurement(
                    cycles=measured.cycles,
                    compile_seconds=measured.compile_seconds,
                )
                with self._cache_lock:
                    if self.cache.peek(key) is None:
                        self.cache.put(key, cached)
            return result_message(
                request_id,
                cycles=cached.cycles,
                compile_seconds=cached.compile_seconds,
            )
        except Exception:
            return result_message(request_id, error=traceback.format_exc())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a fleet evaluation worker daemon."
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--store-dir", default=None,
                        help="shared persistent reward-store directory")
    parser.add_argument("--name", default=None)
    parser.add_argument("--coordinator", default=None, metavar="HOST:PORT",
                        help="dial in and register with a listening coordinator")
    args = parser.parse_args(argv)
    worker = FleetWorker(
        host=args.host, port=args.port, store_dir=args.store_dir, name=args.name
    )
    worker.start()
    if args.coordinator:
        host, _, port = args.coordinator.rpartition(":")
        worker.dial(host, int(port))
        print(f"{worker.name} registered with {args.coordinator}", flush=True)
    else:
        host, port = worker.address
        print(f"{worker.name} listening on {host}:{port}", flush=True)
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        worker.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
