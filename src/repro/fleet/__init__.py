"""Fleet evaluation: multi-host sharded reward measurement.

The fleet extends :class:`repro.distributed.EvaluationService`'s sharding
across machines: :class:`FleetWorker` daemons serve measurements over a
newline-delimited-JSON TCP protocol, a :class:`FleetCoordinator` manages
connections/heartbeats/loss detection, and
:class:`FleetEvaluationService` exposes the whole thing behind the exact
local-service contract — byte-identical to serial, robust to worker
death (retry, re-shard, inline fallback), degrading gracefully to a
local service when no workers are reachable.
:class:`~repro.fleet.prefetch.SpeculativePrefetcher` uses idle fleet
capacity to evaluate the policy's likely next actions so async rollouts
hit the cache instead of waiting.
"""

from repro.fleet.coordinator import FleetCoordinator, FleetEvaluationService
from repro.fleet.prefetch import SpeculativePrefetcher
from repro.fleet.protocol import FleetError, FleetProtocolError
from repro.fleet.stats import FleetStats
from repro.fleet.worker import FleetWorker, WorkerFaults

__all__ = [
    "FleetCoordinator",
    "FleetEvaluationService",
    "FleetError",
    "FleetProtocolError",
    "FleetStats",
    "FleetWorker",
    "SpeculativePrefetcher",
    "WorkerFaults",
]
