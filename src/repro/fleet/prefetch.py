"""Speculative prefetch: evaluate the policy's likely next actions early.

While PPO is inside policy inference / the update step, the fleet's
workers are idle.  :class:`SpeculativePrefetcher` fills that window: after
each rollout chunk is submitted, it peeks at the environment's *upcoming*
samples (no RNG is consumed — rollout order is untouched), replays the
policy's deterministic forward pass over their observations, ranks the
joint action distribution of each sample, and asks the fleet to evaluate
the top-k most likely actions at low priority.  By the time the rollout
reaches those samples, the demanded keys resolve as store hits (or join
the in-flight speculation) instead of paying a dispatch-and-wait.

The ranking reuses the exact inference kernels ``act_batch`` runs
(:func:`repro.rl.policy._trunk_forward` + the stable softmax), and decodes
index tuples through the same per-lane action space the demand path uses
— so a speculated key is byte-identical to the demanded one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np


class SpeculativePrefetcher:
    """Rank likely next actions and warm the fleet cache with them.

    ``top_k``/``horizon`` default from the service's ``prefetch_top_k`` /
    ``prefetch_horizon`` knobs; ``horizon`` is how many upcoming samples
    to speculate on per call.  Safe to hold against duck-typed policies
    and environments — anything without the needed surface (``trunk``,
    ``heads_for``, ``peek_upcoming``) silently prefetches nothing.
    """

    #: Joint action spaces larger than this are not enumerated.
    MAX_JOINT_ACTIONS = 65536

    def __init__(self, env, policy, service, top_k=None, horizon=None):
        self.env = env
        self.policy = policy
        self.service = service
        if top_k is None:
            top_k = int(getattr(service, "prefetch_top_k", 0) or 0)
        self.top_k = int(top_k)
        if horizon is None:
            horizon = getattr(service, "prefetch_horizon", None)
        self.horizon = int(horizon) if horizon else 16

    def prefetch(self) -> int:
        """Issue one round of speculation; returns how many were issued."""
        if self.top_k <= 0:
            return 0
        if getattr(self.service, "workers", 0) == 0:
            return 0
        prefetch = getattr(self.service, "prefetch", None)
        peek = getattr(self.env, "peek_upcoming", None)
        if prefetch is None or peek is None:
            return 0
        if getattr(self.policy, "trunk", None) is None or not hasattr(
            self.policy, "heads_for"
        ):
            return 0
        upcoming = peek(self.horizon)
        if not upcoming:
            return 0
        issued = 0
        for task_name, samples in self._by_task(upcoming).items():
            issued += self._prefetch_task(task_name, samples)
        return issued

    def _by_task(self, samples) -> Dict[Optional[str], List[object]]:
        grouped: Dict[Optional[str], List[object]] = {}
        for sample in samples:
            name = getattr(sample, "task_name", None)
            if name is None:
                task = getattr(self.env, "task", None)
                name = getattr(task, "name", None)
            grouped.setdefault(name, []).append(sample)
        return grouped

    def _prefetch_task(self, task_name: Optional[str], samples) -> int:
        from repro.rl.policy import _stable_matmul, _trunk_forward

        try:
            bank = self.policy.heads_for(task_name)
        except (ValueError, KeyError):
            return 0
        if getattr(bank, "kind", None) != "discrete":
            return 0
        lane = (
            self.env.lane_for(task_name)
            if hasattr(self.env, "lane_for")
            else self.env
        )
        space = lane.action_space
        sizes = [len(menu) for menu in getattr(space, "menus", [])]
        if not sizes:
            return 0
        total = 1
        for size in sizes:
            total *= size
        if total > self.MAX_JOINT_ACTIONS:
            return 0
        observations = np.stack(
            [np.asarray(sample.observation, dtype=np.float64) for sample in samples]
        )
        hidden = _trunk_forward(self.policy.trunk, observations)
        # The act_batch softmax, per factored dimension.
        per_dim = []
        for head in bank.heads:
            logits = _stable_matmul(hidden, head.weight.data) + head.bias.data
            shifted = logits - logits.max(axis=1, keepdims=True)
            exps = np.exp(shifted)
            per_dim.append(exps / exps.sum(axis=1, keepdims=True))
        requests: List[Tuple[object, int, Tuple[int, ...]]] = []
        count = min(self.top_k, total)
        for row, sample in enumerate(samples):
            joint = per_dim[0][row]
            for probs in per_dim[1:]:
                joint = np.multiply.outer(joint, probs[row])
            flat = joint.reshape(-1)
            ranked = np.argsort(-flat, kind="stable")[:count]
            index_tuples = np.unravel_index(ranked, joint.shape)
            for position in range(count):
                raw = np.array(
                    [int(dim[position]) for dim in index_tuples], dtype=np.int64
                )
                decoded = space.decode(raw)
                requests.append((sample.kernel, sample.loop_index, decoded))
        if not requests:
            return 0
        return int(self.service.prefetch(requests, task=lane.task))
