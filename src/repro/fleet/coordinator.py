"""Fleet coordination: remote-worker connections and the evaluation facade.

Two layers:

* :class:`FleetCoordinator` owns the TCP connections — dialing workers (or
  accepting their dial-in registrations via :meth:`listen`), the hello/
  welcome handshake, per-worker reader threads, one heartbeat thread, and
  loss detection.  It turns everything that happens on the wire into two
  kinds of events on an inbox queue — ``("result", worker, message)`` and
  ``("lost", worker, None)`` — so all recovery logic runs single-threaded
  in the consumer.

* :class:`FleetEvaluationService` is the drop-in reward service over a
  coordinator.  It speaks the exact :class:`EvaluationService` contract —
  ``submit``/``evaluate`` returning :class:`EvaluationFuture`,
  ``measure_applications``, ``workers``/``cache``/``stats`` attributes —
  so every duck-typed consumer (``AsyncEvaluator``, ``evaluate_requests``,
  ``ComparisonRunner``) runs against the fleet unchanged.  Dedup against
  the cache, in-batch, and in-flight is byte-for-byte the local service's
  logic, so fleet results are byte-identical to serial regardless of
  sharding — and, because lost workers' orphaned keys are re-sharded onto
  survivors (bounded retries, exponential backoff) or evaluated inline
  when nobody survives, regardless of failures too.

Speculative prefetch rides the same machinery: :meth:`prefetch` dispatches
likely-next keys at low priority with an *empty* waiter list.  Demand that
arrives later either finds the answer in the cache (a prefetch **hit**) or
joins the in-flight request (**joined**); speculation nobody ever wanted
is **wasted**.  :class:`~repro.fleet.stats.FleetStats` tracks all three.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.reward_cache import (
    WHOLE_FUNCTION_APPLICATION,
    BatchOutcome,
    CachedMeasurement,
    EvaluationBatcher,
    RewardCache,
    RewardKey,
    normalize_requests,
)
from repro.distributed.service import EvaluationFuture, EvaluationService
from repro.distributed.worker import kernel_payload
from repro.fleet.protocol import (
    PRIORITY_PREFETCH,
    FleetError,
    FleetProtocolError,
    bye_message,
    decode_entries,
    decode_message,
    encode_message,
    hello_message,
    kernel_message,
    ping_message,
    task_message,
    work_message,
)
from repro.fleet.stats import FleetStats


class _RemoteWorker:
    """One connected fleet worker: socket, liveness, shipped payloads."""

    def __init__(self, name: str, connection: socket.socket):
        self.name = name
        self.connection = connection
        self.send_lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.alive = True
        self.shipped_kernels: set = set()
        self.shipped_tasks: Dict[str, int] = {}


class FleetCoordinator:
    """Manage fleet-worker connections, heartbeats, and loss detection."""

    def __init__(
        self,
        machine,
        default_symbol_value: int,
        connect_timeout: float = 5.0,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 10.0,
    ):
        self.machine = machine
        self.default_symbol_value = int(default_symbol_value)
        self.connect_timeout = connect_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        #: ("result", worker, message) and ("lost", worker, None) events.
        self.inbox: "queue_module.Queue" = queue_module.Queue()
        self._workers: Dict[str, _RemoteWorker] = {}
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._ping_sequence = 0

    # -- connection management ---------------------------------------------

    def dial(self, addresses: Sequence[str]) -> List[str]:
        """Connect to ``host:port`` workers; unreachable ones are skipped.

        Returns the names of the workers that completed the handshake.
        """
        connected = []
        for address in addresses:
            host, _, port_text = str(address).rpartition(":")
            try:
                connection = socket.create_connection(
                    (host or "127.0.0.1", int(port_text)),
                    timeout=self.connect_timeout,
                )
            except (OSError, ValueError):
                continue
            try:
                name = self._handshake(connection)
            except (OSError, FleetError):
                connection.close()
                continue
            connected.append(name)
        self._ensure_heartbeat()
        return connected

    def listen(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Accept dial-in worker registrations; returns the bound address."""
        if self._listener is None:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            listener.listen(32)
            listener.settimeout(0.2)
            self._listener = listener
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="fleet-coordinator-accept",
                daemon=True,
            )
            self._accept_thread.start()
            self._ensure_heartbeat()
        return self._listener.getsockname()[:2]

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                self._handshake(connection, expect_register=True)
            except (OSError, FleetError):
                connection.close()

    def _handshake(
        self, connection: socket.socket, expect_register: bool = False
    ) -> str:
        """hello → welcome (dial-out) or register → hello → welcome (dial-in)."""
        connection.settimeout(self.connect_timeout)
        stream = connection.makefile("rb")
        if expect_register:
            message = self._read_handshake(stream, "register")
        connection.sendall(
            encode_message(hello_message(self.machine, self.default_symbol_value))
        )
        message = self._read_handshake(stream, "welcome")
        name = str(message["worker"])
        connection.settimeout(None)
        worker = _RemoteWorker(name, connection)
        with self._lock:
            if name in self._workers:
                raise FleetError(f"duplicate fleet worker name: {name!r}")
            self._workers[name] = worker
        reader = threading.Thread(
            target=self._read_loop, args=(worker, stream),
            name=f"fleet-read-{name}", daemon=True,
        )
        self._threads.append(reader)
        reader.start()
        return name

    @staticmethod
    def _read_handshake(stream, expected: str) -> dict:
        for line in stream:
            if not line.strip():
                continue
            message = decode_message(line)
            if message.get("type") != expected:
                raise FleetProtocolError(
                    f"expected {expected!r} during fleet handshake, "
                    f"got {message.get('type')!r}"
                )
            return message
        raise FleetError(f"fleet connection closed before {expected!r}")

    def _ensure_heartbeat(self) -> None:
        if self._heartbeat_thread is not None:
            return
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="fleet-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    # -- wire I/O ----------------------------------------------------------

    def _read_loop(self, worker: _RemoteWorker, stream) -> None:
        try:
            for line in stream:
                if not line.strip():
                    continue
                try:
                    message = decode_message(line)
                except FleetProtocolError:
                    continue
                # Anything inbound proves the worker is alive.
                worker.last_seen = time.monotonic()
                if message.get("type") == "result":
                    self.inbox.put(("result", worker.name, message))
        except (OSError, ValueError):
            pass
        finally:
            stream.close()
            self.mark_lost(worker.name)

    def _heartbeat_loop(self) -> None:
        while not self._stopping.is_set():
            time.sleep(self.heartbeat_interval)
            self.check_timeouts()
            self._ping_sequence += 1
            for worker in self.live_worker_records():
                try:
                    with worker.send_lock:
                        worker.connection.sendall(
                            encode_message(ping_message(self._ping_sequence))
                        )
                except OSError:
                    self.mark_lost(worker.name)

    def check_timeouts(self) -> None:
        """Declare lost every worker silent for longer than the timeout."""
        deadline = time.monotonic() - self.heartbeat_timeout
        for worker in self.live_worker_records():
            if worker.last_seen < deadline:
                self.mark_lost(worker.name)

    def mark_lost(self, name: str) -> None:
        """Idempotently declare one worker dead and emit a loss event."""
        with self._lock:
            worker = self._workers.get(name)
            if worker is None or not worker.alive:
                return
            worker.alive = False
        try:
            worker.connection.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        worker.connection.close()
        self.inbox.put(("lost", name, None))

    # -- queries -----------------------------------------------------------

    def live_workers(self) -> List[str]:
        with self._lock:
            return sorted(
                name for name, worker in self._workers.items() if worker.alive
            )

    def live_worker_records(self) -> List[_RemoteWorker]:
        with self._lock:
            return [worker for worker in self._workers.values() if worker.alive]

    def worker(self, name: str) -> _RemoteWorker:
        with self._lock:
            return self._workers[name]

    def send_many(self, name: str, payloads: Sequence[dict]) -> None:
        """Send messages to one worker in order; raises ``OSError`` on a
        dead connection (callers re-shard)."""
        worker = self.worker(name)
        if not worker.alive:
            raise OSError(f"fleet worker {name!r} is lost")
        with worker.send_lock:
            for payload in payloads:
                worker.connection.sendall(encode_message(payload))

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join()
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5.0)
            self._heartbeat_thread = None
        for worker in self.live_worker_records():
            try:
                with worker.send_lock:
                    worker.connection.sendall(encode_message(bye_message()))
            except OSError:
                pass
            try:
                worker.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            worker.connection.close()
            worker.alive = False
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []


@dataclass
class _PendingRecord:
    """One in-flight fleet request: everything needed to re-shard it."""

    key: RewardKey
    kernel: object
    site_index: int
    action: Tuple[int, ...]
    task: object
    kind: str = "site"
    decisions: Optional[dict] = None
    worker: Optional[str] = None
    prefetch: bool = False
    attempts: int = 1
    priority: int = field(default=0)


class FleetEvaluationService:
    """Reward evaluation sharded across remote fleet workers.

    The :class:`EvaluationService` contract over a
    :class:`FleetCoordinator`: ``submit`` dispatches unique cache misses
    to live workers (sharded by kernel content hash over the sorted live
    set), futures resolve as results stream back, and worker loss
    re-shards orphaned demand onto survivors — or evaluates it inline on
    the coordinator's own pipeline when no workers survive, so a run
    always completes with byte-identical results.
    """

    def __init__(
        self,
        pipeline,
        cache: Optional[RewardCache] = None,
        addresses: Sequence[str] = (),
        coordinator: Optional[FleetCoordinator] = None,
        result_timeout: float = 120.0,
        connect_timeout: float = 5.0,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 10.0,
        max_retries: int = 3,
        retry_backoff: float = 0.05,
        prefetch_top_k: int = 8,
        prefetch_horizon: Optional[int] = None,
    ):
        self.pipeline = pipeline
        self.cache = RewardCache() if cache is None else cache
        self.result_timeout = result_timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = retry_backoff
        self.prefetch_top_k = int(prefetch_top_k)
        self.prefetch_horizon = prefetch_horizon
        self.stats = FleetStats()
        if coordinator is None:
            coordinator = FleetCoordinator(
                pipeline.machine,
                pipeline.default_symbol_value,
                connect_timeout=connect_timeout,
                heartbeat_interval=heartbeat_interval,
                heartbeat_timeout=heartbeat_timeout,
            )
            coordinator.dial(addresses)
        self.coordinator = coordinator
        self._next_request_id = 0
        self._pending: Dict[int, _PendingRecord] = {}
        self._inflight: Dict[RewardKey, int] = {}
        self._waiters: Dict[RewardKey, List[Tuple[EvaluationFuture, int]]] = {}
        self._prefetched_keys: set = set()
        self._applied: set = set()
        self._apply_errors: List[Tuple[RewardKey, str]] = []

    @classmethod
    def connect(
        cls,
        pipeline,
        cache: Optional[RewardCache] = None,
        addresses: Sequence[str] = (),
        fallback_workers: int = 0,
        **knobs,
    ):
        """Build a fleet service, or degrade gracefully when nobody answers.

        When zero remote workers are reachable this returns a plain local
        :class:`EvaluationService` (with ``fallback_workers`` processes),
        so callers configure one code path and still run anywhere.
        """
        service = cls(pipeline, cache, addresses=addresses, **knobs)
        if service.workers > 0:
            return service
        service.close()
        return EvaluationService(
            pipeline,
            service.cache,
            workers=fallback_workers,
            result_timeout=knobs.get("result_timeout", 120.0),
        )

    # -- EvaluationService surface -----------------------------------------

    @property
    def workers(self) -> int:
        """Live remote workers.  Zero means every duck-typed consumer
        (async overlap, comparison fan-out) sees a serial service —
        graceful degradation falls out of the shared contract."""
        return len(self.coordinator.live_workers())

    def close(self) -> None:
        self.coordinator.stop()

    def __enter__(self) -> "FleetEvaluationService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def evaluate(self, requests, task=None) -> List[BatchOutcome]:
        return self.submit(requests, task=task).result()

    def submit(self, requests, task=None) -> EvaluationFuture:
        """Dedup a batch against cache, batch, and in-flight work, then
        dispatch the unique misses — the local service's exact logic, so
        fleet evaluation stays byte-identical to serial."""
        if task is None:
            from repro.tasks import resolve_task

            task = resolve_task(None)
        future = EvaluationFuture(self, len(requests))
        if self.workers == 0:
            batcher = EvaluationBatcher(self.pipeline, self.cache, task=task)
            for kernel, site_index, action in normalize_requests(requests):
                batcher.add_action(kernel, site_index, action)
            self.stats.serial_batches += 1
            self.stats.serial_requests += len(requests)
            for slot, outcome in enumerate(batcher.flush()):
                future._fill(slot, outcome)
            return future
        for slot, (kernel, site_index, action) in enumerate(
            normalize_requests(requests)
        ):
            action = task.cache_key(action)
            key = self.cache.key_for(
                kernel,
                self.pipeline.machine,
                site_index,
                default_symbol_value=self.pipeline.default_symbol_value,
                action=action,
                task=task.name,
            )
            cached = self.cache.get(key)
            if cached is not None:
                if key in self._prefetched_keys:
                    # This demand lookup would have been a dispatch-and-wait
                    # without speculation: a prefetch hit.
                    self._prefetched_keys.discard(key)
                    self.stats.prefetch_hits += 1
                future._fill(slot, BatchOutcome(cached, True))
                continue
            waiters = self._waiters.get(key)
            if waiters is not None:
                # Already in flight: correct the miss the get() above just
                # counted into a dedup — the batcher's exact accounting.
                self.cache.stats.misses -= 1
                self.cache.stats.batch_deduplicated += 1
                record = self._pending.get(self._inflight.get(key, -1))
                if record is not None and record.prefetch:
                    # Demand caught up with in-flight speculation.
                    record.prefetch = False
                    self.stats.prefetch_joined += 1
                waiters.append((future, slot))
                continue
            self._waiters[key] = [(future, slot)]
            record = _PendingRecord(
                key=key,
                kernel=kernel,
                site_index=int(site_index),
                action=action,
                task=task,
            )
            if not self._dispatch(record):
                # Every worker vanished mid-batch: evaluate inline.
                request_id = self._register(record)
                self._evaluate_inline(request_id, record)
        return future

    def prefetch(self, requests, task=None) -> int:
        """Speculatively evaluate likely-next requests at low priority.

        Skips anything already cached or in flight, and registers an empty
        waiter list so later demand joins instead of re-dispatching.
        Returns the number of speculations actually issued.
        """
        if self.workers == 0 or not requests:
            return 0
        if task is None:
            from repro.tasks import resolve_task

            task = resolve_task(None)
        issued = 0
        for kernel, site_index, action in normalize_requests(requests):
            action = task.cache_key(action)
            key = self.cache.key_for(
                kernel,
                self.pipeline.machine,
                site_index,
                default_symbol_value=self.pipeline.default_symbol_value,
                action=action,
                task=task.name,
            )
            # peek(): speculation must not skew the demand hit/miss stats.
            if self.cache.peek(key) is not None or key in self._waiters:
                continue
            record = _PendingRecord(
                key=key,
                kernel=kernel,
                site_index=int(site_index),
                action=action,
                task=task,
                prefetch=True,
                priority=PRIORITY_PREFETCH,
            )
            self._waiters[key] = []
            if not self._dispatch(record):
                del self._waiters[key]
                break
            self.stats.prefetch_issued += 1
            issued += 1
        return issued

    def settle(self) -> None:
        """Drain every outstanding result, including pure speculation.

        After this, demand lookups for completed prefetches are plain
        cache hits.  Demand futures normally drain lazily via
        ``result()``; ``settle()`` is for quiesce points (end of a batch,
        before reading stats, shutting down an example) where leftover
        speculative work should land in the cache rather than be lost.
        """
        while self._pending:
            self._drain_one()

    # -- dispatch ----------------------------------------------------------

    def _register(self, record: _PendingRecord) -> int:
        request_id = self._next_request_id
        self._next_request_id += 1
        self._pending[request_id] = record
        self._inflight[record.key] = request_id
        return request_id

    def _dispatch(self, record: _PendingRecord) -> bool:
        request_id = self._register(record)
        if not self._send_record(request_id, record):
            del self._pending[request_id]
            del self._inflight[record.key]
            return False
        self.stats.record_dispatch(record.worker, prefetch=record.prefetch)
        return True

    def _send_record(self, request_id: int, record: _PendingRecord) -> bool:
        """Ship one record to its shard; re-pick on send failure.  False
        only when zero live workers remain."""
        while True:
            live = self.coordinator.live_workers()
            if not live:
                record.worker = None
                return False
            shard = live[int(record.key.kernel_hash[:8], 16) % len(live)]
            worker = self.coordinator.worker(shard)
            messages = []
            if record.key.kernel_hash not in worker.shipped_kernels:
                worker.shipped_kernels.add(record.key.kernel_hash)
                messages.append(
                    kernel_message(record.key.kernel_hash, kernel_payload(record.kernel))
                )
            if worker.shipped_tasks.get(record.task.name) != id(record.task):
                worker.shipped_tasks[record.task.name] = id(record.task)
                messages.append(task_message(record.task.name, record.task))
            messages.append(
                work_message(
                    request_id,
                    record.kind,
                    record.key.kernel_hash,
                    record.site_index,
                    record.action,
                    record.task.name,
                    decisions=record.decisions,
                    priority=record.priority,
                )
            )
            record.worker = shard
            try:
                self.coordinator.send_many(shard, messages)
                return True
            except OSError:
                record.worker = None
                self.coordinator.mark_lost(shard)

    # -- whole-kernel application fan-out ----------------------------------

    def measure_applications(self, task, jobs, detail: bool = False):
        """Fan whole-kernel applications across the fleet — the
        :meth:`EvaluationService.measure_applications` contract, including
        the per-lifetime dedup.  With ``detail=True`` returns a per-job
        list of booleans (``True`` when that job was dispatched remotely)
        instead of the dispatch count."""
        flags: List[bool] = []
        if self.workers == 0 or not jobs:
            return [False] * len(jobs or []) if detail else 0
        outstanding: set = set()
        for kernel, decisions in jobs:
            flattened: List[int] = []
            for site_index in sorted(decisions):
                flattened.append(int(site_index))
                flattened.extend(int(value) for value in decisions[site_index])
            key = self.cache.key_for(
                kernel,
                self.pipeline.machine,
                WHOLE_FUNCTION_APPLICATION,
                default_symbol_value=self.pipeline.default_symbol_value,
                action=tuple(flattened),
                task=task.name,
            )
            if key in self._applied:
                flags.append(False)
                continue
            self._applied.add(key)
            record = _PendingRecord(
                key=key,
                kernel=kernel,
                site_index=WHOLE_FUNCTION_APPLICATION,
                action=tuple(flattened),
                task=task,
                kind="apply",
                decisions={
                    int(site): tuple(int(v) for v in action)
                    for site, action in decisions.items()
                },
            )
            request_id = self._register(record)
            if self._send_record(request_id, record):
                self.stats.record_dispatch(record.worker)
                outstanding.add(request_id)
                flags.append(True)
            else:
                self._evaluate_inline(request_id, record)
                flags.append(False)
        while any(rid in self._pending for rid in outstanding):
            self._drain_one()
        if self._apply_errors:
            errors, self._apply_errors = self._apply_errors, []
            for key, _message in errors:
                self._applied.discard(key)
            raise RuntimeError(
                f"{len(errors)} application job(s) failed in the fleet; "
                f"first failure:\n{errors[0][1]}"
            )
        return flags if detail else sum(flags)

    # -- result collection --------------------------------------------------

    def _drain_until(self, future: EvaluationFuture) -> None:
        while not future.done():
            self._drain_one()

    def _drain_one(self) -> None:
        # The timeout is a liveness-check interval, not a deadline: slow
        # simulations on healthy workers just wait another round, and dead
        # workers surface as ("lost", ...) events from the heartbeat.
        while True:
            try:
                event, name, message = self.coordinator.inbox.get(
                    timeout=self.result_timeout
                )
                break
            except queue_module.Empty:
                self.coordinator.check_timeouts()
                if not self._pending:
                    return
        if event == "lost":
            self._handle_lost(name)
            return
        request_id = int(message["id"])
        record = self._pending.pop(request_id, None)
        if record is None:
            # A duplicate answer after a retry raced the original — the
            # values are deterministic, so first-wins is safe.
            return
        self._inflight.pop(record.key, None)
        self.stats.record_completion(name)
        if record.kind == "apply":
            if message.get("error") is not None:
                self.stats.errors += 1
                self._apply_errors.append((record.key, message["error"]))
                return
            for entry_key, measurement in decode_entries(message.get("entries")):
                # peek() not get(): merging shipped entries is plumbing, and
                # skipping present keys keeps disk stores duplicate-free.
                if self.cache.peek(entry_key) is None:
                    self.cache.put(entry_key, measurement)
            return
        waiters = self._waiters.pop(record.key, [])
        if message.get("error") is not None:
            self.stats.errors += 1
            for waiting_future, slot in waiters:
                waiting_future._fail(slot, message["error"])
            return
        measurement = CachedMeasurement(
            cycles=float(message["cycles"]),
            compile_seconds=float(message["compile_seconds"]),
        )
        self.cache.put(record.key, measurement)
        for position, (waiting_future, slot) in enumerate(waiters):
            waiting_future._fill(slot, BatchOutcome(measurement, position > 0))
        if record.prefetch and not waiters:
            # Speculation landed before any demand wanted it: later demand
            # finds it in the cache and counts as a prefetch hit.
            self._prefetched_keys.add(record.key)

    # -- loss recovery ------------------------------------------------------

    def _handle_lost(self, name: str) -> None:
        """Re-shard one dead worker's orphans onto the survivors.

        Demanded work (anything with waiters, plus whole-kernel
        applications) is retried with exponential backoff up to
        ``max_retries`` re-dispatches; pure speculation is simply dropped.
        With zero survivors, demanded work runs inline on the
        coordinator's own pipeline — identical code path, identical bytes.
        """
        self.stats.workers_lost += 1
        orphans = [
            (request_id, record)
            for request_id, record in sorted(self._pending.items())
            if record.worker == name
        ]
        if not orphans:
            return
        demanded: List[Tuple[int, _PendingRecord]] = []
        for request_id, record in orphans:
            if record.kind == "apply" or self._waiters.get(record.key):
                demanded.append((request_id, record))
                continue
            # Un-joined speculation: drop it (implicitly counted wasted).
            del self._pending[request_id]
            self._inflight.pop(record.key, None)
            self._waiters.pop(record.key, None)
        retryable: List[Tuple[int, _PendingRecord]] = []
        for request_id, record in demanded:
            record.attempts += 1
            if record.attempts > self.max_retries + 1:
                self._fail_record(request_id, record)
                continue
            retryable.append((request_id, record))
        if not retryable:
            return
        if not self.coordinator.live_workers():
            for request_id, record in retryable:
                self._evaluate_inline(request_id, record)
            return
        # One grouped backoff per loss event, growing with the worst
        # retry count in the group.
        worst = max(record.attempts for _rid, record in retryable)
        if self.retry_backoff > 0:
            time.sleep(self.retry_backoff * (2 ** (worst - 2)))
        for request_id, record in retryable:
            if self._send_record(request_id, record):
                self.stats.retries += 1
                self.stats.reshards += 1
                self.stats.per_worker_dispatched[record.worker] = (
                    self.stats.per_worker_dispatched.get(record.worker, 0) + 1
                )
            else:
                self._evaluate_inline(request_id, record)

    def _fail_record(self, request_id: int, record: _PendingRecord) -> None:
        self.stats.errors += 1
        del self._pending[request_id]
        self._inflight.pop(record.key, None)
        message = (
            f"fleet worker(s) lost; gave up on {record.kind} request after "
            f"{self.max_retries} retries (key {record.key})"
        )
        if record.kind == "apply":
            self._apply_errors.append((record.key, message))
            return
        for waiting_future, slot in self._waiters.pop(record.key, []):
            waiting_future._fail(slot, message)

    def _evaluate_inline(self, request_id: int, record: _PendingRecord) -> None:
        """Last-resort local evaluation — the exact worker code path run on
        the coordinator's own pipeline, so results stay byte-identical."""
        self._pending.pop(request_id, None)
        self._inflight.pop(record.key, None)
        self.stats.inline_evaluations += 1
        if record.kind == "apply":
            local = RewardCache()
            local.measure_baseline(self.pipeline, record.kernel)
            record.task.apply(
                self.pipeline,
                record.kernel,
                dict(record.decisions or {}),
                reward_cache=local,
            )
            for entry_key, measurement in local.items():
                if self.cache.peek(entry_key) is None:
                    self.cache.put(entry_key, measurement)
            return
        measured = record.task.evaluate(
            self.pipeline, record.kernel, record.site_index, record.action
        )
        measurement = CachedMeasurement(
            cycles=measured.cycles, compile_seconds=measured.compile_seconds
        )
        self.cache.put(record.key, measurement)
        waiters = self._waiters.pop(record.key, [])
        for position, (waiting_future, slot) in enumerate(waiters):
            waiting_future._fill(slot, BatchOutcome(measurement, position > 0))
        if record.prefetch and not waiters:
            self._prefetched_keys.add(record.key)
