"""Counters for the evaluation fleet.

:class:`FleetStats` is a strict superset of
:class:`repro.distributed.service.ServiceStats`: the shared fields keep the
same names so existing reporting (``format_service_stats_table`` callers,
``as_dict`` consumers) reads a fleet service unchanged, and the fleet-only
fields (retries, re-shards, prefetch accounting) let reports distinguish a
fleet run — detection is ``hasattr(stats, "prefetch_issued")``.

Prefetch accounting distinguishes three fates for a speculative request:

* **hit** — a later demand request found the answer already in the cache;
* **joined** — demand arrived while the speculation was still in flight
  and attached to it instead of dispatching its own work;
* **wasted** — the speculation completed (or was dropped on worker loss)
  without any demand ever wanting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class FleetStats:
    """Dispatch, robustness, and prefetch counters for a fleet run."""

    # Shared with ServiceStats --------------------------------------------
    dispatched: int = 0
    completed: int = 0
    errors: int = 0
    serial_batches: int = 0
    serial_requests: int = 0
    per_worker_dispatched: Dict[str, int] = field(default_factory=dict)
    per_worker_completed: Dict[str, int] = field(default_factory=dict)

    # Fleet-only ----------------------------------------------------------
    demand_dispatched: int = 0
    retries: int = 0
    reshards: int = 0
    workers_lost: int = 0
    inline_evaluations: int = 0
    prefetch_issued: int = 0
    prefetch_hits: int = 0
    prefetch_joined: int = 0

    @property
    def prefetch_wasted(self) -> int:
        return max(0, self.prefetch_issued - self.prefetch_hits - self.prefetch_joined)

    @property
    def waits_converted(self) -> float:
        """Fraction of would-be async waits answered by speculation.

        Of every demand lookup that was not already a plain cache hit, how
        many were covered by prefetch (resolved from the store, or joined
        to an in-flight speculative evaluation) instead of paying a fresh
        dispatch-and-wait?
        """
        covered = self.prefetch_hits + self.prefetch_joined
        total = covered + self.demand_dispatched
        if total == 0:
            return 0.0
        return covered / total

    def record_dispatch(self, worker: str, prefetch: bool = False) -> None:
        self.dispatched += 1
        if not prefetch:
            self.demand_dispatched += 1
        self.per_worker_dispatched[worker] = (
            self.per_worker_dispatched.get(worker, 0) + 1
        )

    def record_completion(self, worker: str) -> None:
        self.completed += 1
        self.per_worker_completed[worker] = (
            self.per_worker_completed.get(worker, 0) + 1
        )

    def as_dict(self) -> dict:
        return {
            "dispatched": self.dispatched,
            "completed": self.completed,
            "errors": self.errors,
            "serial_batches": self.serial_batches,
            "serial_requests": self.serial_requests,
            "per_worker_dispatched": dict(self.per_worker_dispatched),
            "per_worker_completed": dict(self.per_worker_completed),
            "demand_dispatched": self.demand_dispatched,
            "retries": self.retries,
            "reshards": self.reshards,
            "workers_lost": self.workers_lost,
            "inline_evaluations": self.inline_evaluations,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_joined": self.prefetch_joined,
            "prefetch_wasted": self.prefetch_wasted,
            "waits_converted": self.waits_converted,
        }
