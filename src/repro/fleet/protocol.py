"""Wire protocol of the evaluation fleet: newline-delimited JSON over TCP.

The fleet speaks the same framing idiom as the serving front end
(:mod:`repro.serving.schema`): one JSON object per line, ``type`` selects
the message.  The vocabulary:

* ``hello`` / ``welcome`` — the handshake.  The coordinator sends ``hello``
  with the run's machine description and ``default_symbol_value`` (so every
  worker measures under exactly the caller's pipeline configuration); the
  worker answers ``welcome`` with its name.
* ``register`` — a worker dialing *in* to a listening coordinator announces
  itself first; the coordinator then proceeds with the normal ``hello``.
* ``kernel`` / ``task`` — content payloads, shipped at most once per
  (worker, content-hash) / (worker, task name, instance): later work
  messages reference the hash or name alone.
* ``work`` / ``result`` — one reward query and its answer.  ``kind`` is
  ``"site"`` (evaluate one action at one decision site) or ``"apply"``
  (whole-kernel application; the result ships every cache entry the
  application produced).  ``priority`` 0 is demand traffic, 1 is
  speculative prefetch — workers serve demand first.
* ``ping`` / ``pong`` — heartbeats; any inbound message counts as liveness.
* ``bye`` — orderly shutdown of one connection.

Machine descriptions and task objects are not JSON-able (nested cost-model
dataclasses, user-defined task classes), so they travel base64-pickled —
the same objects :class:`repro.distributed.EvaluationService` already
ships through its process queues.  Reward-store entries reuse the exact
six-element key layout of :mod:`repro.distributed.store` records.
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import List, Tuple

from repro.cache.reward_cache import CachedMeasurement, RewardKey

#: Bump when the message vocabulary changes incompatibly.
PROTOCOL_VERSION = 1


class FleetError(Exception):
    """Base class for fleet-evaluation failures."""


class FleetProtocolError(FleetError):
    """A malformed or unexpected fleet message."""


# ---------------------------------------------------------------------------
# Framing: newline-delimited JSON (the serving idiom)
# ---------------------------------------------------------------------------


def encode_message(payload: dict) -> bytes:
    """One JSON object per line — the fleet's wire format."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FleetProtocolError(f"malformed fleet message: {error}") from error
    if not isinstance(payload, dict):
        raise FleetProtocolError("fleet messages must be JSON objects")
    return payload


# ---------------------------------------------------------------------------
# Opaque payloads: machine descriptions and task objects
# ---------------------------------------------------------------------------


def pickle_to_b64(obj) -> str:
    """Base64 text of a pickled object (machine models, task instances)."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def b64_to_pickle(data: str):
    try:
        return pickle.loads(base64.b64decode(data.encode("ascii")))
    except Exception as error:
        raise FleetProtocolError(f"undecodable fleet payload: {error}") from error


# ---------------------------------------------------------------------------
# Reward-store entries on the wire
# ---------------------------------------------------------------------------
#
# The same six-element key array the persistent store writes per record,
# so fleet-shipped entries and store segments stay one format.


def encode_entry(key: RewardKey, measurement: CachedMeasurement) -> list:
    return [
        [
            key.kernel_hash,
            key.machine_hash,
            key.loop_index,
            key.task,
            list(key.action),
            key.default_symbol_value,
        ],
        measurement.cycles,
        measurement.compile_seconds,
    ]


def decode_entry(raw) -> Tuple[RewardKey, CachedMeasurement]:
    try:
        raw_key, cycles, compile_seconds = raw
        key = RewardKey(
            kernel_hash=str(raw_key[0]),
            machine_hash=str(raw_key[1]),
            loop_index=int(raw_key[2]),
            task=str(raw_key[3]),
            action=tuple(int(value) for value in raw_key[4]),
            default_symbol_value=int(raw_key[5]),
        )
        measurement = CachedMeasurement(
            cycles=float(cycles), compile_seconds=float(compile_seconds)
        )
    except (ValueError, TypeError, IndexError, KeyError) as error:
        raise FleetProtocolError(f"undecodable fleet entry: {error}") from error
    return key, measurement


def encode_entries(entries) -> List[list]:
    return [encode_entry(key, measurement) for key, measurement in entries]


def decode_entries(raw) -> List[Tuple[RewardKey, CachedMeasurement]]:
    return [decode_entry(entry) for entry in raw or []]


# ---------------------------------------------------------------------------
# Message constructors
# ---------------------------------------------------------------------------

#: Demand traffic: a training step or comparison waiting on this answer.
PRIORITY_DEMAND = 0
#: Speculative prefetch: evaluated only while no demand work is queued.
PRIORITY_PREFETCH = 1


def hello_message(machine, default_symbol_value: int) -> dict:
    return {
        "type": "hello",
        "protocol": PROTOCOL_VERSION,
        "machine": pickle_to_b64(machine),
        "default_symbol_value": int(default_symbol_value),
    }


def welcome_message(worker: str) -> dict:
    return {"type": "welcome", "worker": worker}


def register_message(worker: str) -> dict:
    return {"type": "register", "worker": worker}


def kernel_message(kernel_hash: str, payload: dict) -> dict:
    return {"type": "kernel", "hash": kernel_hash, "kernel": payload}


def task_message(name: str, task) -> dict:
    return {"type": "task", "name": name, "data": pickle_to_b64(task)}


def work_message(
    request_id: int,
    kind: str,
    kernel_hash: str,
    site_index: int,
    action,
    task: str,
    decisions=None,
    priority: int = PRIORITY_DEMAND,
) -> dict:
    return {
        "type": "work",
        "id": int(request_id),
        "kind": kind,
        "hash": kernel_hash,
        "site": int(site_index),
        "action": [int(value) for value in action],
        "task": task,
        "decisions": (
            None
            if decisions is None
            else {
                str(site): [int(value) for value in chosen]
                for site, chosen in decisions.items()
            }
        ),
        "priority": int(priority),
    }


def result_message(
    request_id: int,
    cycles: float = 0.0,
    compile_seconds: float = 0.0,
    error=None,
    entries=None,
) -> dict:
    return {
        "type": "result",
        "id": int(request_id),
        "cycles": float(cycles),
        "compile_seconds": float(compile_seconds),
        "error": error,
        "entries": entries,
    }


def ping_message(sequence: int) -> dict:
    return {"type": "ping", "n": int(sequence)}


def pong_message(sequence: int) -> dict:
    return {"type": "pong", "n": int(sequence)}


def bye_message() -> dict:
    return {"type": "bye"}
