"""Loop vectorizer: legality, planning, the LLVM-like baseline cost model and
the brute-force oracle.

The flow mirrors LLVM's LoopVectorize pass:

1. :mod:`repro.vectorizer.legality` decides whether a loop may be vectorized
   at all and bounds the legal VF (dependences, early exits, calls).
2. :mod:`repro.vectorizer.planner` turns *requested* factors (from pragmas or
   an agent's action) into an *effective* :class:`LoopVectorPlan` after
   clamping against legality and the machine.
3. :mod:`repro.vectorizer.cost_model` is the baseline: it picks VF/IF with a
   linear per-instruction cost table, exactly the kind of model the paper
   criticises for ignoring the computation graph.
4. :mod:`repro.vectorizer.bruteforce` sweeps every (VF, IF) pair through the
   cycle simulator and returns the oracle optimum used for Figures 1, 2 and
   the supervised labels.
"""

from repro.vectorizer.legality import VectorizationLegality, check_legality
from repro.vectorizer.planner import (
    FunctionVectorPlan,
    LoopVectorPlan,
    build_plan,
    plan_from_pragmas,
)
from repro.vectorizer.cost_model import BaselineCostModel, BaselineDecision
from repro.vectorizer.bruteforce import BruteForceResult, brute_force_search

__all__ = [
    "VectorizationLegality",
    "check_legality",
    "LoopVectorPlan",
    "FunctionVectorPlan",
    "build_plan",
    "plan_from_pragmas",
    "BaselineCostModel",
    "BaselineDecision",
    "BruteForceResult",
    "brute_force_search",
]
