"""Vectorization plans: requested factors clamped to what is legal."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.loopinfo import LoopAnalysis, analyze_loop
from repro.machine.description import MachineDescription
from repro.ir.nodes import IRFunction, Loop
from repro.vectorizer.legality import VectorizationLegality, check_legality


@dataclass
class LoopVectorPlan:
    """The factors one innermost loop will actually be compiled with.

    ``requested_*`` are what the pragma (or agent) asked for; ``vf`` and
    ``interleave`` are the effective values after legality clamping, exactly
    like clang ignoring an infeasible hint (§3 of the paper: "if the agent
    accidentally injected bad pragmas, the compiler will ignore it").
    """

    loop: Loop
    analysis: LoopAnalysis
    legality: VectorizationLegality
    requested_vf: int = 1
    requested_interleave: int = 1
    vf: int = 1
    interleave: int = 1

    @property
    def is_vectorized(self) -> bool:
        return self.vf > 1

    @property
    def is_interleaved(self) -> bool:
        return self.interleave > 1

    @property
    def elements_per_iteration(self) -> int:
        return self.vf * self.interleave

    def __str__(self) -> str:
        return (
            f"loop {self.loop.var}: requested (VF={self.requested_vf}, "
            f"IF={self.requested_interleave}) -> effective (VF={self.vf}, "
            f"IF={self.interleave})"
        )


@dataclass
class FunctionVectorPlan:
    """Vectorization plans for every innermost loop of one function."""

    function: IRFunction
    plans: Dict[int, LoopVectorPlan] = field(default_factory=dict)
    machine: MachineDescription = field(default_factory=MachineDescription)

    def plan_for(self, loop: Loop) -> Optional[LoopVectorPlan]:
        return self.plans.get(loop.loop_id)

    def factors(self) -> Dict[int, Tuple[int, int]]:
        """Effective (VF, IF) per loop id — handy for reports and tests."""
        return {loop_id: (p.vf, p.interleave) for loop_id, p in self.plans.items()}

    def __str__(self) -> str:
        lines = [f"plan for @{self.function.name}:"]
        lines.extend(f"  {plan}" for plan in self.plans.values())
        return "\n".join(lines)


def _clamp_power_of_two(value: int, maximum: int) -> int:
    result = 1
    while result * 2 <= min(value, maximum):
        result *= 2
    return result


def make_loop_plan(
    function: IRFunction,
    loop: Loop,
    requested_vf: int,
    requested_interleave: int,
    machine: Optional[MachineDescription] = None,
    analysis: Optional[LoopAnalysis] = None,
) -> LoopVectorPlan:
    """Build the plan for one innermost loop from requested factors."""
    machine = machine or MachineDescription()
    analysis = analysis or analyze_loop(function, loop)
    legality = check_legality(analysis, machine)
    requested_vf = max(1, requested_vf)
    requested_interleave = max(1, requested_interleave)
    effective_vf = legality.clamp_vf(
        _clamp_power_of_two(requested_vf, machine.max_vectorize_width)
    )
    effective_if = _clamp_power_of_two(requested_interleave, machine.max_interleave)
    return LoopVectorPlan(
        loop=loop,
        analysis=analysis,
        legality=legality,
        requested_vf=requested_vf,
        requested_interleave=requested_interleave,
        vf=effective_vf,
        interleave=effective_if,
    )


def build_plan(
    function: IRFunction,
    decisions: Dict[int, Tuple[int, int]],
    machine: Optional[MachineDescription] = None,
) -> FunctionVectorPlan:
    """Build a function-level plan from explicit per-loop (VF, IF) decisions.

    ``decisions`` maps ``loop_id`` to requested factors.  Innermost loops
    without an entry default to (1, 1), i.e. scalar.
    """
    machine = machine or MachineDescription()
    plan = FunctionVectorPlan(function=function, machine=machine)
    for loop in function.innermost_loops():
        requested_vf, requested_if = decisions.get(loop.loop_id, (1, 1))
        plan.plans[loop.loop_id] = make_loop_plan(
            function, loop, requested_vf, requested_if, machine
        )
    return plan


def factors_from_pragma(
    pragma, default_vf: int = 1, default_interleave: int = 1
) -> Tuple[int, int]:
    """Resolve one loop's pragma to the requested (VF, IF) pair.

    The single source of truth for the pragma → factors rule (shared by
    :func:`plan_from_pragmas` and ``CompileAndMeasure.measure_with_pragmas``):

    * ``vectorize(disable)`` pins the width to 1.  An ``interleave_count``
      or ``unroll_count`` still applies — clang likewise interleaves /
      unrolls a scalar loop — so ``vectorize(disable) unroll_count(8)`` is
      plain 8x unrolling, not a silently-dropped hint.
    * Otherwise ``vectorize_width`` overrides the default width, and
      ``interleave_count`` (or, failing that, ``unroll_count`` —
      interleaving is unroll-and-jam) overrides the default interleave.
    """
    if pragma is None or pragma.is_empty:
        return (default_vf, default_interleave)
    requested_interleave = pragma.interleave_count or pragma.unroll_count
    if pragma.vectorize_enable is False:
        return (1, requested_interleave or 1)
    return (
        pragma.vectorize_width or default_vf,
        requested_interleave or default_interleave,
    )


def plan_from_pragmas(
    function: IRFunction,
    machine: Optional[MachineDescription] = None,
    default_vf: int = 1,
    default_interleave: int = 1,
) -> FunctionVectorPlan:
    """Build a plan using the ``#pragma clang loop`` hints carried by the IR.

    This is the path the end-to-end framework uses: the agent injects pragmas
    into the source, the frontend attaches them to loops, lowering copies
    them onto IR loops, and :func:`factors_from_pragma` turns them into
    requested factors.  Loops without a pragma fall back to the given
    defaults.
    """
    machine = machine or MachineDescription()
    decisions: Dict[int, Tuple[int, int]] = {
        loop.loop_id: factors_from_pragma(loop.pragma, default_vf, default_interleave)
        for loop in function.innermost_loops()
    }
    return build_plan(function, decisions, machine)
