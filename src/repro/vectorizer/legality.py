"""Vectorization legality analysis (the "can we?" half of the vectorizer)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.loopinfo import LoopAnalysis
from repro.machine.description import MachineDescription


@dataclass
class VectorizationLegality:
    """Outcome of the legality check for one innermost loop.

    ``max_vf`` is the largest VF any transformation may use (1 means the loop
    must stay scalar).  The boolean flags describe work the vectorized loop
    will have to do at runtime, which the simulator charges for.
    """

    analysis: LoopAnalysis
    max_vf: int = 1
    needs_if_conversion: bool = False
    needs_runtime_trip_check: bool = False
    needs_alias_checks: bool = False
    alias_check_count: int = 0
    blocked_reasons: List[str] = field(default_factory=list)

    @property
    def can_vectorize(self) -> bool:
        return self.max_vf > 1

    def clamp_vf(self, requested_vf: int) -> int:
        """Largest legal power-of-two VF not exceeding the request."""
        vf = 1
        while vf * 2 <= min(requested_vf, self.max_vf):
            vf *= 2
        return vf

    def describe(self) -> str:
        if self.can_vectorize:
            extras = []
            if self.needs_if_conversion:
                extras.append("if-conversion")
            if self.needs_runtime_trip_check:
                extras.append("runtime trip check")
            if self.needs_alias_checks:
                extras.append(f"{self.alias_check_count} alias checks")
            suffix = f" ({', '.join(extras)})" if extras else ""
            return f"vectorizable up to VF={self.max_vf}{suffix}"
        reasons = "; ".join(self.blocked_reasons) or "unknown reason"
        return f"not vectorizable: {reasons}"


def check_legality(
    analysis: LoopAnalysis, machine: Optional[MachineDescription] = None
) -> VectorizationLegality:
    """Run the legality checks LLVM's LoopVectorizationLegality performs.

    The structural checks (early exits, unknown calls, non-reduction scalar
    recurrences, unanalysable dependences) force the loop to stay scalar;
    loop-carried dependences at a finite distance merely cap the VF.
    """
    machine = machine or MachineDescription()
    legality = VectorizationLegality(analysis=analysis)
    loop = analysis.loop

    if loop.has_early_exit:
        legality.blocked_reasons.append("loop has an early exit or unknown bound")
        legality.max_vf = 1
        return legality
    if loop.has_calls:
        legality.blocked_reasons.append("loop body calls a non-vectorizable function")
        legality.max_vf = 1
        return legality

    graph = analysis.dependence_graph
    if graph is not None and graph.scalar_recurrences:
        names = ", ".join(graph.scalar_recurrences)
        legality.blocked_reasons.append(
            f"loop-carried scalar recurrence on {names} is not a reduction"
        )
        legality.max_vf = 1
        return legality

    max_vf = analysis.max_legal_vf(machine.max_vectorize_width)
    if max_vf <= 1:
        legality.blocked_reasons.append(
            "memory dependence prevents packing consecutive iterations"
        )
        legality.max_vf = 1
        return legality

    legality.max_vf = max_vf
    legality.needs_if_conversion = analysis.has_predicates or any(
        isinstance_select(analysis)
    )
    legality.needs_runtime_trip_check = analysis.has_unknown_trip_count

    # Alias checks: distinct pointer-parameter arrays with at least one write
    # need pairwise runtime memchecks (we assume the checks pass).
    pointer_arrays = {
        p.access.array
        for p in analysis.access_patterns
        if analysis.function.arrays.get(p.access.array) is not None
        and analysis.function.arrays[p.access.array].is_parameter
    }
    written = {p.access.array for p in analysis.access_patterns if p.access.is_write}
    if written & pointer_arrays and len(pointer_arrays) > 1:
        pairs = len(pointer_arrays) * (len(pointer_arrays) - 1) // 2
        legality.needs_alias_checks = True
        legality.alias_check_count = pairs
    return legality


def isinstance_select(analysis: LoopAnalysis) -> List[bool]:
    """True entries for each select in the loop (ternaries already lowered)."""
    return [True] * analysis.operation_mix.select
