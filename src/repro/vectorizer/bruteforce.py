"""Brute-force (VF, IF) search — the oracle the paper compares against.

The paper runs every factor pair through clang and times the binary; here
every pair goes through the cycle simulator.  The full grid is retained so
Figure 1 (the 35-point dot-product heat strip) and the supervised-learning
labels can be regenerated from one search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.ir.nodes import IRFunction, Loop
from repro.machine.description import MachineDescription
from repro.simulator.engine import Simulator
from repro.vectorizer.cost_model import BaselineCostModel
from repro.vectorizer.planner import FunctionVectorPlan, build_plan


@dataclass
class BruteForceResult:
    """Outcome of an exhaustive factor search for one function."""

    function: IRFunction
    #: loop_id -> best (VF, IF)
    best_factors: Dict[int, Tuple[int, int]] = field(default_factory=dict)
    #: loop_id -> {(VF, IF) -> total function cycles with that choice}
    grids: Dict[int, Dict[Tuple[int, int], float]] = field(default_factory=dict)
    best_cycles: float = float("inf")
    baseline_cycles: float = float("nan")
    evaluations: int = 0

    def best_plan(self, machine: Optional[MachineDescription] = None) -> FunctionVectorPlan:
        return build_plan(self.function, self.best_factors, machine)

    def speedup_over_baseline(self) -> float:
        return self.baseline_cycles / self.best_cycles if self.best_cycles else float("inf")

    def grid_speedups(self, loop: Loop) -> Dict[Tuple[int, int], float]:
        """Speed-up over the baseline for every (VF, IF) of one loop."""
        grid = self.grids.get(loop.loop_id, {})
        return {
            factors: self.baseline_cycles / cycles if cycles else float("inf")
            for factors, cycles in grid.items()
        }


def brute_force_search(
    function: IRFunction,
    machine: Optional[MachineDescription] = None,
    simulator: Optional[Simulator] = None,
    bindings: Optional[Dict[str, float]] = None,
    vf_candidates: Optional[Iterable[int]] = None,
    if_candidates: Optional[Iterable[int]] = None,
) -> BruteForceResult:
    """Exhaustively search the factors of every innermost loop.

    Loops are searched one at a time with the other loops pinned at the
    baseline's choice; because the simulator's per-loop costs are additive
    this finds the jointly optimal assignment while evaluating
    ``loops x |VF| x |IF|`` plans instead of the full cross product.
    """
    machine = machine or MachineDescription()
    simulator = simulator or Simulator(machine=machine, bindings=bindings)
    vfs = tuple(vf_candidates) if vf_candidates is not None else machine.vf_candidates()
    ifs = tuple(if_candidates) if if_candidates is not None else machine.if_candidates()

    baseline = BaselineCostModel(machine=machine)
    baseline_decisions = baseline.decide_function(function)
    baseline_plan = build_plan(function, baseline_decisions, machine)
    baseline_cycles = simulator.simulate(function, baseline_plan).total_cycles

    result = BruteForceResult(function=function, baseline_cycles=baseline_cycles)
    best_decisions: Dict[int, Tuple[int, int]] = dict(baseline_decisions)

    for loop in function.innermost_loops():
        grid: Dict[Tuple[int, int], float] = {}
        best_pair = baseline_decisions.get(loop.loop_id, (1, 1))
        best_cycles = float("inf")
        for vf in vfs:
            for interleave in ifs:
                trial = dict(best_decisions)
                trial[loop.loop_id] = (vf, interleave)
                plan = build_plan(function, trial, machine)
                cycles = simulator.simulate(function, plan).total_cycles
                grid[(vf, interleave)] = cycles
                result.evaluations += 1
                if cycles < best_cycles:
                    best_cycles = cycles
                    best_pair = (vf, interleave)
        best_decisions[loop.loop_id] = best_pair
        result.best_factors[loop.loop_id] = best_pair
        result.grids[loop.loop_id] = grid

    final_plan = build_plan(function, best_decisions, machine)
    result.best_cycles = simulator.simulate(function, final_plan).total_cycles
    return result
