"""The baseline cost model (what LLVM's vectorizer does without hints).

This is the comparator the paper's reward is normalised against.  Like the
real pass it:

* computes the maximum profitable width from the widest element type and a
  conservative preferred vector width (most Intel targets default to 128-bit
  preference to avoid frequency licence throttling),
* scores each candidate VF with a *linear per-instruction* cost table and
  picks the cheapest cost-per-lane,
* chooses a small interleave count from a register-pressure/latency rule of
  thumb.

Crucially it never consults the cycle simulator: it does not see latency
hiding, cache behaviour or the shape of the dependence graph — which is
exactly the gap the learned policies exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.loopinfo import LoopAnalysis, analyze_loop
from repro.ir.nodes import IRFunction, Loop
from repro.machine.description import MachineDescription
from repro.vectorizer.legality import VectorizationLegality, check_legality
from repro.vectorizer.planner import FunctionVectorPlan, build_plan


@dataclass
class BaselineDecision:
    """The baseline's chosen factors for one loop, with its internal scores."""

    loop: Loop
    vf: int
    interleave: int
    legality: VectorizationLegality
    cost_per_lane: Dict[int, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"baseline picks VF={self.vf}, IF={self.interleave} for loop {self.loop.var}"


@dataclass
class BaselineCostModel:
    """LLVM-like linear cost model for picking VF and IF."""

    machine: MachineDescription = field(default_factory=MachineDescription)
    #: Preferred vector width in bits (LLVM's -mprefer-vector-width analogue).
    preferred_vector_bits: int = 128
    #: The baseline never interleaves beyond this (LLVM's default cap).
    max_interleave: int = 4

    # -- per-instruction costs (relative units, not cycles) ------------------------

    def _instruction_cost(self, analysis: LoopAnalysis, vf: int) -> float:
        """Summed cost of one iteration of the loop body at width ``vf``.

        The table intentionally mirrors LLVM's TTI-style flat costs: most
        vector arithmetic costs 1 per instruction, strided/gather memory is
        scalarised (cost ~ VF), divisions are expensive, everything else is
        a constant — no latencies, no ports, no cache.
        """
        mix = analysis.operation_mix
        cost = 0.0
        cost += (mix.int_add + mix.bitwise + mix.shift + mix.compare + mix.select) * 1.0
        cost += mix.int_mul * 2.0
        cost += (mix.float_add + mix.float_mul) * 2.0
        cost += (mix.int_div + mix.float_div) * (14.0 if vf == 1 else 14.0 * vf / 2)
        cost += mix.math_call * (10.0 if vf == 1 else 10.0 * vf / 2)
        cost += mix.convert * (1.0 if vf == 1 else 2.0)
        for pattern in analysis.access_patterns:
            if pattern.kind == "contiguous" or pattern.kind == "invariant":
                cost += 1.0
            elif pattern.kind == "strided":
                cost += 1.0 if vf == 1 else 1.0 * vf
            else:  # gather / scatter
                cost += 2.0 if vf == 1 else 2.0 * vf
        if analysis.has_predicates and vf > 1:
            cost += analysis.operation_mix.stores * 1.0  # masking overhead
        return max(cost, 1.0)

    # -- factor selection ------------------------------------------------------------

    def max_profitable_vf(self, analysis: LoopAnalysis,
                          legality: VectorizationLegality) -> int:
        widest = max(analysis.element_bits, 8)
        width_limit = max(1, self.preferred_vector_bits // widest)
        vf = 1
        while vf * 2 <= min(width_limit, legality.max_vf):
            vf *= 2
        return vf

    def select_vf(self, analysis: LoopAnalysis,
                  legality: VectorizationLegality) -> Tuple[int, Dict[int, float]]:
        max_vf = self.max_profitable_vf(analysis, legality)
        scores: Dict[int, float] = {}
        vf = 1
        best_vf, best_score = 1, float("inf")
        while vf <= max_vf:
            per_lane = self._instruction_cost(analysis, vf) / vf
            scores[vf] = per_lane
            # Strictly-better only: ties keep the narrower width (the pass is
            # conservative about wide vectors).
            if per_lane < best_score - 1e-9:
                best_score = per_lane
                best_vf = vf
            vf *= 2
        return best_vf, scores

    def select_interleave(self, analysis: LoopAnalysis, vf: int) -> int:
        """LLVM-style interleave heuristic: small bodies and reductions get a
        modest IC to expose ILP, bounded by register budget and trip count."""
        if analysis.loop.has_early_exit or analysis.loop.has_calls:
            return 1
        mix = analysis.operation_mix
        body_size = mix.total
        registers_needed = max(
            1, len({p.access.array for p in analysis.access_patterns}) + len(analysis.reductions)
        )
        register_limit = max(1, self.machine.vector_registers // (2 * registers_needed))
        interleave = 1
        if analysis.has_reduction:
            interleave = 2
        elif body_size <= 6:
            interleave = 2
        interleave = min(interleave, register_limit, self.max_interleave)
        trip = analysis.trip_count
        if trip is not None and vf * interleave * 4 > trip:
            # Don't interleave tiny loops: the epilogue would dominate.
            while interleave > 1 and vf * interleave * 4 > trip:
                interleave //= 2
        return max(1, interleave)

    # -- public API ----------------------------------------------------------------

    def decide_loop(
        self, function: IRFunction, loop: Loop,
        analysis: Optional[LoopAnalysis] = None,
    ) -> BaselineDecision:
        analysis = analysis or analyze_loop(function, loop)
        legality = check_legality(analysis, self.machine)
        if not legality.can_vectorize:
            return BaselineDecision(loop=loop, vf=1, interleave=1, legality=legality)
        vf, scores = self.select_vf(analysis, legality)
        interleave = self.select_interleave(analysis, vf)
        return BaselineDecision(
            loop=loop, vf=vf, interleave=interleave, legality=legality,
            cost_per_lane=scores,
        )

    def decide_function(self, function: IRFunction) -> Dict[int, Tuple[int, int]]:
        """Baseline (VF, IF) for every innermost loop, keyed by loop id."""
        decisions: Dict[int, Tuple[int, int]] = {}
        for loop in function.innermost_loops():
            decision = self.decide_loop(function, loop)
            decisions[loop.loop_id] = (decision.vf, decision.interleave)
        return decisions

    def plan_function(self, function: IRFunction) -> FunctionVectorPlan:
        """A ready-to-simulate plan using the baseline's decisions."""
        return build_plan(function, self.decide_function(function), self.machine)
