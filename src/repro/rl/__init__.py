"""Deep RL machinery: the vectorization environment, PPO and sweeps.

The paper uses RLlib/Tune with a PPO contextual bandit: one observation (the
loop embedding), one action (the VF/IF pair), one reward (normalised execution
time improvement), episode over.  This package provides the offline
equivalents:

* :mod:`repro.rl.spaces` — the three action-space encodings studied in
  Figure 6 (discrete, one continuous value, two continuous values),
* :mod:`repro.rl.env` — the contextual-bandit environment built on the
  compile-and-measure pipeline, with the compile-time penalty of §3.4,
* :mod:`repro.rl.policy` — tanh-MLP policies with categorical or Gaussian
  heads and a value head,
* :mod:`repro.rl.ppo` — clipped PPO with minibatch Adam epochs,
* :mod:`repro.rl.tune` — a small grid-search runner used for the
  hyperparameter study of Figure 5.
"""

from repro.rl.spaces import (
    ActionSpace,
    ContinuousJointSpace,
    ContinuousPairSpace,
    DiscreteFactorSpace,
    default_action_space,
    make_action_space,
)
from repro.rl.env import (
    EnvSample,
    MultiTaskEnv,
    TaggedSample,
    VectorizationEnv,
    build_samples,
)
from repro.rl.policy import (
    ContinuousPolicy,
    DiscretePolicy,
    MultiTaskPolicy,
    Policy,
    make_policy,
)
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.rl.tune import grid_search, run_experiments

__all__ = [
    "ActionSpace",
    "DiscreteFactorSpace",
    "ContinuousJointSpace",
    "ContinuousPairSpace",
    "default_action_space",
    "make_action_space",
    "EnvSample",
    "MultiTaskEnv",
    "TaggedSample",
    "VectorizationEnv",
    "build_samples",
    "Policy",
    "MultiTaskPolicy",
    "DiscretePolicy",
    "ContinuousPolicy",
    "make_policy",
    "PPOConfig",
    "PPOTrainer",
    "TrainingHistory",
    "grid_search",
    "run_experiments",
]
