"""Policy networks (tanh MLPs with categorical or Gaussian heads).

Generic over the action space's menus: the discrete policy grows one
categorical head per decision dimension, the continuous policies one
Gaussian dimension per real value.  With the default (VF, IF) space this
reproduces the paper's architectures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import ops
from repro.nn.layers import Dense, MLP, Module, Parameter
from repro.nn.losses import (
    categorical_entropy,
    categorical_log_prob,
    gaussian_entropy,
    gaussian_log_prob,
)
from repro.nn.tensor import Tensor, no_grad
from repro.rl.spaces import (
    ActionSpace,
    ContinuousJointSpace,
    ContinuousPairSpace,
    DiscreteFactorSpace,
)


@dataclass
class PolicyOutput:
    """Result of acting on one observation."""

    action: np.ndarray
    log_prob: float
    value: float


class Policy(Module):
    """Common interface: act on observations, evaluate log-probs for PPO."""

    observation_dim: int

    def act(self, observation: np.ndarray, deterministic: bool = False) -> PolicyOutput:
        raise NotImplementedError

    def evaluate(self, observations: np.ndarray, actions: np.ndarray):
        """Return (log_probs, entropy, values) tensors for a batch."""
        raise NotImplementedError


class DiscretePolicy(Policy):
    """One categorical head per decision dimension plus a value head.

    This is action-space definition 1 of Figure 6, the one the paper finds
    performs best: for the (VF, IF) default it is two heads over 7 and 5
    classes.  Default hidden sizes are the paper's 64x64 FCNN.
    """

    def __init__(
        self,
        observation_dim: int,
        space: Optional[DiscreteFactorSpace] = None,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
    ):
        self.space = space or DiscreteFactorSpace()
        self.observation_dim = observation_dim
        rng = np.random.default_rng(seed)
        self.trunk = MLP(observation_dim, hidden_sizes, hidden_sizes[-1],
                         activation="tanh", output_activation="tanh", rng=rng)
        self.heads = [
            Dense(hidden_sizes[-1], classes, rng=rng, weight_scale=0.01)
            for classes in self.space.sizes
        ]
        self.value_head = Dense(hidden_sizes[-1], 1, rng=rng, weight_scale=0.01)
        self.rng = np.random.default_rng(seed + 1)

    @property
    def vf_head(self) -> Dense:
        """Legacy alias for the first categorical head."""
        return self.heads[0]

    @property
    def if_head(self) -> Dense:
        """Legacy alias for the second categorical head."""
        return self.heads[1]

    # -- forward -----------------------------------------------------------------

    def _heads(self, observations: Tensor) -> Tuple[List[Tensor], Tensor]:
        hidden = self.trunk(observations)
        return [head(hidden) for head in self.heads], self.value_head(hidden)

    def act(self, observation: np.ndarray, deterministic: bool = False) -> PolicyOutput:
        with no_grad():
            batch = Tensor(observation.reshape(1, -1))
            logits, value = self._heads(batch)
            indices: List[int] = []
            log_prob = 0.0
            for head_logits in logits:
                probs = _softmax(head_logits.numpy()[0])
                if deterministic:
                    index = int(np.argmax(probs))
                else:
                    index = int(self.rng.choice(len(probs), p=probs))
                indices.append(index)
                log_prob += float(np.log(probs[index] + 1e-12))
            return PolicyOutput(
                action=np.array(indices),
                log_prob=log_prob,
                value=float(value.numpy()[0, 0]),
            )

    def evaluate(self, observations: np.ndarray, actions: np.ndarray):
        batch = Tensor(observations)
        logits, values = self._heads(batch)
        log_probs = None
        entropy = None
        for dimension, head_logits in enumerate(logits):
            dim_actions = actions[:, dimension].astype(np.int64)
            dim_log_probs = categorical_log_prob(head_logits, dim_actions)
            dim_entropy = categorical_entropy(head_logits)
            log_probs = (
                dim_log_probs if log_probs is None else ops.add(log_probs, dim_log_probs)
            )
            entropy = (
                dim_entropy if entropy is None else ops.add(entropy, dim_entropy)
            )
        return log_probs, entropy, ops.reshape(values, (-1,))


class ContinuousPolicy(Policy):
    """Gaussian policy over N continuous action values in [0, 1].

    These are action-space definitions 2 and 3 of Figure 6 (one value for
    the whole action grid, or one per dimension); the environment rounds the
    sampled values to the nearest valid factors.
    """

    def __init__(
        self,
        observation_dim: int,
        action_dims: int = 1,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
        initial_log_std: float = -0.5,
        space: Optional[ActionSpace] = None,
    ):
        if action_dims < 1:
            raise ValueError("continuous policies need at least 1 action dimension")
        self.observation_dim = observation_dim
        self.action_dims = action_dims
        if space is not None:
            self.space = space
        else:
            self.space = (
                ContinuousJointSpace() if action_dims == 1 else ContinuousPairSpace()
            )
        rng = np.random.default_rng(seed)
        self.trunk = MLP(observation_dim, hidden_sizes, hidden_sizes[-1],
                         activation="tanh", output_activation="tanh", rng=rng)
        self.mean_head = Dense(hidden_sizes[-1], action_dims, rng=rng, weight_scale=0.01)
        self.value_head = Dense(hidden_sizes[-1], 1, rng=rng, weight_scale=0.01)
        self.log_std = Parameter(
            np.full((action_dims,), initial_log_std), name="log_std"
        )
        self.rng = np.random.default_rng(seed + 1)

    def _heads(self, observations: Tensor) -> Tuple[Tensor, Tensor]:
        hidden = self.trunk(observations)
        mean = ops.sigmoid(self.mean_head(hidden))  # keep the mean in [0, 1]
        value = self.value_head(hidden)
        return mean, value

    def act(self, observation: np.ndarray, deterministic: bool = False) -> PolicyOutput:
        with no_grad():
            batch = Tensor(observation.reshape(1, -1))
            mean, value = self._heads(batch)
            mean_values = mean.numpy()[0]
            std = np.exp(self.log_std.numpy())
            if deterministic:
                sample = mean_values
            else:
                sample = mean_values + std * self.rng.standard_normal(self.action_dims)
            log_prob = float(
                np.sum(
                    -0.5 * ((sample - mean_values) / std) ** 2
                    - np.log(std)
                    - 0.5 * np.log(2 * np.pi)
                )
            )
            return PolicyOutput(
                action=np.clip(sample, 0.0, 1.0),
                log_prob=log_prob,
                value=float(value.numpy()[0, 0]),
            )

    def evaluate(self, observations: np.ndarray, actions: np.ndarray):
        batch = Tensor(observations)
        mean, values = self._heads(batch)
        log_probs = gaussian_log_prob(mean, self.log_std, actions)
        entropy = gaussian_entropy(self.log_std)
        # Broadcast the (scalar) entropy across the batch for a uniform API.
        batch_size = observations.shape[0]
        entropy = ops.mul(entropy, Tensor(np.ones(batch_size)))
        return log_probs, entropy, ops.reshape(values, (-1,))


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


def make_policy(
    kind: str,
    observation_dim: int,
    hidden_sizes: Sequence[int] = (64, 64),
    seed: int = 0,
    space: Optional[ActionSpace] = None,
) -> Policy:
    """Factory for the three action-space variants of Figure 6.

    ``space`` carries a task's own menus into the policy; without it the
    paper's (VF, IF) defaults are used.
    """
    if kind == "discrete":
        if space is not None and not isinstance(space, DiscreteFactorSpace):
            raise ValueError("discrete policies need a DiscreteFactorSpace")
        return DiscretePolicy(
            observation_dim, space=space, hidden_sizes=hidden_sizes, seed=seed
        )
    if kind == "continuous1":
        if space is not None and not isinstance(space, ContinuousJointSpace):
            raise ValueError("continuous1 policies need a ContinuousJointSpace")
        return ContinuousPolicy(observation_dim, action_dims=1,
                                hidden_sizes=hidden_sizes, seed=seed, space=space)
    if kind == "continuous2":
        if space is not None and not isinstance(space, ContinuousPairSpace):
            raise ValueError("continuous2 policies need a ContinuousPairSpace")
        dims = space.dims if space is not None else 2
        return ContinuousPolicy(observation_dim, action_dims=dims,
                                hidden_sizes=hidden_sizes, seed=seed, space=space)
    raise ValueError(f"unknown policy kind {kind!r}")
