"""Policy networks: one shared tanh-MLP trunk, task-conditioned heads.

Two multi-task architectures share the routing API:

* :class:`MultiTaskPolicy` — a shared trunk feeding one discrete *head
  bank* per optimization task (categorical heads per decision dimension
  or a Gaussian mean head, plus a value head, built from the task's own
  :class:`~repro.rl.spaces.ActionSpace`).
* :class:`ConditionedPolicy` — a learned task-embedding table: each row
  is concatenated onto the shared-trunk output and fed through one head
  stack per action *arity*, so same-arity tasks share heads and are told
  apart only by their embedding — which is what lets the policy transfer
  to tasks it never trained on (see ``add_task``/``transfer_parameters``).

``act``/``evaluate`` take a task id and route through that task's bank or
embedding, so one network jointly learns several tasks while each task
keeps its own action menus.  :func:`make_policy` picks the architecture
via ``conditioning=`` ("embedding" is the default for joint spaces,
"banks" the legacy per-task banks).

Single-task policies are the one-head special case:
:class:`DiscretePolicy` and :class:`ContinuousPolicy` are thin
specializations holding exactly one bank, with construction order (and
therefore seeded weights and sampling behaviour) identical to the
pre-redesign classes.  With the default (VF, IF) space the discrete policy
reproduces the paper's architecture exactly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro.nn import ops
from repro.nn.layers import Dense, MLP, Module, Parameter
from repro.nn.losses import (
    categorical_entropy,
    categorical_log_prob,
    gaussian_entropy,
    gaussian_log_prob,
)
from repro.nn.tensor import Tensor, no_grad
from repro.rl.spaces import (
    ActionSpace,
    ContinuousJointSpace,
    ContinuousPairSpace,
    DiscreteFactorSpace,
)

#: Head-bank key used by single-task policies constructed without a task
#: name (the legacy ``space=`` path).  A bank under this key answers *any*
#: requested task id — it predates task conditioning, so there is nothing
#: to misroute.
DEFAULT_HEAD = "default"


@dataclass
class PolicyOutput:
    """Result of acting on one observation."""

    action: np.ndarray
    log_prob: float
    value: float


# -- batch-size-invariant inference kernels -----------------------------------
#
# ``act_batch`` guarantees byte-identical results to N sequential ``act``
# calls.  BLAS ``@`` breaks that guarantee: (1, K) @ (K, M) and row i of
# (N, K) @ (K, M) take different kernel paths and differ in the last ULP.
# ``np.einsum`` contracts each output element independently of the batch
# size, so the whole inference forward is built on it.

_NUMPY_ACTIVATIONS = {
    "relu": lambda x: np.maximum(x, 0.0),
    "tanh": np.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "linear": lambda x: x,
}


def _stable_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Matmul whose row ``i`` is bitwise independent of the batch size."""
    return np.einsum("ij,jk->ik", x, w)


def _dense_forward(layer: Dense, x: np.ndarray) -> np.ndarray:
    output = _stable_matmul(x, layer.weight.data) + layer.bias.data
    return _NUMPY_ACTIVATIONS[layer.activation](output)


def _trunk_forward(trunk: MLP, x: np.ndarray) -> np.ndarray:
    """Raw-NumPy forward through the trunk (no autodiff graph)."""
    out = x
    for layer in trunk.network.layers:
        out = _dense_forward(layer, out)
    return out


def _grouped_act(
    banks: List["_TaskHeads"],
    features: np.ndarray,
    rng: np.random.Generator,
    deterministic: bool,
) -> List[PolicyOutput]:
    """Vectorized sampling over feature rows, each served by ``banks[i]``.

    RNG values are drawn flat in row order first, then rows are grouped by
    head bank so mixed-task chunks run one batched head forward per bank —
    the sample stream equals that of sequential per-row acts (the
    seed-identity guarantee the rollout layer relies on).
    """
    count = features.shape[0]
    draw_rows: List[Optional[np.ndarray]] = [None] * count
    if not deterministic:
        kinds = {bank.kind for bank in banks}
        if len(kinds) == 1:
            # One flat draw covering every row, split in row order:
            # identical stream to per-row draws (array fills are
            # sequential), one Generator call instead of N.
            counts = [bank.draw_dims for bank in banks]
            total = int(np.sum(counts, dtype=np.int64)) if counts else 0
            flat = (
                rng.random(total)
                if kinds == {"discrete"}
                else rng.standard_normal(total)
            )
            offset = 0
            for index, width in enumerate(counts):
                draw_rows[index] = flat[offset : offset + width]
                offset += width
        else:
            # Mixed discrete/Gaussian banks interleave uniform and
            # normal draws; keep the exact serial consumption order.
            for index, bank in enumerate(banks):
                draw_rows[index] = (
                    rng.random(bank.draw_dims)
                    if bank.kind == "discrete"
                    else rng.standard_normal(bank.draw_dims)
                )
    groups: "OrderedDict[int, List[int]]" = OrderedDict()
    bank_by_id = {}
    for index, bank in enumerate(banks):
        bank_by_id[id(bank)] = bank
        groups.setdefault(id(bank), []).append(index)
    outputs: List[Optional[PolicyOutput]] = [None] * count
    for bank_id, row_indices in groups.items():
        bank = bank_by_id[bank_id]
        grouped_draws = None
        if not deterministic:
            grouped_draws = np.stack([draw_rows[i] for i in row_indices])
        actions, log_probs, values = bank.act_batch_from_hidden(
            features[row_indices], grouped_draws, deterministic
        )
        for position, index in enumerate(row_indices):
            outputs[index] = PolicyOutput(
                action=actions[position].copy(),
                log_prob=float(log_probs[position]),
                value=float(values[position]),
            )
    return outputs  # type: ignore[return-value]


class _TaskHeads(Module):
    """One task's head bank: action heads + value head over the trunk.

    ``kind`` is ``"discrete"`` (one categorical head per menu) or
    ``"gaussian"`` (one mean dimension per continuous value, with a
    learned log-std).  Construction draws from ``rng`` in the exact order
    the pre-redesign single-task policies did — action heads, then the
    value head — so a one-bank policy is weight-identical to the seed.
    """

    def __init__(
        self,
        hidden_dim: int,
        space: ActionSpace,
        rng: np.random.Generator,
        initial_log_std: float = -0.5,
        action_dims: Optional[int] = None,
    ):
        self.space = space
        if isinstance(space, DiscreteFactorSpace):
            self.kind = "discrete"
            self.heads = [
                Dense(hidden_dim, classes, rng=rng, weight_scale=0.01)
                for classes in space.sizes
            ]
            self.value_head = Dense(hidden_dim, 1, rng=rng, weight_scale=0.01)
            self.action_dims = space.dims
        else:
            self.kind = "gaussian"
            if action_dims is None:
                action_dims = 1 if isinstance(space, ContinuousJointSpace) else space.dims
            if action_dims < 1:
                raise ValueError("continuous head banks need at least 1 action dimension")
            self.action_dims = int(action_dims)
            self.mean_head = Dense(
                hidden_dim, self.action_dims, rng=rng, weight_scale=0.01
            )
            self.value_head = Dense(hidden_dim, 1, rng=rng, weight_scale=0.01)
            self.log_std = Parameter(
                np.full((self.action_dims,), initial_log_std), name="log_std"
            )

    # -- inference ----------------------------------------------------------

    @property
    def draw_dims(self) -> int:
        """RNG values one sampled action consumes (uniforms or normals)."""
        return len(self.heads) if self.kind == "discrete" else self.action_dims

    def act_batch_from_hidden(
        self,
        hidden: np.ndarray,
        draws: Optional[np.ndarray],
        deterministic: bool,
    ):
        """Vectorized sampling over ``hidden`` rows (raw NumPy, no graph).

        ``draws`` carries each row's RNG values — uniforms for categorical
        heads (sampling replicates ``Generator.choice``'s inverse-CDF walk
        exactly), normals for Gaussian banks — so the caller controls the
        stream order and batched sampling stays byte-identical to serial.
        Returns ``(actions, log_probs, values)`` arrays over the rows.
        """
        rows = hidden.shape[0]
        value_head = self.value_head
        values = (
            _stable_matmul(hidden, value_head.weight.data) + value_head.bias.data
        )[:, 0]
        if self.kind == "discrete":
            indices = np.empty((rows, len(self.heads)), dtype=np.int64)
            log_probs = np.zeros(rows)
            for position, head in enumerate(self.heads):
                logits = _stable_matmul(hidden, head.weight.data) + head.bias.data
                shifted = logits - logits.max(axis=1, keepdims=True)
                exps = np.exp(shifted)
                probs = exps / exps.sum(axis=1, keepdims=True)
                if deterministic:
                    chosen = np.argmax(probs, axis=1)
                else:
                    # Generator.choice(len(p), p=p) == searchsorted of one
                    # uniform into the normalized CDF, side="right".
                    cdf = np.cumsum(probs, axis=1)
                    cdf /= cdf[:, -1:]
                    chosen = (cdf <= draws[:, position, None]).sum(axis=1)
                indices[:, position] = chosen
                log_probs += np.log(probs[np.arange(rows), chosen] + 1e-12)
            return indices, log_probs, values
        mean_head = self.mean_head
        mean = _NUMPY_ACTIVATIONS["sigmoid"](
            _stable_matmul(hidden, mean_head.weight.data) + mean_head.bias.data
        )
        std = np.exp(self.log_std.numpy())
        sample = mean if deterministic else mean + std * draws
        log_probs = np.sum(
            -0.5 * ((sample - mean) / std) ** 2
            - np.log(std)
            - 0.5 * np.log(2 * np.pi),
            axis=1,
        )
        return np.clip(sample, 0.0, 1.0), log_probs, values

    def act_from_hidden(
        self, hidden: Tensor, rng: np.random.Generator, deterministic: bool
    ) -> PolicyOutput:
        value = self.value_head(hidden)
        if self.kind == "discrete":
            indices: List[int] = []
            log_prob = 0.0
            for head in self.heads:
                probs = _softmax(head(hidden).numpy()[0])
                if deterministic:
                    index = int(np.argmax(probs))
                else:
                    index = int(rng.choice(len(probs), p=probs))
                indices.append(index)
                log_prob += float(np.log(probs[index] + 1e-12))
            return PolicyOutput(
                action=np.array(indices),
                log_prob=log_prob,
                value=float(value.numpy()[0, 0]),
            )
        mean = ops.sigmoid(self.mean_head(hidden))  # keep the mean in [0, 1]
        mean_values = mean.numpy()[0]
        std = np.exp(self.log_std.numpy())
        if deterministic:
            sample = mean_values
        else:
            sample = mean_values + std * rng.standard_normal(self.action_dims)
        log_prob = float(
            np.sum(
                -0.5 * ((sample - mean_values) / std) ** 2
                - np.log(std)
                - 0.5 * np.log(2 * np.pi)
            )
        )
        return PolicyOutput(
            action=np.clip(sample, 0.0, 1.0),
            log_prob=log_prob,
            value=float(value.numpy()[0, 0]),
        )

    def evaluate_from_hidden(self, hidden: Tensor, actions: np.ndarray):
        values = self.value_head(hidden)
        if self.kind == "discrete":
            actions = np.asarray(actions)
            # One fused matmul over every head's classes; per-head log-probs
            # and entropies read their own column slice of the result.
            weight = ops.concatenate([head.weight for head in self.heads], axis=1)
            bias = ops.concatenate([head.bias for head in self.heads], axis=0)
            logits = ops.add(ops.matmul(hidden, weight), bias)
            log_probs = None
            entropy = None
            offset = 0
            for dimension, head in enumerate(self.heads):
                head_logits = ops.slice_last_axis(
                    logits, offset, offset + head.out_features
                )
                offset += head.out_features
                dim_actions = actions[:, dimension].astype(np.int64)
                dim_log_probs = categorical_log_prob(head_logits, dim_actions)
                dim_entropy = categorical_entropy(head_logits)
                log_probs = (
                    dim_log_probs
                    if log_probs is None
                    else ops.add(log_probs, dim_log_probs)
                )
                entropy = (
                    dim_entropy if entropy is None else ops.add(entropy, dim_entropy)
                )
            return log_probs, entropy, ops.reshape(values, (-1,))
        mean = ops.sigmoid(self.mean_head(hidden))
        # Joint minibatches are padded to the widest task's arity; only this
        # bank's own dimensions carry meaning.
        actions = np.asarray(actions)[:, : self.action_dims]
        log_probs = gaussian_log_prob(mean, self.log_std, actions)
        # The state-independent Gaussian's entropy is one scalar; broadcast
        # it across the batch without the ones-vector multiply.
        entropy = ops.broadcast_to(
            gaussian_entropy(self.log_std), (actions.shape[0],)
        )
        return log_probs, entropy, ops.reshape(values, (-1,))


class Policy(Module):
    """Common interface: act on observations, evaluate log-probs for PPO.

    ``task`` selects the head bank on multi-task policies; single-task
    policies accept and ignore it (the one-head special case).
    """

    observation_dim: int

    def act(
        self,
        observation: np.ndarray,
        deterministic: bool = False,
        task: Optional[str] = None,
    ) -> PolicyOutput:
        raise NotImplementedError

    def act_batch(
        self,
        observations,
        deterministic: bool = False,
        task: Optional[str] = None,
        tasks: Optional[Sequence[str]] = None,
    ) -> List[PolicyOutput]:
        """Act on many observations at once; results in presentation order.

        ``tasks`` routes row ``i`` through head bank ``tasks[i]`` (mixed-task
        chunks from a joint rollout); ``task`` applies one bank to every row.
        This base implementation is the serial fallback for policies that
        only define ``act``; :class:`MultiTaskPolicy` overrides it with a
        vectorized forward that consumes the RNG stream in the same order.
        """
        rows = _as_observation_matrix(observations)
        names = _row_task_names(rows.shape[0], task, tasks)
        return [
            self.act(row, deterministic=deterministic, task=name)
            for row, name in zip(rows, names)
        ]

    def evaluate(
        self, observations: np.ndarray, actions: np.ndarray, task: Optional[str] = None
    ):
        """Return (log_probs, entropy, values) tensors for a batch."""
        raise NotImplementedError


class MultiTaskPolicy(Policy):
    """Shared trunk + per-task head banks (the joint-training network).

    ``spaces`` is an ordered ``task name -> ActionSpace`` mapping; one head
    bank is built per entry, all fed by the same tanh-MLP trunk, so
    representation learning is amortized across tasks while every task
    keeps its own action menus, log-probs and value estimate.

    ``act``/``evaluate`` take the task id to route through.  A policy with
    exactly one bank (the single-task special case) routes every request to
    it when the request's task id matches the bank — or unconditionally
    when the bank was built under the legacy :data:`DEFAULT_HEAD` key.
    """

    def __init__(
        self,
        observation_dim: int,
        spaces: Mapping[str, ActionSpace],
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
        initial_log_std: float = -0.5,
        action_dims: Optional[int] = None,
    ):
        if not spaces:
            raise ValueError("a policy needs at least one task head bank")
        if action_dims is not None and len(spaces) > 1:
            raise ValueError(
                "action_dims overrides are only meaningful for single-task "
                "policies; multi-task banks derive their arity from the space"
            )
        self.observation_dim = observation_dim
        self.hidden_sizes = tuple(hidden_sizes)
        rng = np.random.default_rng(seed)
        self.trunk = MLP(observation_dim, hidden_sizes, hidden_sizes[-1],
                         activation="tanh", output_activation="tanh", rng=rng)
        self.task_heads: "OrderedDict[str, _TaskHeads]" = OrderedDict()
        for name, space in spaces.items():
            self.task_heads[str(name)] = _TaskHeads(
                hidden_sizes[-1],
                space,
                rng,
                initial_log_std=initial_log_std,
                action_dims=action_dims,
            )
        self.rng = np.random.default_rng(seed + 1)

    # -- routing ------------------------------------------------------------

    @property
    def task_names(self) -> List[str]:
        """Names of the tasks this policy holds head banks for."""
        return list(self.task_heads)

    @property
    def spaces(self) -> "OrderedDict[str, ActionSpace]":
        """Ordered ``task name -> ActionSpace`` mapping of the head banks."""
        return OrderedDict(
            (name, bank.space) for name, bank in self.task_heads.items()
        )

    @property
    def space(self) -> ActionSpace:
        """The single bank's action space (single-task policies only)."""
        return self.heads_for(None).space

    def heads_for(self, task: Optional[str] = None) -> _TaskHeads:
        """The head bank serving ``task`` (a name, a task object, or None)."""
        if task is None:
            if len(self.task_heads) == 1:
                return next(iter(self.task_heads.values()))
            raise ValueError(
                "multi-task policy: pass task=<name> to select a head bank; "
                f"trained heads: {list(self.task_heads)}"
            )
        name = task if isinstance(task, str) else getattr(task, "name", str(task))
        bank = self.task_heads.get(name)
        if bank is not None:
            return bank
        if len(self.task_heads) == 1 and DEFAULT_HEAD in self.task_heads:
            # Legacy single-task policies predate task conditioning: with
            # one unnamed bank there is nothing to misroute.
            return self.task_heads[DEFAULT_HEAD]
        raise ValueError(
            f"policy has no head bank for task {name!r}; "
            f"trained heads: {list(self.task_heads)}"
        )

    def space_for(self, task: Optional[str] = None) -> ActionSpace:
        """The action space of the bank serving ``task``."""
        return self.heads_for(task).space

    # -- forward ------------------------------------------------------------

    def act(
        self,
        observation: np.ndarray,
        deterministic: bool = False,
        task: Optional[str] = None,
    ) -> PolicyOutput:
        # The batch-of-one special case of ``act_batch``: same code path,
        # same RNG consumption, so serial and batched rollouts are
        # byte-identical under the same seed.
        return self.act_batch(
            np.asarray(observation, dtype=np.float64).reshape(1, -1),
            deterministic=deterministic,
            task=task,
        )[0]

    def act_batch(
        self,
        observations,
        deterministic: bool = False,
        task: Optional[str] = None,
        tasks: Optional[Sequence[str]] = None,
    ) -> List[PolicyOutput]:
        """One trunk matmul over all rows, vectorized per-head sampling.

        Rows are grouped by head bank (mixed-task chunks run one batched
        head forward per bank) but RNG values are drawn flat in row order
        first, so the sample stream equals that of sequential ``act`` calls
        — the seed-identity guarantee the rollout layer relies on.
        """
        rows = _as_observation_matrix(observations)
        count = rows.shape[0]
        if tasks is None:
            banks = [self.heads_for(task)] * count
        else:
            names = _row_task_names(count, None, tasks)
            banks = [self.heads_for(name) for name in names]
        if count == 0:
            return []
        hidden = _trunk_forward(self.trunk, rows)
        return _grouped_act(banks, hidden, self.rng, deterministic)

    def evaluate(
        self, observations: np.ndarray, actions: np.ndarray, task: Optional[str] = None
    ):
        bank = self.heads_for(task)
        batch = Tensor(observations)
        hidden = self.trunk(batch)
        return bank.evaluate_from_hidden(hidden, actions)


class DiscretePolicy(MultiTaskPolicy):
    """One categorical head per decision dimension plus a value head.

    This is action-space definition 1 of Figure 6, the one the paper finds
    performs best: for the (VF, IF) default it is two heads over 7 and 5
    classes.  Default hidden sizes are the paper's 64x64 FCNN.  Since the
    multi-task redesign this is the one-bank special case of
    :class:`MultiTaskPolicy`; weights and sampling are seed-identical to
    the pre-redesign class.
    """

    def __init__(
        self,
        observation_dim: int,
        space: Optional[DiscreteFactorSpace] = None,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
    ):
        super().__init__(
            observation_dim,
            {DEFAULT_HEAD: space or DiscreteFactorSpace()},
            hidden_sizes=hidden_sizes,
            seed=seed,
        )

    @property
    def heads(self) -> List[Dense]:
        """The categorical heads of the single bank."""
        return self.heads_for(None).heads

    @property
    def value_head(self) -> Dense:
        return self.heads_for(None).value_head

    @property
    def vf_head(self) -> Dense:
        """Legacy alias for the first categorical head."""
        return self.heads[0]

    @property
    def if_head(self) -> Dense:
        """Legacy alias for the second categorical head."""
        return self.heads[1]


class ContinuousPolicy(MultiTaskPolicy):
    """Gaussian policy over N continuous action values in [0, 1].

    These are action-space definitions 2 and 3 of Figure 6 (one value for
    the whole action grid, or one per dimension); the environment rounds the
    sampled values to the nearest valid factors.  The one-bank special case
    of :class:`MultiTaskPolicy`.
    """

    def __init__(
        self,
        observation_dim: int,
        action_dims: int = 1,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
        initial_log_std: float = -0.5,
        space: Optional[ActionSpace] = None,
    ):
        if action_dims < 1:
            raise ValueError("continuous policies need at least 1 action dimension")
        if space is None:
            space = ContinuousJointSpace() if action_dims == 1 else ContinuousPairSpace()
        super().__init__(
            observation_dim,
            {DEFAULT_HEAD: space},
            hidden_sizes=hidden_sizes,
            seed=seed,
            initial_log_std=initial_log_std,
            action_dims=action_dims,
        )

    @property
    def action_dims(self) -> int:
        return self.heads_for(None).action_dims

    @property
    def mean_head(self) -> Dense:
        return self.heads_for(None).mean_head

    @property
    def value_head(self) -> Dense:
        return self.heads_for(None).value_head

    @property
    def log_std(self) -> Parameter:
        return self.heads_for(None).log_std


class ConditionedPolicy(Policy):
    """Shared trunk + one embedding-conditioned head stack per arity.

    Instead of a discrete head bank per task, every task gets a learned
    embedding row; the trunk output is concatenated with the acting task's
    embedding and fed to a head stack shared by every task of the same
    action arity (same menu sizes for discrete spaces, same dimensionality
    for Gaussian ones).  The stack therefore learns one task-conditioned
    decision function, and the embedding table is the only thing that
    distinguishes tasks — which is what makes transfer to a *new* task a
    head-only problem: :meth:`add_task` copies the trainable
    ``new_task_init`` row into a fresh embedding row (plus a private head
    stack), and :meth:`transfer_parameters` names exactly the parameters a
    frozen-trunk fine-tune may touch.

    The routing API (``task_names`` / ``spaces`` / ``space_for`` /
    ``heads_for`` / ``act`` / ``act_batch`` / ``evaluate``) matches
    :class:`MultiTaskPolicy`, so agents, trainers, the serving tier and
    the comparison protocol work unchanged.  ``act_batch`` keeps the
    byte-identity guarantee: one flat RNG draw in row order, einsum
    forwards, so batched == N serial acts.
    """

    def __init__(
        self,
        observation_dim: int,
        spaces: Mapping[str, ActionSpace],
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
        initial_log_std: float = -0.5,
        task_embed_dim: int = 8,
        policy_kind: Optional[str] = None,
    ):
        if not spaces:
            raise ValueError("a conditioned policy needs at least one task")
        for name in spaces:
            if str(name) == DEFAULT_HEAD:
                raise ValueError(
                    "conditioned policies key every head by task name; the "
                    f"legacy unnamed bank ({DEFAULT_HEAD!r}) has no task to "
                    "embed — use conditioning='banks' for it"
                )
        if int(task_embed_dim) < 1:
            raise ValueError("task_embed_dim must be at least 1")
        self.observation_dim = observation_dim
        self.hidden_sizes = tuple(hidden_sizes)
        self.task_embed_dim = int(task_embed_dim)
        self.initial_log_std = initial_log_std
        self.policy_kind = policy_kind or _kind_for_space(
            next(iter(spaces.values()))
        )
        self._seed = seed
        self._tasks_added = 0
        rng = np.random.default_rng(seed)
        self.trunk = MLP(observation_dim, hidden_sizes, hidden_sizes[-1],
                         activation="tanh", output_activation="tanh", rng=rng)
        # The trainable prior for unseen tasks: add_task() starts a new
        # task's embedding row from this row's *learned* value, so joint
        # training can shape where fresh tasks begin in embedding space.
        self.new_task_init = Parameter(
            rng.normal(0.0, 0.1, size=(self.task_embed_dim,)),
            name="task_embed_init",
        )
        self.task_embeddings: "OrderedDict[str, Parameter]" = OrderedDict()
        self.task_spaces: "OrderedDict[str, ActionSpace]" = OrderedDict()
        self.head_stacks: "OrderedDict[tuple, _TaskHeads]" = OrderedDict()
        self._stack_keys: "OrderedDict[str, tuple]" = OrderedDict()
        for name, space in spaces.items():
            self._register_task(str(name), space, rng)
        self.rng = np.random.default_rng(seed + 1)

    @staticmethod
    def _signature(space: ActionSpace) -> tuple:
        """The arity key deciding which head stack serves a space."""
        if isinstance(space, DiscreteFactorSpace):
            return ("discrete", tuple(space.sizes))
        dims = 1 if isinstance(space, ContinuousJointSpace) else space.dims
        return ("gaussian", int(dims))

    def _register_task(
        self,
        name: str,
        space: ActionSpace,
        rng: np.random.Generator,
        embedding: Optional[Parameter] = None,
        private_stack: bool = False,
    ) -> None:
        if name in self.task_spaces:
            raise ValueError(f"task {name!r} already has an embedding row")
        self.task_embeddings[name] = embedding if embedding is not None else Parameter(
            rng.normal(0.0, 0.1, size=(self.task_embed_dim,)),
            name=f"task_embed[{name}]",
        )
        self.task_spaces[name] = space
        key = self._signature(space)
        if private_stack:
            # Transfer-added tasks get their own stack so head-only
            # fine-tuning cannot move a jointly-trained task's outputs.
            key = key + (name,)
        if key not in self.head_stacks:
            self.head_stacks[key] = _TaskHeads(
                self.hidden_sizes[-1] + self.task_embed_dim,
                space,
                rng,
                initial_log_std=self.initial_log_std,
            )
        self._stack_keys[name] = key

    # -- routing ------------------------------------------------------------

    def _resolve_name(self, task) -> str:
        if task is None:
            if len(self.task_spaces) == 1:
                return next(iter(self.task_spaces))
            raise ValueError(
                "conditioned policy: pass task=<name> to select a task "
                f"embedding; trained tasks: {list(self.task_spaces)}"
            )
        name = task if isinstance(task, str) else getattr(task, "name", str(task))
        if name in self.task_spaces:
            return name
        raise ValueError(
            f"policy has no task embedding for {name!r}; "
            f"trained tasks: {list(self.task_spaces)}"
        )

    @property
    def task_names(self) -> List[str]:
        """Names of the tasks this policy holds embedding rows for."""
        return list(self.task_spaces)

    @property
    def spaces(self) -> "OrderedDict[str, ActionSpace]":
        """Ordered ``task name -> ActionSpace`` mapping (the task's own
        space, even when several tasks share one head stack)."""
        return OrderedDict(self.task_spaces)

    @property
    def space(self) -> ActionSpace:
        """The single task's action space (single-task policies only)."""
        return self.space_for(None)

    def space_for(self, task=None) -> ActionSpace:
        """The action space of the task ``task`` (its own menus — tasks
        sharing a head stack keep distinct spaces)."""
        return self.task_spaces[self._resolve_name(task)]

    def heads_for(self, task=None) -> _TaskHeads:
        """The head stack serving ``task`` (shared across same-arity tasks)."""
        return self.head_stacks[self._stack_keys[self._resolve_name(task)]]

    # -- transfer -----------------------------------------------------------

    def add_task(self, name, space: ActionSpace) -> Parameter:
        """Register an unseen task: a fresh embedding row + private heads.

        The embedding row starts from the trainable ``new_task_init``
        prior; the head stack is drawn from a deterministic per-addition
        stream of the construction seed, so transfer runs are seed-stable.
        Returns the new embedding row.
        """
        name = str(name) if isinstance(name, str) else getattr(name, "name", str(name))
        space_class = _KIND_SPACE_CLASSES[self.policy_kind]
        if not isinstance(space, space_class):
            raise ValueError(
                f"{self.policy_kind} policies need a {space_class.__name__}; "
                f"task {name!r} supplied a {type(space).__name__}"
            )
        self._tasks_added += 1
        rng = np.random.default_rng(self._seed + 104729 * self._tasks_added)
        row = Parameter(self.new_task_init.data.copy(), name=f"task_embed[{name}]")
        self._register_task(name, space, rng, embedding=row, private_stack=True)
        return row

    def transfer_parameters(self, task) -> List[Parameter]:
        """The parameters a frozen-trunk fine-tune of ``task`` may update:
        that task's embedding row plus its head stack — never the trunk,
        the new-task prior, or any other task's embedding row."""
        name = self._resolve_name(task)
        parameters: List[Parameter] = [self.task_embeddings[name]]
        parameters.extend(self.head_stacks[self._stack_keys[name]].parameters())
        return parameters

    # -- forward ------------------------------------------------------------

    def act(
        self,
        observation: np.ndarray,
        deterministic: bool = False,
        task: Optional[str] = None,
    ) -> PolicyOutput:
        # The batch-of-one special case of ``act_batch``: same code path,
        # same RNG consumption (see MultiTaskPolicy.act).
        return self.act_batch(
            np.asarray(observation, dtype=np.float64).reshape(1, -1),
            deterministic=deterministic,
            task=task,
        )[0]

    def act_batch(
        self,
        observations,
        deterministic: bool = False,
        task: Optional[str] = None,
        tasks: Optional[Sequence[str]] = None,
    ) -> List[PolicyOutput]:
        """One trunk matmul over all rows; per-row task embeddings are
        concatenated onto the hidden features before the (grouped) head
        stacks sample.  RNG draws are flat in row order, so batched
        sampling stays byte-identical to serial ``act`` calls."""
        rows = _as_observation_matrix(observations)
        count = rows.shape[0]
        if tasks is None:
            names = [self._resolve_name(task)] * count
        else:
            names = [
                self._resolve_name(entry)
                for entry in _row_task_names(count, None, tasks)
            ]
        if count == 0:
            return []
        hidden = _trunk_forward(self.trunk, rows)
        embeds = np.stack([self.task_embeddings[name].data for name in names])
        features = np.concatenate([hidden, embeds], axis=1)
        stacks = [self.head_stacks[self._stack_keys[name]] for name in names]
        return _grouped_act(stacks, features, self.rng, deterministic)

    def evaluate(
        self, observations: np.ndarray, actions: np.ndarray, task: Optional[str] = None
    ):
        name = self._resolve_name(task)
        stack = self.head_stacks[self._stack_keys[name]]
        batch = Tensor(observations)
        hidden = self.trunk(batch)
        row = ops.reshape(self.task_embeddings[name], (1, self.task_embed_dim))
        embed = ops.broadcast_to(
            row, (int(batch.data.shape[0]), self.task_embed_dim)
        )
        features = ops.concatenate([hidden, embed], axis=1)
        return stack.evaluate_from_hidden(features, actions)


def _kind_for_space(space: ActionSpace) -> str:
    """The ``make_policy`` kind string a space class corresponds to."""
    if isinstance(space, DiscreteFactorSpace):
        return "discrete"
    if isinstance(space, ContinuousJointSpace):
        return "continuous1"
    return "continuous2"


def _as_observation_matrix(observations) -> np.ndarray:
    """Coerce an observation batch (array, list of rows, single row) to 2-D."""
    rows = np.asarray(observations, dtype=np.float64)
    if rows.ndim == 1:
        rows = rows.reshape(1, -1)
    if rows.ndim != 2:
        raise ValueError(
            f"observations must be one row or a batch of rows, got shape {rows.shape}"
        )
    return rows


def _row_task_names(
    count: int, task: Optional[str], tasks: Optional[Sequence[str]]
) -> List[Optional[str]]:
    """Per-row task routing: ``tasks`` (one id per row) wins over ``task``."""
    if tasks is None:
        return [task] * count
    names = list(tasks)
    if len(names) != count:
        raise ValueError(
            f"tasks has {len(names)} entries for a batch of {count} observations"
        )
    return names


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


_KIND_SPACE_CLASSES = {
    "discrete": DiscreteFactorSpace,
    "continuous1": ContinuousJointSpace,
    "continuous2": ContinuousPairSpace,
}


def make_policy(
    kind: str,
    observation_dim: int,
    hidden_sizes: Sequence[int] = (64, 64),
    seed: int = 0,
    space: Optional[ActionSpace] = None,
    spaces: Optional[Mapping[str, ActionSpace]] = None,
    conditioning: Optional[str] = None,
    task_embed_dim: int = 8,
) -> Policy:
    """Factory for the three action-space variants of Figure 6.

    ``space`` carries a task's own menus into a single-task policy;
    without it the paper's (VF, IF) defaults are used.  ``spaces`` (an
    ordered ``task name -> ActionSpace`` mapping, every space of the same
    ``kind``) builds a multi-task policy instead.

    ``conditioning`` selects the multi-task architecture:

    * ``"embedding"`` — a :class:`ConditionedPolicy`: a learned task-
      embedding table concatenated onto the shared trunk, one head stack
      per action arity (``task_embed_dim`` sets the embedding width).
    * ``"banks"`` — the legacy :class:`MultiTaskPolicy` with one discrete
      head bank per task.
    * ``None`` (default) — ``"embedding"`` for a genuinely joint ``spaces``
      mapping (two or more tasks), ``"banks"`` for a single entry, keeping
      single-task construction byte-identical to the pre-conditioning
      wiring.
    """
    if kind not in _KIND_SPACE_CLASSES:
        raise ValueError(f"unknown policy kind {kind!r}")
    if conditioning not in (None, "banks", "embedding"):
        raise ValueError(
            f"unknown conditioning {conditioning!r}; pick 'banks' or 'embedding'"
        )
    space_class = _KIND_SPACE_CLASSES[kind]
    if spaces is not None:
        if space is not None:
            raise ValueError("pass either space or spaces, not both")
        for name, task_space in spaces.items():
            if not isinstance(task_space, space_class):
                raise ValueError(
                    f"{kind} policies need a {space_class.__name__}; task "
                    f"{name!r} supplied a {type(task_space).__name__}"
                )
        mode = conditioning or ("embedding" if len(spaces) > 1 else "banks")
        if mode == "embedding":
            return ConditionedPolicy(
                observation_dim,
                spaces=OrderedDict(spaces),
                hidden_sizes=hidden_sizes,
                seed=seed,
                task_embed_dim=task_embed_dim,
                policy_kind=kind,
            )
        return MultiTaskPolicy(
            observation_dim,
            spaces=OrderedDict(spaces),
            hidden_sizes=hidden_sizes,
            seed=seed,
        )
    if conditioning == "embedding":
        raise ValueError(
            "conditioning='embedding' needs a spaces= mapping (task name -> "
            "ActionSpace); the single-space path has no task name to embed"
        )
    if space is not None and not isinstance(space, space_class):
        raise ValueError(f"{kind} policies need a {space_class.__name__}")
    if kind == "discrete":
        return DiscretePolicy(
            observation_dim, space=space, hidden_sizes=hidden_sizes, seed=seed
        )
    if kind == "continuous1":
        return ContinuousPolicy(observation_dim, action_dims=1,
                                hidden_sizes=hidden_sizes, seed=seed, space=space)
    dims = space.dims if space is not None else 2
    return ContinuousPolicy(observation_dim, action_dims=dims,
                            hidden_sizes=hidden_sizes, seed=seed, space=space)
