"""Policy networks (tanh MLPs with categorical or Gaussian heads)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nn import ops
from repro.nn.initializers import zeros_init
from repro.nn.layers import Dense, MLP, Module, Parameter
from repro.nn.losses import (
    categorical_entropy,
    categorical_log_prob,
    gaussian_entropy,
    gaussian_log_prob,
)
from repro.nn.tensor import Tensor, no_grad
from repro.rl.spaces import ContinuousJointSpace, ContinuousPairSpace, DiscreteFactorSpace


@dataclass
class PolicyOutput:
    """Result of acting on one observation."""

    action: np.ndarray
    log_prob: float
    value: float


class Policy(Module):
    """Common interface: act on observations, evaluate log-probs for PPO."""

    observation_dim: int

    def act(self, observation: np.ndarray, deterministic: bool = False) -> PolicyOutput:
        raise NotImplementedError

    def evaluate(self, observations: np.ndarray, actions: np.ndarray):
        """Return (log_probs, entropy, values) tensors for a batch."""
        raise NotImplementedError


class DiscretePolicy(Policy):
    """Two categorical heads (VF index, IF index) plus a value head.

    This is action-space definition 1 of Figure 6, the one the paper finds
    performs best.  Default hidden sizes are the paper's 64x64 FCNN.
    """

    def __init__(
        self,
        observation_dim: int,
        space: Optional[DiscreteFactorSpace] = None,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
    ):
        self.space = space or DiscreteFactorSpace()
        self.observation_dim = observation_dim
        vf_classes, if_classes = self.space.sizes
        rng = np.random.default_rng(seed)
        self.trunk = MLP(observation_dim, hidden_sizes, hidden_sizes[-1],
                         activation="tanh", output_activation="tanh", rng=rng)
        self.vf_head = Dense(hidden_sizes[-1], vf_classes, rng=rng, weight_scale=0.01)
        self.if_head = Dense(hidden_sizes[-1], if_classes, rng=rng, weight_scale=0.01)
        self.value_head = Dense(hidden_sizes[-1], 1, rng=rng, weight_scale=0.01)
        self.rng = np.random.default_rng(seed + 1)

    # -- forward -----------------------------------------------------------------

    def _heads(self, observations: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        hidden = self.trunk(observations)
        return self.vf_head(hidden), self.if_head(hidden), self.value_head(hidden)

    def act(self, observation: np.ndarray, deterministic: bool = False) -> PolicyOutput:
        with no_grad():
            batch = Tensor(observation.reshape(1, -1))
            vf_logits, if_logits, value = self._heads(batch)
            vf_probs = _softmax(vf_logits.numpy()[0])
            if_probs = _softmax(if_logits.numpy()[0])
            if deterministic:
                vf_index = int(np.argmax(vf_probs))
                if_index = int(np.argmax(if_probs))
            else:
                vf_index = int(self.rng.choice(len(vf_probs), p=vf_probs))
                if_index = int(self.rng.choice(len(if_probs), p=if_probs))
            log_prob = float(
                np.log(vf_probs[vf_index] + 1e-12) + np.log(if_probs[if_index] + 1e-12)
            )
            return PolicyOutput(
                action=np.array([vf_index, if_index]),
                log_prob=log_prob,
                value=float(value.numpy()[0, 0]),
            )

    def evaluate(self, observations: np.ndarray, actions: np.ndarray):
        batch = Tensor(observations)
        vf_logits, if_logits, values = self._heads(batch)
        vf_actions = actions[:, 0].astype(np.int64)
        if_actions = actions[:, 1].astype(np.int64)
        log_probs = ops.add(
            categorical_log_prob(vf_logits, vf_actions),
            categorical_log_prob(if_logits, if_actions),
        )
        entropy = ops.add(categorical_entropy(vf_logits), categorical_entropy(if_logits))
        return log_probs, entropy, ops.reshape(values, (-1,))


class ContinuousPolicy(Policy):
    """Gaussian policy over 1 or 2 continuous action values in [0, 1].

    These are action-space definitions 2 and 3 of Figure 6; the environment
    rounds the sampled values to the nearest valid factors.
    """

    def __init__(
        self,
        observation_dim: int,
        action_dims: int = 1,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
        initial_log_std: float = -0.5,
    ):
        if action_dims not in (1, 2):
            raise ValueError("continuous policies use 1 or 2 action dimensions")
        self.observation_dim = observation_dim
        self.action_dims = action_dims
        self.space = (
            ContinuousJointSpace() if action_dims == 1 else ContinuousPairSpace()
        )
        rng = np.random.default_rng(seed)
        self.trunk = MLP(observation_dim, hidden_sizes, hidden_sizes[-1],
                         activation="tanh", output_activation="tanh", rng=rng)
        self.mean_head = Dense(hidden_sizes[-1], action_dims, rng=rng, weight_scale=0.01)
        self.value_head = Dense(hidden_sizes[-1], 1, rng=rng, weight_scale=0.01)
        self.log_std = Parameter(
            np.full((action_dims,), initial_log_std), name="log_std"
        )
        self.rng = np.random.default_rng(seed + 1)

    def _heads(self, observations: Tensor) -> Tuple[Tensor, Tensor]:
        hidden = self.trunk(observations)
        mean = ops.sigmoid(self.mean_head(hidden))  # keep the mean in [0, 1]
        value = self.value_head(hidden)
        return mean, value

    def act(self, observation: np.ndarray, deterministic: bool = False) -> PolicyOutput:
        with no_grad():
            batch = Tensor(observation.reshape(1, -1))
            mean, value = self._heads(batch)
            mean_values = mean.numpy()[0]
            std = np.exp(self.log_std.numpy())
            if deterministic:
                sample = mean_values
            else:
                sample = mean_values + std * self.rng.standard_normal(self.action_dims)
            log_prob = float(
                np.sum(
                    -0.5 * ((sample - mean_values) / std) ** 2
                    - np.log(std)
                    - 0.5 * np.log(2 * np.pi)
                )
            )
            return PolicyOutput(
                action=np.clip(sample, 0.0, 1.0),
                log_prob=log_prob,
                value=float(value.numpy()[0, 0]),
            )

    def evaluate(self, observations: np.ndarray, actions: np.ndarray):
        batch = Tensor(observations)
        mean, values = self._heads(batch)
        log_probs = gaussian_log_prob(mean, self.log_std, actions)
        entropy = gaussian_entropy(self.log_std)
        # Broadcast the (scalar) entropy across the batch for a uniform API.
        batch_size = observations.shape[0]
        entropy = ops.mul(entropy, Tensor(np.ones(batch_size)))
        return log_probs, entropy, ops.reshape(values, (-1,))


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


def make_policy(
    kind: str,
    observation_dim: int,
    hidden_sizes: Sequence[int] = (64, 64),
    seed: int = 0,
) -> Policy:
    """Factory for the three action-space variants of Figure 6."""
    if kind == "discrete":
        return DiscretePolicy(observation_dim, hidden_sizes=hidden_sizes, seed=seed)
    if kind == "continuous1":
        return ContinuousPolicy(observation_dim, action_dims=1,
                                hidden_sizes=hidden_sizes, seed=seed)
    if kind == "continuous2":
        return ContinuousPolicy(observation_dim, action_dims=2,
                                hidden_sizes=hidden_sizes, seed=seed)
    raise ValueError(f"unknown policy kind {kind!r}")
