"""The optimization environment: a contextual bandit over site embeddings.

Generic over an :class:`repro.tasks.OptimizationTask`: the task defines the
decision sites of each kernel, the action menus, and how a chosen action is
measured.  The default task reproduces the paper's per-loop (VF, IF)
vectorization decision; ``VectorizationEnv`` keeps its name (and its legacy
``evaluate_factors`` API) as the compatibility surface.

:class:`MultiTaskEnv` is the joint-training environment: it interleaves
the decision sites of several tasks over one kernel set, tags every
observation with its task id (so a task-conditioned policy can route to
the right head bank), and routes each reward through its own task's cache
key — one shared reward store and evaluation service serve all tasks
without collisions.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cache.reward_cache import (
    CachedMeasurement,
    RewardCache,
    evaluate_requests,
    resolve_cache,
)
from repro.core.loop_extractor import ExtractedLoop
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.embedding.code2vec import Code2VecModel
from repro.rl.spaces import ActionSpace
from repro.tasks import DecisionSite, OptimizationTask, resolve_task, resolve_tasks


@dataclass
class EnvSample:
    """One training sample: a specific decision site of a specific kernel."""

    kernel: LoopKernel
    loop_index: int
    observation: np.ndarray
    baseline_cycles: float
    baseline_compile_seconds: float
    extracted: Optional[ExtractedLoop] = None
    site: Optional[DecisionSite] = None


def build_samples(
    kernels: Sequence[LoopKernel],
    embedding_model: Code2VecModel,
    pipeline: Optional[CompileAndMeasure] = None,
    max_contexts: int = 200,
    task: Optional[OptimizationTask] = None,
) -> List[EnvSample]:
    """Embed every decision site of every kernel and record its baseline.

    Kernels whose sites cannot be extracted or measured are skipped (the
    paper likewise drops programs that fail to compile).
    """
    pipeline = pipeline or CompileAndMeasure()
    task = resolve_task(task)
    samples: List[EnvSample] = []
    for kernel in kernels:
        try:
            sites = task.decision_sites(kernel)
            baseline = pipeline.measure_baseline(kernel)
        except Exception:
            continue
        for site in sites:
            observation = task.observation_features(
                site, embedding_model, max_contexts=max_contexts
            )
            extracted = site.payload if isinstance(site.payload, ExtractedLoop) else None
            samples.append(
                EnvSample(
                    kernel=kernel,
                    loop_index=site.index,
                    observation=observation,
                    baseline_cycles=baseline.cycles,
                    baseline_compile_seconds=baseline.compile_seconds,
                    extracted=extracted,
                    site=site,
                )
            )
    return samples


@dataclass
class StepResult:
    """What one environment step returns."""

    reward: float
    info: Dict[str, float] = field(default_factory=dict)


class VectorizationEnv:
    """Contextual-bandit environment over a set of decision-site samples.

    ``reset`` returns the embedding of the next site; ``step`` takes the
    agent's raw action, decodes it through the configured action space to
    the task's concrete action tuple, measures the kernel with that action
    applied to the chosen site (other sites stay at the compiler default),
    and returns the reward

        reward = (t_baseline - t_agent) / t_baseline                  (Eq. 2)

    with the §3.4 rule: if the estimated compile time exceeds
    ``compile_time_limit`` times the baseline's compile time the reward is
    the penalty (-9) instead.
    """

    def __init__(
        self,
        samples: Sequence[EnvSample],
        pipeline: Optional[CompileAndMeasure] = None,
        action_space: Optional[ActionSpace] = None,
        compile_time_limit: float = 10.0,
        compile_time_penalty: float = -9.0,
        shuffle: bool = True,
        seed: int = 0,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
        task: Optional[OptimizationTask] = None,
    ):
        if not samples:
            raise ValueError("the environment needs at least one sample")
        self.samples = list(samples)
        self.pipeline = pipeline or CompileAndMeasure()
        self.task = resolve_task(task)
        self.action_space = action_space or self.task.action_space("discrete")
        self.compile_time_limit = compile_time_limit
        self.compile_time_penalty = compile_time_penalty
        self.shuffle = shuffle
        self.rng = np.random.default_rng(seed)
        self._order = np.arange(len(self.samples))
        self._cursor = 0
        self._current: Optional[EnvSample] = None
        self.observation_dim = int(self.samples[0].observation.shape[0])
        self.total_steps = 0
        # An optional repro.distributed.EvaluationService: batched queries
        # route through it (sharded workers / persistent store) instead of a
        # per-call batcher.  Its cache is adopted unless one was given.
        self.evaluation_service = evaluation_service
        # Shared with other envs/agents when passed in; rewards are derived
        # from cached raw measurements so each env applies its own penalty.
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)

    # -- episode control -------------------------------------------------------------

    def reset(self) -> np.ndarray:
        if self._cursor >= len(self._order):
            self._cursor = 0
            if self.shuffle:
                self.rng.shuffle(self._order)
        self._current = self.samples[self._order[self._cursor]]
        self._cursor += 1
        return self._current.observation

    def peek_upcoming(self, count: int) -> List[EnvSample]:
        """The next ``count`` samples rollout order will serve — read-only.

        Consumes no RNG and moves no cursor, so interleaving peeks with
        ``reset``/``next_batch`` leaves rollouts byte-identical.  At an
        epoch boundary the *exact* next-epoch order is unknowable without
        consuming the shuffle draw, so the stable sample order stands in —
        speculation needs likely candidates, not the precise sequence.
        """
        count = max(0, int(count))
        if self._cursor >= len(self._order):
            return [self.samples[i] for i in range(min(count, len(self.samples)))]
        end = min(self._cursor + count, len(self._order))
        return [self.samples[i] for i in self._order[self._cursor:end]]

    def current_sample(self) -> EnvSample:
        if self._current is None:
            raise RuntimeError("call reset() before step()")
        return self._current

    @property
    def current_task_name(self) -> str:
        """Task id tag of the observation (constant for single-task envs)."""
        return self.task.name

    def next_batch(
        self, count: int
    ) -> List[Tuple[EnvSample, np.ndarray, str]]:
        """Serve the next ``count`` decision sites in rollout order.

        Each entry is ``(sample, observation, task_name)`` — everything the
        trainer needs to act on the whole chunk with one ``act_batch`` call.
        Consumption order (and therefore shuffling) is identical to ``count``
        sequential ``reset`` calls.
        """
        entries: List[Tuple[EnvSample, np.ndarray, str]] = []
        for _ in range(count):
            observation = self.reset()
            entries.append((self.current_sample(), observation, self.current_task_name))
        return entries

    def step(self, action) -> StepResult:
        sample = self.current_sample()
        decoded = self.action_space.decode(action)
        reward, info = self.evaluate_action(sample, decoded)
        self.total_steps += 1
        self._current = None
        return StepResult(reward=reward, info=info)

    # -- reward computation --------------------------------------------------------------

    def evaluate_action(
        self, sample: EnvSample, action: Tuple[int, ...]
    ) -> Tuple[float, Dict[str, float]]:
        """Reward for applying ``action`` to one sample's site (cached)."""
        action = self.task.cache_key(action)
        measurement, was_cached = self.reward_cache.measure_action(
            self.pipeline, self.task, sample.kernel, sample.loop_index, action
        )
        return self._reward_from_measurement(sample, action, measurement, was_cached)

    def evaluate_factors(
        self, sample: EnvSample, vf: int, interleave: int
    ) -> Tuple[float, Dict[str, float]]:
        """Legacy (VF, IF) shorthand for :meth:`evaluate_action`."""
        return self.evaluate_action(sample, (int(vf), int(interleave)))

    def _reward_from_measurement(
        self,
        sample: EnvSample,
        action: Tuple[int, ...],
        measurement: CachedMeasurement,
        was_cached: bool,
    ) -> Tuple[float, Dict[str, float]]:
        info: Dict[str, float] = dict(self.task.info_dict(action))
        info.update(
            {
                "cycles": measurement.cycles,
                "baseline_cycles": sample.baseline_cycles,
                "compile_seconds": measurement.compile_seconds,
            }
        )
        if was_cached:
            info["cached"] = 1.0
        if (
            sample.baseline_compile_seconds > 0
            and measurement.compile_seconds
            > self.compile_time_limit * sample.baseline_compile_seconds
        ):
            reward = self.compile_time_penalty
            info["compile_time_exceeded"] = 1.0
        else:
            reward = (sample.baseline_cycles - measurement.cycles) / max(
                sample.baseline_cycles, 1e-9
            )
        return reward, info

    # -- batched evaluation ----------------------------------------------------------

    def evaluate_actions_batch(
        self, requests: Sequence[Tuple[EnvSample, Tuple[int, ...]]]
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Evaluate many explicit ``(sample, action)`` requests at once.

        Requests are deduplicated against each other and the reward cache, so
        repeated actions cost one pipeline evaluation total.  Results come
        back in request order.  With an attached evaluation service the
        unique misses are evaluated by its worker shards instead of
        in-process.
        """
        normalized = [
            (sample, self.task.cache_key(action)) for sample, action in requests
        ]
        outcomes = evaluate_requests(
            self.pipeline,
            self.reward_cache,
            [
                (sample.kernel, sample.loop_index, action)
                for sample, action in normalized
            ],
            service=self.evaluation_service,
            task=self.task,
        )
        return [
            self._reward_from_measurement(
                sample, action, outcome.measurement, outcome.was_cached
            )
            for (sample, action), outcome in zip(normalized, outcomes)
        ]

    def evaluate_factors_batch(
        self, requests: Sequence[Tuple[EnvSample, int, int]]
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Legacy ``(sample, vf, interleave)`` shorthand for
        :meth:`evaluate_actions_batch`."""
        return self.evaluate_actions_batch(
            [(sample, (int(vf), int(interleave))) for sample, vf, interleave in requests]
        )

    def evaluate_batch(
        self, pairs: Sequence[Tuple[EnvSample, object]]
    ) -> List[StepResult]:
        """Batched :meth:`step`: decode raw actions, dedup, evaluate in one pass."""
        results = self.evaluate_actions_batch(self.decode_batch(pairs))
        self.total_steps += len(pairs)
        self._current = None
        return [StepResult(reward=reward, info=info) for reward, info in results]

    # -- async plumbing (shared with repro.distributed.async_api) ---------------------

    def decode_batch(
        self, pairs: Sequence[Tuple[EnvSample, object]]
    ) -> List[Tuple[EnvSample, Tuple[int, ...]]]:
        """Decode raw policy actions to the task's concrete action tuples."""
        return [
            (sample, self.action_space.decode(action)) for sample, action in pairs
        ]

    def submit_requests(
        self, service, requests: Sequence[Tuple[EnvSample, Tuple[int, ...]]]
    ):
        """Submit decoded requests to an evaluation service; returns its future."""
        return service.submit(
            [(sample.kernel, sample.loop_index, action) for sample, action in requests],
            task=self.task,
        )

    # -- evaluation helpers ---------------------------------------------------------------

    def greedy_rewards(self, policy) -> List[float]:
        """Reward of the policy's argmax action on every sample (no sampling)."""
        outputs = _policy_outputs_batch(
            policy, [sample.observation for sample in self.samples]
        )
        requests = [
            (sample, self.action_space.decode(output.action))
            for sample, output in zip(self.samples, outputs)
        ]
        return [reward for reward, _ in self.evaluate_actions_batch(requests)]


def _policy_outputs_batch(policy, observations, tasks=None):
    """Act on many observations with one ``act_batch`` call when available.

    Duck-typed policies (hand-rolled baselines, mocks) that only implement
    ``act`` fall back to the serial loop with identical results.
    """
    act_batch = getattr(policy, "act_batch", None)
    if act_batch is not None:
        if tasks is None:
            return act_batch(np.stack(observations), deterministic=True)
        return act_batch(np.stack(observations), deterministic=True, tasks=tasks)
    if tasks is None:
        return [policy.act(observation, deterministic=True) for observation in observations]
    return [
        policy.act(observation, deterministic=True, task=task)
        for observation, task in zip(observations, tasks)
    ]


# ---------------------------------------------------------------------------
# Multi-task joint training
# ---------------------------------------------------------------------------


@dataclass
class TaggedSample:
    """One task's sample inside a :class:`MultiTaskEnv` (the task id tag)."""

    task_name: str
    sample: EnvSample

    @property
    def observation(self) -> np.ndarray:
        return self.sample.observation

    @property
    def kernel(self) -> LoopKernel:
        return self.sample.kernel

    @property
    def loop_index(self) -> int:
        return self.sample.loop_index


class _GroupedFuture:
    """Reassembles per-task service futures back into request order."""

    def __init__(self, parts: Sequence[Tuple[object, Sequence[int]]], size: int):
        self._parts = list(parts)
        self._size = size

    def done(self) -> bool:
        return all(future.done() for future, _ in self._parts)

    def result(self):
        outcomes = [None] * self._size
        for future, slots in self._parts:
            for slot, outcome in zip(slots, future.result()):
                outcomes[slot] = outcome
        return outcomes


class MultiTaskEnv:
    """Joint contextual bandit interleaving several tasks' decision sites.

    One environment over the union of every task's samples: ``reset``
    serves the next site (round-robin across tasks on the first epoch,
    reshuffled jointly afterwards) and tags it with its task id
    (:attr:`current_task_name`), ``step`` decodes the raw action through
    *that task's* action space and routes the reward through that task's
    cache key — so the persistent store and the sharded evaluation service
    keep per-task entries exactly as single-task training would write them.

    Internally each task gets a lane — a :class:`VectorizationEnv` over its
    own samples sharing this env's pipeline, reward cache and evaluation
    service — so the single-task environment remains the one reward path;
    this class only owns the interleaving and the routing.  With exactly
    one task the env behaves identically (ordering, shuffling, rewards) to
    that task's ``VectorizationEnv``.
    """

    def __init__(
        self,
        tasks: Sequence,
        samples_by_task: Mapping[str, Sequence[EnvSample]],
        pipeline: Optional[CompileAndMeasure] = None,
        action_spaces: Optional[Mapping[str, ActionSpace]] = None,
        compile_time_limit: float = 10.0,
        compile_time_penalty: float = -9.0,
        shuffle: bool = True,
        seed: int = 0,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
    ):
        self.tasks = resolve_tasks(tasks)
        if not self.tasks:
            raise ValueError("MultiTaskEnv needs at least one task")
        self.pipeline = pipeline or CompileAndMeasure()
        self.evaluation_service = evaluation_service
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)
        self.lanes: "OrderedDict[str, VectorizationEnv]" = OrderedDict()
        per_task_samples: List[List[TaggedSample]] = []
        for task in self.tasks:
            samples = list(samples_by_task.get(task.name, ()))
            if not samples:
                raise ValueError(
                    f"task {task.name!r} has no environment samples; every "
                    "joint task needs at least one decision site"
                )
            self.lanes[task.name] = VectorizationEnv(
                samples,
                pipeline=self.pipeline,
                action_space=(action_spaces or {}).get(task.name),
                compile_time_limit=compile_time_limit,
                compile_time_penalty=compile_time_penalty,
                shuffle=False,  # ordering lives up here, jointly
                seed=seed,
                reward_cache=self.reward_cache,
                evaluation_service=evaluation_service,
                task=task,
            )
            per_task_samples.append(
                [TaggedSample(task.name, sample) for sample in samples]
            )
        # Round-robin interleave for the first epoch (task A site 0, task B
        # site 0, task A site 1, ...); subsequent epochs reshuffle jointly.
        # With one task this is exactly the single-task in-order first epoch.
        self.samples: List[TaggedSample] = []
        for position in range(max(len(lane) for lane in per_task_samples)):
            for lane_samples in per_task_samples:
                if position < len(lane_samples):
                    self.samples.append(lane_samples[position])
        dims = {
            int(entry.sample.observation.shape[0]) for entry in self.samples
        }
        if len(dims) != 1:
            raise ValueError(
                "joint tasks must share one embedding: observation dims "
                f"differ across tasks ({sorted(dims)})"
            )
        self.observation_dim = dims.pop()
        self.shuffle = shuffle
        self.rng = np.random.default_rng(seed)
        self._order = np.arange(len(self.samples))
        self._cursor = 0
        self._current: Optional[TaggedSample] = None
        self.total_steps = 0

    # -- structure -------------------------------------------------------------------

    @property
    def task_names(self) -> List[str]:
        return list(self.lanes)

    def lane_for(self, task_name: str) -> VectorizationEnv:
        lane = self.lanes.get(task_name)
        if lane is None:
            raise ValueError(
                f"no task {task_name!r} in this MultiTaskEnv; "
                f"joint tasks: {list(self.lanes)}"
            )
        return lane

    def set_action_spaces(self, spaces: Mapping[str, ActionSpace]) -> None:
        """Adopt a (multi-task) policy's per-task action spaces.

        Keys must cover this env's task names — a *superset* is fine (a
        jointly-trained policy fine-tuning one task hands its full
        per-task mapping to a one-lane env; lanes adopt their own entries
        and the rest are ignored).  A single *unnamed* space (a legacy
        one-head policy, keyed :data:`repro.rl.policy.DEFAULT_HEAD`) is
        accepted by a single-task env.  A single bank named for a
        *different* task is rejected — silently adopting its space would
        decode that task's menus into this task's apply/cache path.
        """
        from repro.rl.policy import DEFAULT_HEAD

        if set(self.lanes) <= set(spaces):
            for name in self.lanes:
                self.lanes[name].action_space = spaces[name]
            return
        if len(spaces) == 1 and len(self.lanes) == 1 and DEFAULT_HEAD in spaces:
            only = next(iter(self.lanes.values()))
            only.action_space = spaces[DEFAULT_HEAD]
            return
        raise ValueError(
            f"policy head banks {list(spaces)} do not match the "
            f"environment's tasks {list(self.lanes)}"
        )

    # -- episode control -------------------------------------------------------------

    def reset(self) -> np.ndarray:
        if self._cursor >= len(self._order):
            self._cursor = 0
            if self.shuffle:
                self.rng.shuffle(self._order)
        self._current = self.samples[self._order[self._cursor]]
        self._cursor += 1
        return self._current.sample.observation

    def peek_upcoming(self, count: int) -> List[TaggedSample]:
        """The next ``count`` tagged samples joint rollout order will serve.

        Same contract as :meth:`VectorizationEnv.peek_upcoming`: no RNG, no
        cursor movement; past the epoch boundary the stable sample order
        stands in as the speculation candidates.
        """
        count = max(0, int(count))
        if self._cursor >= len(self._order):
            return [self.samples[i] for i in range(min(count, len(self.samples)))]
        end = min(self._cursor + count, len(self._order))
        return [self.samples[i] for i in self._order[self._cursor:end]]

    def current_sample(self) -> TaggedSample:
        if self._current is None:
            raise RuntimeError("call reset() before step()")
        return self._current

    @property
    def current_task_name(self) -> str:
        """Task id tag of the observation served by the last ``reset``."""
        return self.current_sample().task_name

    def next_batch(
        self, count: int
    ) -> List[Tuple[TaggedSample, np.ndarray, str]]:
        """Serve the next ``count`` tagged sites in joint rollout order.

        Entries are ``(tagged_sample, observation, task_name)``; consumption
        order matches ``count`` sequential ``reset`` calls, so batched and
        serial rollouts see the identical site sequence.
        """
        entries: List[Tuple[TaggedSample, np.ndarray, str]] = []
        for _ in range(count):
            observation = self.reset()
            entries.append((self.current_sample(), observation, self.current_task_name))
        return entries

    def step(self, action) -> StepResult:
        tagged = self.current_sample()
        lane = self.lane_for(tagged.task_name)
        decoded = lane.action_space.decode(action)
        reward, info = lane.evaluate_action(tagged.sample, decoded)
        self.total_steps += 1
        self._current = None
        return StepResult(reward=reward, info=info)

    # -- reward routing --------------------------------------------------------------

    def _reward_from_measurement(self, tagged, action, measurement, was_cached):
        lane = self.lane_for(tagged.task_name)
        return lane._reward_from_measurement(
            tagged.sample, action, measurement, was_cached
        )

    def _grouped(self, requests: Sequence[Tuple[TaggedSample, Tuple[int, ...]]]):
        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for index, (tagged, _action) in enumerate(requests):
            groups.setdefault(tagged.task_name, []).append(index)
        return groups

    def evaluate_actions_batch(
        self, requests: Sequence[Tuple[TaggedSample, Tuple[int, ...]]]
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Evaluate tagged ``(sample, action)`` requests, grouped per task.

        Each group goes through its own lane — its task's cache keys and
        reward rule — and results come back in request order, so joint
        rollouts are as deduplicated (and as deterministic) as single-task
        ones.
        """
        results: List[Optional[Tuple[float, Dict[str, float]]]] = [None] * len(
            requests
        )
        for task_name, indices in self._grouped(requests).items():
            lane = self.lane_for(task_name)
            lane_results = lane.evaluate_actions_batch(
                [(requests[i][0].sample, requests[i][1]) for i in indices]
            )
            for index, outcome in zip(indices, lane_results):
                results[index] = outcome
        return results  # type: ignore[return-value]

    def evaluate_batch(
        self, pairs: Sequence[Tuple[TaggedSample, object]]
    ) -> List[StepResult]:
        """Batched :meth:`step` over tagged samples (one pass per task)."""
        results = self.evaluate_actions_batch(self.decode_batch(pairs))
        self.total_steps += len(pairs)
        self._current = None
        return [StepResult(reward=reward, info=info) for reward, info in results]

    # -- async plumbing ---------------------------------------------------------------

    def decode_batch(
        self, pairs: Sequence[Tuple[TaggedSample, object]]
    ) -> List[Tuple[TaggedSample, Tuple[int, ...]]]:
        """Decode raw actions through each sample's own task space."""
        return [
            (tagged, self.lane_for(tagged.task_name).action_space.decode(action))
            for tagged, action in pairs
        ]

    def submit_requests(
        self, service, requests: Sequence[Tuple[TaggedSample, Tuple[int, ...]]]
    ):
        """Submit decoded requests per task; one reassembling future back."""
        parts = []
        for task_name, indices in self._grouped(requests).items():
            lane = self.lane_for(task_name)
            future = lane.submit_requests(
                service, [(requests[i][0].sample, requests[i][1]) for i in indices]
            )
            parts.append((future, indices))
        return _GroupedFuture(parts, len(requests))

    # -- evaluation helpers -----------------------------------------------------------

    def greedy_rewards(self, policy) -> List[float]:
        """Reward of the policy's argmax action on every sample of every task."""
        outputs = _policy_outputs_batch(
            policy,
            [tagged.sample.observation for tagged in self.samples],
            tasks=[tagged.task_name for tagged in self.samples],
        )
        requests = [
            (
                tagged,
                self.lane_for(tagged.task_name).action_space.decode(output.action),
            )
            for tagged, output in zip(self.samples, outputs)
        ]
        return [reward for reward, _ in self.evaluate_actions_batch(requests)]

    def greedy_rewards_by_task(self, policy) -> Dict[str, List[float]]:
        """Per-task greedy rewards (the joint policy evaluated task by task)."""
        rewards = self.greedy_rewards(policy)
        by_task: Dict[str, List[float]] = {name: [] for name in self.lanes}
        for tagged, reward in zip(self.samples, rewards):
            by_task[tagged.task_name].append(reward)
        return by_task
