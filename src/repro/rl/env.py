"""The optimization environment: a contextual bandit over site embeddings.

Generic over an :class:`repro.tasks.OptimizationTask`: the task defines the
decision sites of each kernel, the action menus, and how a chosen action is
measured.  The default task reproduces the paper's per-loop (VF, IF)
vectorization decision; ``VectorizationEnv`` keeps its name (and its legacy
``evaluate_factors`` API) as the compatibility surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.reward_cache import (
    CachedMeasurement,
    RewardCache,
    evaluate_requests,
    resolve_cache,
)
from repro.core.loop_extractor import ExtractedLoop
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.embedding.code2vec import Code2VecModel
from repro.rl.spaces import ActionSpace
from repro.tasks import DecisionSite, OptimizationTask, resolve_task


@dataclass
class EnvSample:
    """One training sample: a specific decision site of a specific kernel."""

    kernel: LoopKernel
    loop_index: int
    observation: np.ndarray
    baseline_cycles: float
    baseline_compile_seconds: float
    extracted: Optional[ExtractedLoop] = None
    site: Optional[DecisionSite] = None


def build_samples(
    kernels: Sequence[LoopKernel],
    embedding_model: Code2VecModel,
    pipeline: Optional[CompileAndMeasure] = None,
    max_contexts: int = 200,
    task: Optional[OptimizationTask] = None,
) -> List[EnvSample]:
    """Embed every decision site of every kernel and record its baseline.

    Kernels whose sites cannot be extracted or measured are skipped (the
    paper likewise drops programs that fail to compile).
    """
    pipeline = pipeline or CompileAndMeasure()
    task = resolve_task(task)
    samples: List[EnvSample] = []
    for kernel in kernels:
        try:
            sites = task.decision_sites(kernel)
            baseline = pipeline.measure_baseline(kernel)
        except Exception:
            continue
        for site in sites:
            observation = task.observation_features(
                site, embedding_model, max_contexts=max_contexts
            )
            extracted = site.payload if isinstance(site.payload, ExtractedLoop) else None
            samples.append(
                EnvSample(
                    kernel=kernel,
                    loop_index=site.index,
                    observation=observation,
                    baseline_cycles=baseline.cycles,
                    baseline_compile_seconds=baseline.compile_seconds,
                    extracted=extracted,
                    site=site,
                )
            )
    return samples


@dataclass
class StepResult:
    """What one environment step returns."""

    reward: float
    info: Dict[str, float] = field(default_factory=dict)


class VectorizationEnv:
    """Contextual-bandit environment over a set of decision-site samples.

    ``reset`` returns the embedding of the next site; ``step`` takes the
    agent's raw action, decodes it through the configured action space to
    the task's concrete action tuple, measures the kernel with that action
    applied to the chosen site (other sites stay at the compiler default),
    and returns the reward

        reward = (t_baseline - t_agent) / t_baseline                  (Eq. 2)

    with the §3.4 rule: if the estimated compile time exceeds
    ``compile_time_limit`` times the baseline's compile time the reward is
    the penalty (-9) instead.
    """

    def __init__(
        self,
        samples: Sequence[EnvSample],
        pipeline: Optional[CompileAndMeasure] = None,
        action_space: Optional[ActionSpace] = None,
        compile_time_limit: float = 10.0,
        compile_time_penalty: float = -9.0,
        shuffle: bool = True,
        seed: int = 0,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
        task: Optional[OptimizationTask] = None,
    ):
        if not samples:
            raise ValueError("the environment needs at least one sample")
        self.samples = list(samples)
        self.pipeline = pipeline or CompileAndMeasure()
        self.task = resolve_task(task)
        self.action_space = action_space or self.task.action_space("discrete")
        self.compile_time_limit = compile_time_limit
        self.compile_time_penalty = compile_time_penalty
        self.shuffle = shuffle
        self.rng = np.random.default_rng(seed)
        self._order = np.arange(len(self.samples))
        self._cursor = 0
        self._current: Optional[EnvSample] = None
        self.observation_dim = int(self.samples[0].observation.shape[0])
        self.total_steps = 0
        # An optional repro.distributed.EvaluationService: batched queries
        # route through it (sharded workers / persistent store) instead of a
        # per-call batcher.  Its cache is adopted unless one was given.
        self.evaluation_service = evaluation_service
        # Shared with other envs/agents when passed in; rewards are derived
        # from cached raw measurements so each env applies its own penalty.
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)

    # -- episode control -------------------------------------------------------------

    def reset(self) -> np.ndarray:
        if self._cursor >= len(self._order):
            self._cursor = 0
            if self.shuffle:
                self.rng.shuffle(self._order)
        self._current = self.samples[self._order[self._cursor]]
        self._cursor += 1
        return self._current.observation

    def current_sample(self) -> EnvSample:
        if self._current is None:
            raise RuntimeError("call reset() before step()")
        return self._current

    def step(self, action) -> StepResult:
        sample = self.current_sample()
        decoded = self.action_space.decode(action)
        reward, info = self.evaluate_action(sample, decoded)
        self.total_steps += 1
        self._current = None
        return StepResult(reward=reward, info=info)

    # -- reward computation --------------------------------------------------------------

    def evaluate_action(
        self, sample: EnvSample, action: Tuple[int, ...]
    ) -> Tuple[float, Dict[str, float]]:
        """Reward for applying ``action`` to one sample's site (cached)."""
        action = self.task.cache_key(action)
        measurement, was_cached = self.reward_cache.measure_action(
            self.pipeline, self.task, sample.kernel, sample.loop_index, action
        )
        return self._reward_from_measurement(sample, action, measurement, was_cached)

    def evaluate_factors(
        self, sample: EnvSample, vf: int, interleave: int
    ) -> Tuple[float, Dict[str, float]]:
        """Legacy (VF, IF) shorthand for :meth:`evaluate_action`."""
        return self.evaluate_action(sample, (int(vf), int(interleave)))

    def _reward_from_measurement(
        self,
        sample: EnvSample,
        action: Tuple[int, ...],
        measurement: CachedMeasurement,
        was_cached: bool,
    ) -> Tuple[float, Dict[str, float]]:
        info: Dict[str, float] = dict(self.task.info_dict(action))
        info.update(
            {
                "cycles": measurement.cycles,
                "baseline_cycles": sample.baseline_cycles,
                "compile_seconds": measurement.compile_seconds,
            }
        )
        if was_cached:
            info["cached"] = 1.0
        if (
            sample.baseline_compile_seconds > 0
            and measurement.compile_seconds
            > self.compile_time_limit * sample.baseline_compile_seconds
        ):
            reward = self.compile_time_penalty
            info["compile_time_exceeded"] = 1.0
        else:
            reward = (sample.baseline_cycles - measurement.cycles) / max(
                sample.baseline_cycles, 1e-9
            )
        return reward, info

    # -- batched evaluation ----------------------------------------------------------

    def evaluate_actions_batch(
        self, requests: Sequence[Tuple[EnvSample, Tuple[int, ...]]]
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Evaluate many explicit ``(sample, action)`` requests at once.

        Requests are deduplicated against each other and the reward cache, so
        repeated actions cost one pipeline evaluation total.  Results come
        back in request order.  With an attached evaluation service the
        unique misses are evaluated by its worker shards instead of
        in-process.
        """
        normalized = [
            (sample, self.task.cache_key(action)) for sample, action in requests
        ]
        outcomes = evaluate_requests(
            self.pipeline,
            self.reward_cache,
            [
                (sample.kernel, sample.loop_index, action)
                for sample, action in normalized
            ],
            service=self.evaluation_service,
            task=self.task,
        )
        return [
            self._reward_from_measurement(
                sample, action, outcome.measurement, outcome.was_cached
            )
            for (sample, action), outcome in zip(normalized, outcomes)
        ]

    def evaluate_factors_batch(
        self, requests: Sequence[Tuple[EnvSample, int, int]]
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Legacy ``(sample, vf, interleave)`` shorthand for
        :meth:`evaluate_actions_batch`."""
        return self.evaluate_actions_batch(
            [(sample, (int(vf), int(interleave))) for sample, vf, interleave in requests]
        )

    def evaluate_batch(
        self, pairs: Sequence[Tuple[EnvSample, object]]
    ) -> List[StepResult]:
        """Batched :meth:`step`: decode raw actions, dedup, evaluate in one pass."""
        requests = [
            (sample, self.action_space.decode(action)) for sample, action in pairs
        ]
        results = self.evaluate_actions_batch(requests)
        self.total_steps += len(pairs)
        self._current = None
        return [StepResult(reward=reward, info=info) for reward, info in results]

    # -- evaluation helpers ---------------------------------------------------------------

    def greedy_rewards(self, policy) -> List[float]:
        """Reward of the policy's argmax action on every sample (no sampling)."""
        requests = []
        for sample in self.samples:
            action = policy.act(sample.observation, deterministic=True).action
            requests.append((sample, self.action_space.decode(action)))
        return [reward for reward, _ in self.evaluate_actions_batch(requests)]
