"""The vectorization environment: a contextual bandit over loop embeddings."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.reward_cache import (
    CachedMeasurement,
    RewardCache,
    evaluate_requests,
    resolve_cache,
)
from repro.core.loop_extractor import ExtractedLoop, extract_loops
from repro.core.pipeline import CompilationResult, CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.embedding.ast_paths import extract_path_contexts
from repro.embedding.code2vec import Code2VecModel
from repro.embedding.vocab import normalize_identifiers
from repro.rl.spaces import ActionSpace, default_action_space


@dataclass
class EnvSample:
    """One training sample: a specific innermost loop of a specific kernel."""

    kernel: LoopKernel
    loop_index: int
    observation: np.ndarray
    baseline_cycles: float
    baseline_compile_seconds: float
    extracted: Optional[ExtractedLoop] = None


def build_samples(
    kernels: Sequence[LoopKernel],
    embedding_model: Code2VecModel,
    pipeline: Optional[CompileAndMeasure] = None,
    max_contexts: int = 200,
) -> List[EnvSample]:
    """Embed every innermost loop of every kernel and record its baseline.

    Kernels whose loops cannot be extracted or measured are skipped (the
    paper likewise drops programs that fail to compile).
    """
    pipeline = pipeline or CompileAndMeasure()
    samples: List[EnvSample] = []
    for kernel in kernels:
        try:
            loops = extract_loops(kernel.source, function_name=kernel.function_name)
            baseline = pipeline.measure_baseline(kernel)
        except Exception:
            continue
        for loop in loops:
            rename_map = normalize_identifiers(loop.nest_root)
            contexts = extract_path_contexts(
                loop.nest_root, max_contexts=max_contexts, rename_map=rename_map
            )
            observation = embedding_model.embed(contexts)
            samples.append(
                EnvSample(
                    kernel=kernel,
                    loop_index=loop.loop_index,
                    observation=observation,
                    baseline_cycles=baseline.cycles,
                    baseline_compile_seconds=baseline.compile_seconds,
                    extracted=loop,
                )
            )
    return samples


@dataclass
class StepResult:
    """What one environment step returns."""

    reward: float
    info: Dict[str, float] = field(default_factory=dict)


class VectorizationEnv:
    """Contextual-bandit environment over a set of loop samples.

    ``reset`` returns the embedding of the next loop; ``step`` takes the
    agent's raw action, decodes it to (VF, IF) through the configured action
    space, compiles the kernel with those factors for the chosen loop (other
    loops stay at the baseline's decision), and returns the reward

        reward = (t_baseline - t_agent) / t_baseline                  (Eq. 2)

    with the §3.4 rule: if the estimated compile time exceeds
    ``compile_time_limit`` times the baseline's compile time the reward is
    the penalty (-9) instead.
    """

    def __init__(
        self,
        samples: Sequence[EnvSample],
        pipeline: Optional[CompileAndMeasure] = None,
        action_space: Optional[ActionSpace] = None,
        compile_time_limit: float = 10.0,
        compile_time_penalty: float = -9.0,
        shuffle: bool = True,
        seed: int = 0,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
    ):
        if not samples:
            raise ValueError("the environment needs at least one sample")
        self.samples = list(samples)
        self.pipeline = pipeline or CompileAndMeasure()
        self.action_space = action_space or default_action_space()
        self.compile_time_limit = compile_time_limit
        self.compile_time_penalty = compile_time_penalty
        self.shuffle = shuffle
        self.rng = np.random.default_rng(seed)
        self._order = np.arange(len(self.samples))
        self._cursor = 0
        self._current: Optional[EnvSample] = None
        self.observation_dim = int(self.samples[0].observation.shape[0])
        self.total_steps = 0
        # An optional repro.distributed.EvaluationService: batched queries
        # route through it (sharded workers / persistent store) instead of a
        # per-call batcher.  Its cache is adopted unless one was given.
        self.evaluation_service = evaluation_service
        # Shared with other envs/agents when passed in; rewards are derived
        # from cached raw measurements so each env applies its own penalty.
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)

    # -- episode control -------------------------------------------------------------

    def reset(self) -> np.ndarray:
        if self._cursor >= len(self._order):
            self._cursor = 0
            if self.shuffle:
                self.rng.shuffle(self._order)
        self._current = self.samples[self._order[self._cursor]]
        self._cursor += 1
        return self._current.observation

    def current_sample(self) -> EnvSample:
        if self._current is None:
            raise RuntimeError("call reset() before step()")
        return self._current

    def step(self, action) -> StepResult:
        sample = self.current_sample()
        vf, interleave = self.action_space.decode(action)
        reward, info = self.evaluate_factors(sample, vf, interleave)
        self.total_steps += 1
        self._current = None
        return StepResult(reward=reward, info=info)

    # -- reward computation --------------------------------------------------------------

    def evaluate_factors(
        self, sample: EnvSample, vf: int, interleave: int
    ) -> Tuple[float, Dict[str, float]]:
        """Reward for choosing (vf, interleave) on one sample (cached)."""
        measurement, was_cached = self.reward_cache.measure(
            self.pipeline, sample.kernel, sample.loop_index, vf, interleave
        )
        return self._reward_from_measurement(sample, vf, interleave, measurement, was_cached)

    def _reward_from_measurement(
        self,
        sample: EnvSample,
        vf: int,
        interleave: int,
        measurement: CachedMeasurement,
        was_cached: bool,
    ) -> Tuple[float, Dict[str, float]]:
        info: Dict[str, float] = {
            "vf": float(vf),
            "interleave": float(interleave),
            "cycles": measurement.cycles,
            "baseline_cycles": sample.baseline_cycles,
            "compile_seconds": measurement.compile_seconds,
        }
        if was_cached:
            info["cached"] = 1.0
        if (
            sample.baseline_compile_seconds > 0
            and measurement.compile_seconds
            > self.compile_time_limit * sample.baseline_compile_seconds
        ):
            reward = self.compile_time_penalty
            info["compile_time_exceeded"] = 1.0
        else:
            reward = (sample.baseline_cycles - measurement.cycles) / max(
                sample.baseline_cycles, 1e-9
            )
        return reward, info

    # -- batched evaluation ----------------------------------------------------------

    def evaluate_factors_batch(
        self, requests: Sequence[Tuple[EnvSample, int, int]]
    ) -> List[Tuple[float, Dict[str, float]]]:
        """Evaluate many explicit ``(sample, vf, interleave)`` requests at once.

        Requests are deduplicated against each other and the reward cache, so
        repeated pairs cost one pipeline evaluation total.  Results come back
        in request order.  With an attached evaluation service the unique
        misses are evaluated by its worker shards instead of in-process.
        """
        outcomes = evaluate_requests(
            self.pipeline,
            self.reward_cache,
            [
                (sample.kernel, sample.loop_index, vf, interleave)
                for sample, vf, interleave in requests
            ],
            service=self.evaluation_service,
        )
        return [
            self._reward_from_measurement(
                sample, vf, interleave, outcome.measurement, outcome.was_cached
            )
            for (sample, vf, interleave), outcome in zip(requests, outcomes)
        ]

    def evaluate_batch(
        self, pairs: Sequence[Tuple[EnvSample, object]]
    ) -> List[StepResult]:
        """Batched :meth:`step`: decode raw actions, dedup, evaluate in one pass."""
        requests = [
            (sample, *self.action_space.decode(action)) for sample, action in pairs
        ]
        results = self.evaluate_factors_batch(requests)
        self.total_steps += len(pairs)
        self._current = None
        return [StepResult(reward=reward, info=info) for reward, info in results]

    # -- evaluation helpers ---------------------------------------------------------------

    def greedy_rewards(self, policy) -> List[float]:
        """Reward of the policy's argmax action on every sample (no sampling)."""
        requests = []
        for sample in self.samples:
            action = policy.act(sample.observation, deterministic=True).action
            vf, interleave = self.action_space.decode(action)
            requests.append((sample, vf, interleave))
        return [reward for reward, _ in self.evaluate_factors_batch(requests)]
