"""Action-space encodings for the (VF, IF) decision.

Figure 6 of the paper compares three encodings:

1. **discrete** — the agent picks two integers indexing arrays of possible
   VFs and IFs (this performed best),
2. **continuous, one value** — a single real number encodes both factors,
3. **continuous, two values** — one real number per factor, rounded to the
   nearest valid index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

#: VF/IF menus used throughout the paper: powers of two, as in Equation (3).
DEFAULT_VF_VALUES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_IF_VALUES: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass
class ActionSpace:
    """Base class: maps raw policy outputs to concrete (VF, IF) factors."""

    vf_values: Tuple[int, ...] = DEFAULT_VF_VALUES
    if_values: Tuple[int, ...] = DEFAULT_IF_VALUES

    @property
    def num_factor_pairs(self) -> int:
        return len(self.vf_values) * len(self.if_values)

    def decode(self, action) -> Tuple[int, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def encode(self, vf: int, interleave: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def all_factors(self) -> List[Tuple[int, int]]:
        return [(vf, il) for vf in self.vf_values for il in self.if_values]

    def _nearest_index(self, values: Sequence[int], target: int) -> int:
        best_index, best_distance = 0, float("inf")
        for index, value in enumerate(values):
            distance = abs(value - target)
            if distance < best_distance:
                best_index, best_distance = index, distance
        return best_index


@dataclass
class DiscreteFactorSpace(ActionSpace):
    """Two categorical choices: an index into the VF menu and the IF menu."""

    @property
    def sizes(self) -> Tuple[int, int]:
        return (len(self.vf_values), len(self.if_values))

    def decode(self, action) -> Tuple[int, int]:
        vf_index, if_index = int(action[0]), int(action[1])
        vf_index = int(np.clip(vf_index, 0, len(self.vf_values) - 1))
        if_index = int(np.clip(if_index, 0, len(self.if_values) - 1))
        return self.vf_values[vf_index], self.if_values[if_index]

    def encode(self, vf: int, interleave: int) -> Tuple[int, int]:
        return (
            self._nearest_index(self.vf_values, vf),
            self._nearest_index(self.if_values, interleave),
        )


@dataclass
class ContinuousJointSpace(ActionSpace):
    """A single real number in [0, 1] encoding the flattened (VF, IF) grid."""

    def decode(self, action) -> Tuple[int, int]:
        value = float(np.asarray(action).reshape(-1)[0])
        value = float(np.clip(value, 0.0, 1.0))
        flat_index = int(round(value * (self.num_factor_pairs - 1)))
        vf_index, if_index = divmod(flat_index, len(self.if_values))
        return self.vf_values[vf_index], self.if_values[if_index]

    def encode(self, vf: int, interleave: int) -> np.ndarray:
        vf_index = self._nearest_index(self.vf_values, vf)
        if_index = self._nearest_index(self.if_values, interleave)
        flat_index = vf_index * len(self.if_values) + if_index
        return np.array([flat_index / (self.num_factor_pairs - 1)])


@dataclass
class ContinuousPairSpace(ActionSpace):
    """Two real numbers in [0, 1], one per factor, rounded to the menus."""

    def decode(self, action) -> Tuple[int, int]:
        values = np.clip(np.asarray(action, dtype=np.float64).reshape(-1), 0.0, 1.0)
        vf_index = int(round(float(values[0]) * (len(self.vf_values) - 1)))
        if_index = int(round(float(values[-1]) * (len(self.if_values) - 1)))
        return self.vf_values[vf_index], self.if_values[if_index]

    def encode(self, vf: int, interleave: int) -> np.ndarray:
        vf_index = self._nearest_index(self.vf_values, vf)
        if_index = self._nearest_index(self.if_values, interleave)
        return np.array(
            [
                vf_index / (len(self.vf_values) - 1),
                if_index / (len(self.if_values) - 1),
            ]
        )


def default_action_space() -> DiscreteFactorSpace:
    """The discrete encoding the paper settles on."""
    return DiscreteFactorSpace()
