"""Action-space encodings over task-defined factor menus.

Figure 6 of the paper compares three encodings for the (VF, IF) decision:

1. **discrete** — the agent picks one integer per factor, indexing arrays of
   possible values (this performed best),
2. **continuous, one value** — a single real number encodes the whole factor
   tuple,
3. **continuous, N values** — one real number per factor, rounded to the
   nearest valid index.

Since the task redesign the spaces are generic over *menus*: an ordered
tuple of factor menus, one per decision dimension.  The defaults reproduce
the paper's (VF, IF) pair; an :class:`repro.tasks.OptimizationTask` supplies
its own menus (e.g. tile sizes x fusion flags for Polly tiling) and gets the
same three encodings for free.

**Rounding ties.**  Both continuous encodings round a real number to a menu
index, and :meth:`ActionSpace.encode` rounds a factor value to the nearest
menu entry.  At exact midpoints (the 1/2, 2/4, ... boundaries) the tie-break
is pinned: round toward the *smaller* factor.  ``_round_half_down`` makes
decode ties explicit (``round`` would banker's-round half the boundaries
up), and ``_nearest_index`` keeps the first — for the ascending menus used
everywhere, smaller — value on equidistant targets.
"""

from __future__ import annotations

import math
from itertools import product
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: VF/IF menus used throughout the paper: powers of two, as in Equation (3).
DEFAULT_VF_VALUES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_IF_VALUES: Tuple[int, ...] = (1, 2, 4, 8, 16)


def _round_half_down(value: float) -> int:
    """Round to the nearest integer; exact .5 midpoints round *down*.

    This is the pinned tie-break for continuous action decoding: a policy
    output landing exactly between two menu indices resolves to the smaller
    factor, deterministically, on every platform.
    """
    return int(math.ceil(value - 0.5))


class ActionSpace:
    """Base class: maps raw policy outputs to a tuple of concrete factors.

    ``menus`` is one tuple of legal values per decision dimension, in
    decision order.  The default two menus are the paper's VF and IF lists;
    the legacy ``vf_values=`` / ``if_values=`` keyword arguments keep
    constructing exactly that two-dimensional space.
    """

    def __init__(
        self,
        menus: Optional[Sequence[Sequence[int]]] = None,
        vf_values: Optional[Sequence[int]] = None,
        if_values: Optional[Sequence[int]] = None,
    ):
        if menus is None:
            menus = (
                tuple(vf_values) if vf_values is not None else DEFAULT_VF_VALUES,
                tuple(if_values) if if_values is not None else DEFAULT_IF_VALUES,
            )
        elif vf_values is not None or if_values is not None:
            raise ValueError("pass either menus or vf_values/if_values, not both")
        self.menus: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(int(value) for value in menu) for menu in menus
        )
        if not self.menus or any(not menu for menu in self.menus):
            raise ValueError("every action dimension needs a non-empty menu")

    # -- structure ----------------------------------------------------------

    @property
    def dims(self) -> int:
        return len(self.menus)

    @property
    def sizes(self) -> Tuple[int, ...]:
        return tuple(len(menu) for menu in self.menus)

    @property
    def vf_values(self) -> Tuple[int, ...]:
        """Legacy alias for the first menu (the VF list of the paper)."""
        return self.menus[0]

    @property
    def if_values(self) -> Tuple[int, ...]:
        """Legacy alias for the second menu (the IF list of the paper)."""
        return self.menus[1]

    @property
    def num_actions(self) -> int:
        total = 1
        for menu in self.menus:
            total *= len(menu)
        return total

    @property
    def num_factor_pairs(self) -> int:
        """Legacy alias for :attr:`num_actions`."""
        return self.num_actions

    def all_actions(self) -> List[Tuple[int, ...]]:
        """Every concrete action tuple, first menu varying slowest."""
        return list(product(*self.menus))

    def all_factors(self) -> List[Tuple[int, ...]]:
        """Legacy alias for :meth:`all_actions`."""
        return self.all_actions()

    # -- codec --------------------------------------------------------------

    def decode(self, action) -> Tuple[int, ...]:  # pragma: no cover - abstract
        raise NotImplementedError

    def encode(self, *values):  # pragma: no cover - abstract
        raise NotImplementedError

    def flatten_action(self, *values) -> int:
        """Mixed-radix index of the action nearest to ``values``.

        The index enumerates :meth:`all_actions` order (first menu varying
        slowest); each component rounds to its menu with the pinned
        :meth:`_nearest_index` tie-break.
        """
        values = _flatten_values(values, self.dims)
        flat_index = 0
        for menu, value in zip(self.menus, values):
            flat_index = flat_index * len(menu) + self._nearest_index(menu, value)
        return flat_index

    def unflatten_action(self, flat_index: int) -> Tuple[int, ...]:
        """The concrete action tuple at one :meth:`all_actions` index."""
        flat_index = int(np.clip(int(flat_index), 0, self.num_actions - 1))
        indices = []
        for menu in reversed(self.menus):
            flat_index, index = divmod(flat_index, len(menu))
            indices.append(index)
        indices.reverse()
        return tuple(menu[index] for menu, index in zip(self.menus, indices))

    def _nearest_index(self, values: Sequence[int], target: int) -> int:
        """Index of the menu entry closest to ``target``.

        Tie-break (pinned): on an exactly equidistant target the *first*
        match wins, which for the ascending menus used throughout means the
        smaller factor (encode(3, ...) maps to VF 2, not VF 4).
        """
        best_index, best_distance = 0, float("inf")
        for index, value in enumerate(values):
            distance = abs(value - target)
            if distance < best_distance:
                best_index, best_distance = index, distance
        return best_index


class DiscreteFactorSpace(ActionSpace):
    """One categorical choice per decision dimension (an index per menu)."""

    def decode(self, action) -> Tuple[int, ...]:
        raw = np.asarray(action).reshape(-1)
        factors = []
        for dimension, menu in enumerate(self.menus):
            index = int(raw[min(dimension, raw.size - 1)])
            index = int(np.clip(index, 0, len(menu) - 1))
            factors.append(menu[index])
        return tuple(factors)

    def encode(self, *values) -> Tuple[int, ...]:
        values = _flatten_values(values, self.dims)
        return tuple(
            self._nearest_index(menu, value) for menu, value in zip(self.menus, values)
        )


class ContinuousJointSpace(ActionSpace):
    """A single real number in [0, 1] encoding the flattened action grid."""

    def decode(self, action) -> Tuple[int, ...]:
        value = float(np.asarray(action).reshape(-1)[0])
        value = float(np.clip(value, 0.0, 1.0))
        return self.unflatten_action(
            _round_half_down(value * max(self.num_actions - 1, 1))
        )

    def encode(self, *values) -> np.ndarray:
        return np.array(
            [self.flatten_action(*values) / max(self.num_actions - 1, 1)]
        )


class ContinuousPairSpace(ActionSpace):
    """One real number in [0, 1] per dimension, rounded to the menus."""

    def decode(self, action) -> Tuple[int, ...]:
        values = np.clip(np.asarray(action, dtype=np.float64).reshape(-1), 0.0, 1.0)
        factors = []
        for dimension, menu in enumerate(self.menus):
            raw = float(values[min(dimension, values.size - 1)])
            index = _round_half_down(raw * (len(menu) - 1))
            factors.append(menu[index])
        return tuple(factors)

    def encode(self, *values) -> np.ndarray:
        values = _flatten_values(values, self.dims)
        return np.array(
            [
                self._nearest_index(menu, value) / max(len(menu) - 1, 1)
                for menu, value in zip(self.menus, values)
            ]
        )


def _flatten_values(values: Tuple, dims: int) -> Tuple[int, ...]:
    """Accept ``encode(vf, interleave)`` or ``encode((vf, interleave))``."""
    if len(values) == 1 and isinstance(values[0], (tuple, list)):
        values = tuple(values[0])
    if len(values) != dims:
        raise ValueError(
            f"expected {dims} factor value(s) to encode, got {len(values)}"
        )
    return tuple(int(value) for value in values)


_SPACE_KINDS = {
    "discrete": DiscreteFactorSpace,
    "continuous1": ContinuousJointSpace,
    "continuous2": ContinuousPairSpace,
}


def make_action_space(
    kind: str, menus: Optional[Sequence[Sequence[int]]] = None
) -> ActionSpace:
    """Build one of the three Figure-6 encodings over the given menus."""
    try:
        space_class = _SPACE_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown action-space kind {kind!r}; expected one of "
            f"{sorted(_SPACE_KINDS)}"
        ) from None
    return space_class(menus=menus)


def default_action_space() -> DiscreteFactorSpace:
    """The discrete (VF, IF) encoding the paper settles on."""
    return DiscreteFactorSpace()
