"""A miniature Tune: grid search over training configurations.

The paper uses Ray Tune to sweep learning rates, network architectures,
batch sizes and action-space definitions (Figures 5 and 6); this module
provides the same "give me a dict of parameter lists, get back a curve per
configuration" workflow.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.rl.env import VectorizationEnv
from repro.rl.policy import make_policy
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory


def grid_search(parameter_grid: Dict[str, Sequence]) -> List[Dict[str, object]]:
    """Expand a dict of lists into the list of all configurations."""
    if not parameter_grid:
        return [{}]
    keys = sorted(parameter_grid.keys())
    combos = itertools.product(*(parameter_grid[key] for key in keys))
    return [dict(zip(keys, combo)) for combo in combos]


@dataclass
class ExperimentResult:
    """One configuration's training outcome."""

    name: str
    parameters: Dict[str, object]
    history: TrainingHistory

    @property
    def final_reward_mean(self) -> float:
        return self.history.final_reward_mean


def _config_name(parameters: Dict[str, object]) -> str:
    if not parameters:
        return "default"
    return ",".join(f"{key}={value}" for key, value in sorted(parameters.items()))


def run_experiments(
    make_env: Callable[[], VectorizationEnv],
    parameter_grid: Dict[str, Sequence],
    total_steps: int,
    base_config: Optional[PPOConfig] = None,
    seed: int = 0,
) -> List[ExperimentResult]:
    """Train one PPO agent per configuration in the grid.

    Recognised parameter keys:

    * ``learning_rate``, ``train_batch_size``, ``minibatch_size``,
      ``entropy_coefficient`` — forwarded to :class:`PPOConfig`,
    * ``hidden_sizes`` — the FCNN architecture (tuple of layer widths),
    * ``policy`` — ``"discrete"``, ``"continuous1"`` or ``"continuous2"``
      (the Figure 6 action-space study).
    """
    base_config = base_config or PPOConfig()
    results: List[ExperimentResult] = []
    for parameters in grid_search(parameter_grid):
        env = make_env()
        config_overrides = {
            key: value
            for key, value in parameters.items()
            if key in PPOConfig().__dict__
        }
        config = base_config.scaled(**config_overrides)
        hidden_sizes = tuple(parameters.get("hidden_sizes", (64, 64)))
        policy_kind = str(parameters.get("policy", "discrete"))
        policy = make_policy(
            policy_kind, env.observation_dim, hidden_sizes=hidden_sizes, seed=seed
        )
        trainer = PPOTrainer(env, policy, config)
        history = trainer.train(total_steps)
        results.append(
            ExperimentResult(
                name=_config_name(parameters), parameters=parameters, history=history
            )
        )
    return results


def best_experiment(results: Sequence[ExperimentResult]) -> ExperimentResult:
    """The configuration with the highest final mean reward."""
    return max(results, key=lambda result: result.final_reward_mean)
