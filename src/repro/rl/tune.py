"""A miniature Tune: grid search over training configurations.

The paper uses Ray Tune to sweep learning rates, network architectures,
batch sizes and action-space definitions (Figures 5 and 6); this module
provides the same "give me a dict of parameter lists, get back a curve per
configuration" workflow — generalized over optimization tasks, so the same
grid can sweep ``tasks=[...]`` combinations (single-task vs joint
multi-task training) alongside the paper's axes.

Policies are always built from the environment's own task(s): each swept
configuration trains with the action space (menus) of the env's task — or
one head bank per task for a :class:`repro.rl.env.MultiTaskEnv` — never
with the (VF, IF) defaults a task-less policy would fall back to.
"""

from __future__ import annotations

import inspect
import itertools
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.rl.env import VectorizationEnv
from repro.rl.policy import Policy, make_policy
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory


def grid_search(parameter_grid: Dict[str, Sequence]) -> List[Dict[str, object]]:
    """Expand a dict of lists into the list of all configurations.

    Every value must be a *sequence of candidates* (list/tuple), not a bare
    scalar — ``{"learning_rate": 5e-4}`` would otherwise be silently
    ignored or, worse, iterated character-wise for strings.
    """
    if not parameter_grid:
        return [{}]
    for key, values in parameter_grid.items():
        if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
            raise ValueError(
                f"grid values for {key!r} must be a sequence of candidates "
                f"(e.g. [{values!r}]), got {type(values).__name__}: {values!r}"
            )
    keys = sorted(parameter_grid.keys())
    combos = itertools.product(*(parameter_grid[key] for key in keys))
    return [dict(zip(keys, combo)) for combo in combos]


@dataclass
class ExperimentResult:
    """One configuration's training outcome."""

    name: str
    parameters: Dict[str, object]
    history: TrainingHistory
    #: The trained policy of this configuration (usable for inference via
    #: :class:`repro.agents.policy_agent.PolicyAgent`).
    policy: Optional[Policy] = None

    @property
    def final_reward_mean(self) -> float:
        return self.history.final_reward_mean


def _config_name(parameters: Dict[str, object]) -> str:
    if not parameters:
        return "default"
    return ",".join(f"{key}={value}" for key, value in sorted(parameters.items()))


def _make_environment(make_env: Callable, parameters: Dict[str, object]):
    """Build the experiment's environment, forwarding a ``tasks`` sweep."""
    tasks = parameters.get("tasks")
    if tasks is None:
        return make_env()
    # A grid like {"tasks": ["vectorization", "unrolling"]} sweeps *single*
    # tasks: each candidate is one task name (or task object), not an
    # iterable of them — wrap it so tuple() below cannot explode a string
    # into per-character "tasks".
    if isinstance(tasks, (str, bytes)) or not hasattr(tasks, "__iter__"):
        tasks = (tasks,)
    signature = inspect.signature(make_env)
    accepts_tasks = "tasks" in signature.parameters or any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    )
    if not accepts_tasks:
        raise ValueError(
            "the parameter grid sweeps tasks=... but make_env() does not "
            "accept a tasks argument; give the factory a "
            "tasks=None keyword that builds a MultiTaskEnv for it"
        )
    return make_env(tasks=tuple(tasks))


def _make_experiment_policy(
    env, policy_kind: str, hidden_sizes, seed: int, conditioning=None
) -> Policy:
    """A policy shaped by the env's own task(s) — never the (VF, IF) default."""
    if hasattr(env, "lanes"):  # a MultiTaskEnv: one head per task
        spaces = OrderedDict(
            (task.name, task.action_space(policy_kind)) for task in env.tasks
        )
        return make_policy(
            policy_kind,
            env.observation_dim,
            hidden_sizes=hidden_sizes,
            seed=seed,
            spaces=spaces,
            conditioning=conditioning,
        )
    return make_policy(
        policy_kind,
        env.observation_dim,
        hidden_sizes=hidden_sizes,
        seed=seed,
        space=env.task.action_space(policy_kind),
    )


def run_experiments(
    make_env: Callable[..., VectorizationEnv],
    parameter_grid: Dict[str, Sequence],
    total_steps: int,
    base_config: Optional[PPOConfig] = None,
    seed: int = 0,
) -> List[ExperimentResult]:
    """Train one PPO agent per configuration in the grid.

    Recognised parameter keys:

    * ``learning_rate``, ``train_batch_size``, ``minibatch_size``,
      ``entropy_coefficient`` — forwarded to :class:`PPOConfig`,
    * ``hidden_sizes`` — the FCNN architecture (tuple of layer widths),
    * ``policy`` — ``"discrete"``, ``"continuous1"`` or ``"continuous2"``
      (the Figure 6 action-space study),
    * ``tasks`` — a tuple of registered task names trained jointly for
      this configuration (the Figure 5/6 study generalized to multi-task);
      ``make_env`` must accept a ``tasks=`` keyword for this axis.

    Every experiment's policy is built from the environment's task menus
    (and, for joint configurations, gets one head bank per task).
    """
    base_config = base_config or PPOConfig()
    results: List[ExperimentResult] = []
    for parameters in grid_search(parameter_grid):
        env = _make_environment(make_env, parameters)
        config_overrides = {
            key: value
            for key, value in parameters.items()
            if key in PPOConfig().__dict__
        }
        config = base_config.scaled(**config_overrides)
        hidden_sizes = tuple(parameters.get("hidden_sizes", (64, 64)))
        policy_kind = str(parameters.get("policy", "discrete"))
        # A "conditioning" grid axis sweeps head banks vs the embedding-
        # conditioned head on joint (MultiTaskEnv) configurations.
        conditioning = parameters.get("conditioning")
        policy = _make_experiment_policy(
            env, policy_kind, hidden_sizes, seed, conditioning=conditioning
        )
        trainer = PPOTrainer(env, policy, config)
        history = trainer.train(total_steps)
        results.append(
            ExperimentResult(
                name=_config_name(parameters),
                parameters=parameters,
                history=history,
                policy=policy,
            )
        )
    return results


def best_experiment(results: Sequence[ExperimentResult]) -> ExperimentResult:
    """The configuration with the highest final mean reward."""
    if not results:
        raise ValueError(
            "best_experiment: no experiment results to choose from — the "
            "parameter grid produced no configurations (or every run was "
            "filtered out before reaching here)"
        )
    return max(results, key=lambda result: result.final_reward_mean)
