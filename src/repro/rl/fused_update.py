"""Hand-fused PPO minibatch updates for the known policy architectures.

The per-minibatch update used to build ~50 autodiff graph nodes (trunk
matmuls, fused-head slices, per-head log-softmax/entropy chains, the
clip/minimum surrogate, MSE value loss) and then walk them backwards,
allocating a closure and several temporaries per node.  Profiling shows
that Python-level graph construction and backward-closure dispatch — not
numpy arithmetic — dominate the update phase once rollouts are batched.

This module evaluates the same computation as ONE forward + ONE backward
function per minibatch, with **no graph construction at all**.  Every
numpy expression replicates the op chain the graph would have run — same
operations, same order, same gradient accumulation order (including the
subtle cases: the clipped-branch-first accumulation into the ratio, the
log-softmax-then-softmax accumulation into each head's logits slice, the
``exp(log_softmax)`` recomputation inside the log-softmax backward, the
value-branch-before-policy-branch accumulation into the trunk features,
and the ``-0.0 → +0.0`` normalization when two or more head slices pad
into the fused logits gradient).  The result is bit-identical losses,
gradients, optimizer state and trained weights; the regression suite in
``tests/test_fused_update.py`` pins this exactly against the graph path.

Supported (feature-detected in :meth:`FusedUpdater.create`):

* :class:`MultiTaskPolicy` (and its :class:`DiscretePolicy` /
  :class:`ContinuousPolicy` specializations) — discrete and Gaussian
  head banks;
* :class:`ConditionedPolicy` — task-embedding rows concatenated onto the
  trunk features, discrete and Gaussian stacks.

Anything else — external policies, subclasses overriding ``evaluate``,
non-Dense trunks, exotic head banks — returns ``None`` from ``create``
and the trainer falls back to the graph path unchanged.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import MLP, Dense, Sequential
from repro.nn.ops import (
    _entropy_backward,
    _entropy_forward,
    _ppo_surrogate_backward,
    _ppo_surrogate_forward,
)
from repro.rl.policy import (
    ConditionedPolicy,
    ContinuousPolicy,
    DiscretePolicy,
    MultiTaskPolicy,
    _TaskHeads,
)

_LOG_2PI = float(np.log(2.0 * np.pi))
_ENTROPY_CONSTANT = 0.5 * float(np.log(2.0 * np.pi * np.e))

#: Policy classes whose ``evaluate`` composition the kernels replicate.
_FUSABLE_POLICIES = (
    MultiTaskPolicy,
    DiscretePolicy,
    ContinuousPolicy,
    ConditionedPolicy,
)

_SUPPORTED_ACTIVATIONS = ("tanh", "sigmoid", "relu", "linear")


def _plain_dense(layer) -> bool:
    return type(layer) is Dense and layer.activation in _SUPPORTED_ACTIVATIONS


def _fusable_trunk(trunk) -> bool:
    return (
        type(trunk) is MLP
        and type(trunk.network) is Sequential
        and all(_plain_dense(layer) for layer in trunk.network.layers)
    )


def _fusable_bank(bank) -> bool:
    if type(bank) is not _TaskHeads:
        return False
    if type(bank.value_head) is not Dense or bank.value_head.activation != "linear":
        return False
    if bank.kind == "discrete":
        return all(
            type(head) is Dense and head.activation == "linear"
            for head in bank.heads
        )
    if bank.kind == "gaussian":
        return (
            type(bank.mean_head) is Dense and bank.mean_head.activation == "linear"
        )
    return False


def supports_fused_update(policy) -> bool:
    """Whether the fused kernels replicate this policy's ``evaluate``."""
    if type(policy) not in _FUSABLE_POLICIES:
        return False
    if not _fusable_trunk(policy.trunk):
        return False
    if isinstance(policy, ConditionedPolicy):
        banks = policy.head_stacks.values()
    else:
        banks = policy.task_heads.values()
    return all(_fusable_bank(bank) for bank in banks)


def _activation_forward(name: str, z: np.ndarray) -> np.ndarray:
    if name == "tanh":
        return np.tanh(z)
    if name == "sigmoid":
        return 1.0 / (1.0 + np.exp(-z))
    if name == "relu":
        return np.maximum(z, 0.0)
    return z  # linear: the Dense layer adds no activation node


def _activation_backward(
    name: str, gradient: np.ndarray, z: np.ndarray, h: np.ndarray
) -> np.ndarray:
    if name == "tanh":
        return gradient * (1.0 - h ** 2)
    if name == "sigmoid":
        return gradient * h * (1.0 - h)
    if name == "relu":
        return gradient * (z > 0)
    return gradient


class FusedUpdater:
    """Bit-exact fused forward/backward PPO updates for one trainer.

    Holds the policy, optimizer and config; :meth:`update_minibatch` is a
    drop-in replacement for the trainer's graph-based minibatch step for
    any task whose head bank passed feature detection (``kernel_for``
    returns ``None`` otherwise, and the trainer falls back).
    """

    def __init__(self, policy, optimizer, config):
        self.policy = policy
        self.optimizer = optimizer
        self.config = config
        self.conditioned = isinstance(policy, ConditionedPolicy)
        trunk_layers = policy.trunk.network.layers
        self._trunk = [
            (layer.weight, layer.bias, layer.activation) for layer in trunk_layers
        ]
        self._bank_cache: Dict[Optional[str], Optional[_TaskHeads]] = {}

    @classmethod
    def create(cls, policy, optimizer, config) -> Optional["FusedUpdater"]:
        """An updater for supported policies, ``None`` otherwise."""
        if not supports_fused_update(policy):
            return None
        return cls(policy, optimizer, config)

    # -- routing -------------------------------------------------------------

    def _bank_for(self, task) -> Optional[_TaskHeads]:
        key = task if (task is None or isinstance(task, str)) else getattr(
            task, "name", str(task)
        )
        if key in self._bank_cache:
            return self._bank_cache[key]
        bank = self.policy.heads_for(task)
        resolved = bank if _fusable_bank(bank) else None
        self._bank_cache[key] = resolved
        return resolved

    def kernel_for(self, task) -> bool:
        """Whether ``update_minibatch`` can serve this task."""
        try:
            return self._bank_for(task) is not None
        except (ValueError, KeyError):
            return False

    # -- the fused step ------------------------------------------------------

    def update_minibatch(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        old_log_probs: np.ndarray,
        advantages: np.ndarray,
        returns: np.ndarray,
        task=None,
        timer=None,
    ) -> Dict[str, float]:
        """One PPO minibatch step — bit-identical to the graph path."""
        config = self.config
        bank = self._bank_for(task)
        started = time.perf_counter() if timer is not None else 0.0

        # ---- forward -------------------------------------------------------
        layer_inputs: List[np.ndarray] = []  # x entering each trunk layer
        pre_activations: List[np.ndarray] = []  # z = x @ W + b per layer
        outputs: List[np.ndarray] = []  # h = activation(z) per layer
        x = observations
        for weight, bias, activation in self._trunk:
            layer_inputs.append(x)
            z = x @ weight.data + bias.data
            h = _activation_forward(activation, z)
            pre_activations.append(z)
            outputs.append(h)
            x = h
        hidden = x

        embedding = None
        if self.conditioned:
            name = self.policy._resolve_name(task)
            embedding = self.policy.task_embeddings[name]
            embed_dim = self.policy.task_embed_dim
            features = np.concatenate(
                [
                    hidden,
                    np.broadcast_to(
                        embedding.data.reshape(1, embed_dim),
                        (observations.shape[0], embed_dim),
                    ),
                ],
                axis=1,
            )
        else:
            features = hidden

        value_head = bank.value_head
        value_pre = features @ value_head.weight.data + value_head.bias.data

        if bank.kind == "discrete":
            forward = self._discrete_forward(bank, features, actions)
        else:
            forward = self._gaussian_forward(bank, features, actions)
        log_probs, entropy = forward[0], forward[1]

        count = observations.shape[0]
        policy_loss, ratio, unclipped, clipped = _ppo_surrogate_forward(
            log_probs,
            old_log_probs,
            advantages,
            1.0 - config.clip_ratio,
            1.0 + config.clip_ratio,
        )
        values_flat = value_pre.reshape(-1)
        value_diff = values_flat - returns
        value_loss = (value_diff * value_diff).mean()
        entropy_bonus = entropy.mean()
        total_loss = (
            policy_loss + value_loss * config.value_coefficient
        ) + entropy_bonus * -config.entropy_coefficient

        if timer is not None:
            now = time.perf_counter()
            timer.add("evaluate", now - started)
            started = now

        # ---- backward ------------------------------------------------------
        self.optimizer.zero_grad()

        # Entropy branch fires first in the graph's reverse-topological
        # order; the per-parameter contributions it produces are threaded
        # into the bank backward below in that same order.
        g_entropy = np.broadcast_to(
            np.asarray((1.0 * -config.entropy_coefficient) / count), (count,)
        )
        # Value branch (fires before the policy branch): the features
        # gradient starts from the value head.
        g_sq = (1.0 * config.value_coefficient) / count
        half = g_sq * value_diff
        g_value = (half + half).reshape(count, 1)
        value_head.bias._accumulate(g_value.sum(axis=0))
        g_features = g_value @ np.swapaxes(value_head.weight.data, -1, -2)
        value_head.weight._accumulate(
            np.swapaxes(features, -1, -2) @ g_value
        )
        # Policy branch: clipped surrogate back to the log-probs.
        g_log_probs = _ppo_surrogate_backward(
            1.0,
            ratio,
            unclipped,
            clipped,
            advantages,
            1.0 - config.clip_ratio,
            1.0 + config.clip_ratio,
        )

        if bank.kind == "discrete":
            g_features = self._discrete_backward(
                bank, features, forward, g_entropy, g_log_probs, g_features
            )
        else:
            g_features = self._gaussian_backward(
                bank, features, forward, g_entropy, g_log_probs, g_features
            )

        if embedding is not None:
            hidden_width = hidden.shape[1]
            g_hidden = g_features[:, :hidden_width]
            # The graph copies the concat slice before the broadcast node
            # sums it; sum the same contiguous layout.
            g_embed = g_features[:, hidden_width:].copy()
            embedding._accumulate(
                g_embed.sum(axis=0, keepdims=True).reshape(-1)
            )
        else:
            g_hidden = g_features

        gradient = g_hidden
        for index in range(len(self._trunk) - 1, -1, -1):
            weight, bias, activation = self._trunk[index]
            g_z = _activation_backward(
                activation, gradient, pre_activations[index], outputs[index]
            )
            bias._accumulate(g_z.sum(axis=0))
            if index > 0:
                gradient = g_z @ np.swapaxes(weight.data, -1, -2)
            weight._accumulate(np.swapaxes(layer_inputs[index], -1, -2) @ g_z)

        if timer is not None:
            now = time.perf_counter()
            timer.add("backward", now - started)
            started = now

        # ---- optimizer -----------------------------------------------------
        self.optimizer.clip_gradients(config.max_gradient_norm)
        self.optimizer.step()
        if timer is not None:
            timer.add("optimizer", time.perf_counter() - started)

        return {
            "total_loss": float(total_loss),
            "policy_loss": float(policy_loss),
            "value_loss": float(value_loss),
            "entropy": float(entropy_bonus),
        }

    # -- discrete banks ------------------------------------------------------

    def _discrete_forward(self, bank, features, actions):
        """Fused-head categorical forward; saves per-head softmax state."""
        weights = np.concatenate([head.weight.data for head in bank.heads], axis=1)
        biases = np.concatenate([head.bias.data for head in bank.heads], axis=0)
        logits = features @ weights + biases
        head_log_softmax: List[np.ndarray] = []
        head_probs: List[np.ndarray] = []
        head_indices: List[np.ndarray] = []
        log_probs = None
        entropy = None
        offset = 0
        for dimension, head in enumerate(bank.heads):
            head_logits = logits[:, offset : offset + head.out_features]
            offset += head.out_features
            shifted = head_logits - head_logits.max(axis=-1, keepdims=True)
            log_sum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
            log_softmax_values = shifted - log_sum
            exps = np.exp(shifted)
            probs = exps / exps.sum(axis=-1, keepdims=True)
            indices = actions[:, dimension].astype(np.int64).reshape(-1, 1)
            picked = np.take_along_axis(
                log_softmax_values, indices, axis=-1
            ).squeeze(-1)
            head_entropy = (probs * log_softmax_values).sum(axis=-1) * -1.0
            head_log_softmax.append(log_softmax_values)
            head_probs.append(probs)
            head_indices.append(indices)
            log_probs = picked if log_probs is None else log_probs + picked
            entropy = (
                head_entropy if entropy is None else entropy + head_entropy
            )
        return (
            log_probs,
            entropy,
            weights,
            logits,
            head_log_softmax,
            head_probs,
            head_indices,
        )

    def _discrete_backward(
        self, bank, features, forward, g_entropy, g_log_probs, g_features
    ):
        (_, _, weights, logits, head_log_softmax, head_probs, head_indices) = forward
        rows = features.shape[0]
        head_count = len(bank.heads)
        slice_grads: List[Optional[np.ndarray]] = [None] * head_count
        # Entropy chain: heads fire in reverse order; each head's slice
        # gradient starts with the entropy contribution (log-softmax branch
        # first, then softmax — _entropy_backward replicates that order).
        for dimension in range(head_count - 1, -1, -1):
            slice_grads[dimension] = _entropy_backward(
                g_entropy, head_log_softmax[dimension], head_probs[dimension]
            )
        # Policy chain: scatter the shared log-prob gradient through each
        # head's picked-index node and log-softmax, adding onto the slice
        # gradients (again in reverse head order, matching the graph).
        g_logits = np.zeros_like(logits)
        offsets = np.cumsum([0] + [head.out_features for head in bank.heads])
        for dimension in range(head_count - 1, -1, -1):
            log_softmax_values = head_log_softmax[dimension]
            scattered = np.zeros_like(log_softmax_values)
            np.put_along_axis(
                scattered,
                head_indices[dimension],
                g_log_probs.reshape(g_log_probs.shape + (1,)),
                axis=-1,
            )
            softmax_values = np.exp(log_softmax_values)
            total = scattered.sum(axis=-1, keepdims=True)
            slice_grad = slice_grads[dimension] + (
                scattered - softmax_values * total
            )
            g_logits[:, offsets[dimension] : offsets[dimension + 1]] = slice_grad
        if head_count >= 2:
            # The graph pads each slice gradient to full width and sums the
            # pads, which flushes any -0.0 to +0.0 (x + 0.0); replicate.
            np.add(g_logits, 0.0, out=g_logits)
        g_bias = g_logits.sum(axis=0)
        for dimension, head in enumerate(bank.heads):
            head.bias._accumulate(g_bias[offsets[dimension] : offsets[dimension + 1]])
        g_features = g_features + g_logits @ np.swapaxes(weights, -1, -2)
        g_weights = np.swapaxes(features, -1, -2) @ g_logits
        for dimension, head in enumerate(bank.heads):
            head.weight._accumulate(
                g_weights[:, offsets[dimension] : offsets[dimension + 1]]
            )
        return g_features

    # -- gaussian banks ------------------------------------------------------

    def _gaussian_forward(self, bank, features, actions):
        mean_head = bank.mean_head
        mean_pre = features @ mean_head.weight.data + mean_head.bias.data
        mean = 1.0 / (1.0 + np.exp(-mean_pre))
        dims = bank.action_dims
        action_values = np.asarray(actions)[:, :dims]
        action_values = np.asarray(action_values, dtype=np.float64)
        log_std = bank.log_std.data
        doubled_log_std = log_std * 2.0
        variance = np.exp(doubled_log_std)
        difference = action_values - mean
        squared = difference * difference
        quadratic = squared / variance
        per_dimension = (quadratic + doubled_log_std + _LOG_2PI) * -0.5
        log_probs = per_dimension.sum(axis=-1)
        entropy_sum = (log_std + _ENTROPY_CONSTANT).sum(axis=None, keepdims=False)
        entropy = np.broadcast_to(entropy_sum, (action_values.shape[0],)).copy()
        return (log_probs, entropy, mean, difference, squared, variance)

    def _gaussian_backward(
        self, bank, features, forward, g_entropy, g_log_probs, g_features
    ):
        (_, _, mean, difference, squared, variance) = forward
        log_std = bank.log_std
        dims = bank.action_dims
        # Entropy branch (fires first): broadcast node sums the row
        # gradient, the scalar sum broadcasts back over the dimensions.
        g_entropy_sum = g_entropy.sum(axis=0)
        log_std_grad = np.broadcast_to(g_entropy_sum, (dims,)).copy()
        # Policy branch through the per-dimension log-density.
        g_per_dim = np.broadcast_to(
            np.expand_dims(g_log_probs, axis=-1), squared.shape
        )
        g_inner = g_per_dim * -0.5
        # The 2*log_std term inside the density fires before the variance
        # chain; both land on log_std after the entropy contribution.  The
        # graph sums each branch down to (dims,) at the node whose shape is
        # (dims,) — the doubled-log-std node for this branch, the variance
        # node for the next — so the sums sit exactly there, NOT at the
        # end of the chain (summation does not commute with the variance
        # multiply in floating point).
        np.add(log_std_grad, g_inner.sum(axis=0) * 2.0, out=log_std_grad)
        g_quadratic = g_inner / variance
        g_variance = (-g_inner * squared / (variance ** 2)).sum(axis=0)
        g_doubled = g_variance * variance
        np.add(log_std_grad, g_doubled * 2.0, out=log_std_grad)
        log_std._accumulate(log_std_grad)
        half = g_quadratic * difference
        g_difference = half + half
        g_mean = -g_difference
        g_mean_pre = g_mean * mean * (1.0 - mean)
        mean_head = bank.mean_head
        mean_head.bias._accumulate(g_mean_pre.sum(axis=0))
        g_features = g_features + g_mean_pre @ np.swapaxes(
            mean_head.weight.data, -1, -2
        )
        mean_head.weight._accumulate(
            np.swapaxes(features, -1, -2) @ g_mean_pre
        )
        return g_features
