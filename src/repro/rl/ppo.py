"""Proximal Policy Optimization for the per-site contextual bandit.

Task-generic: actions flow through the policy's action space (built from
the task's menus) and rewards through the environment's task-aware cache
path, so the identical trainer optimizes vectorization factors, Polly
tile/fusion choices, or any other registered task.

Multi-task aware: over a :class:`repro.rl.env.MultiTaskEnv` with a
:class:`repro.rl.policy.MultiTaskPolicy`, every collected step carries its
task id, minibatches are grouped by task so each update applies the right
head bank's log-probs/entropy/value, and :class:`IterationStats` reports
per-task reward means alongside the joint mean.  A single-task run is the
one-group special case — minibatch composition, RNG consumption and
gradients are identical to the pre-redesign trainer.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.nn import ops
from repro.nn.losses import mse_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.rl.env import VectorizationEnv
from repro.rl.policy import Policy


@dataclass
class PPOConfig:
    """Hyperparameters (defaults follow §4: 64x64 FCNN, lr 5e-5, batch 4000)."""

    learning_rate: float = 5e-5
    train_batch_size: int = 4000
    minibatch_size: int = 128
    epochs_per_batch: int = 8
    clip_ratio: float = 0.3
    value_coefficient: float = 0.5
    entropy_coefficient: float = 0.01
    max_gradient_norm: float = 5.0
    reward_clip: Optional[float] = None
    #: Rollout chunk size when the env has a parallel evaluation service:
    #: chunk k's rewards simulate in worker processes while the policy acts
    #: on chunk k+1.  Ignored (single chunk) without background workers.
    async_chunk_size: int = 64
    #: Per-task advantage normalization: each task's advantages are
    #: standardized against that task's *running* mean/std instead of the
    #: joint batch statistics, so tasks with wildly different reward
    #: scales stop fighting over the shared trunk.  ``None`` (default)
    #: enables it exactly for joint batches (two or more task ids in the
    #: collected batch), keeping single-task training byte-identical to
    #: the global-normalization trainer; ``True``/``False`` force it.
    per_task_advantage_norm: Optional[bool] = None
    #: Hand-fused minibatch updates: one forward + one backward function
    #: per minibatch instead of building and walking an autodiff graph.
    #: Bit-identical losses, gradients and optimizer state (the regression
    #: suite in ``tests/test_fused_update.py`` pins this), so it is purely
    #: a speed knob.  ``None`` (default) auto-detects: fused kernels serve
    #: the known policy architectures, anything else — external policies,
    #: overridden ``evaluate`` — falls back to the graph path per
    #: minibatch.  ``False`` forces the graph path; ``True`` additionally
    #: raises at construction when the policy is not fusable.
    fused_update: Optional[bool] = None

    def scaled(self, **overrides) -> "PPOConfig":
        """A copy of this config with some fields replaced."""
        values = dict(self.__dict__)
        values.update(overrides)
        return PPOConfig(**values)


@dataclass
class IterationStats:
    """Metrics for one training iteration (one collected batch)."""

    iteration: int
    steps_total: int
    reward_mean: float
    reward_min: float
    reward_max: float
    total_loss: float
    policy_loss: float
    value_loss: float
    entropy: float
    wall_time_seconds: float
    #: Joint training: mean reward per task id within this batch (a single
    #: entry — the task's own mean, equal to ``reward_mean`` — for
    #: single-task runs).
    per_task_reward_mean: Dict[str, float] = field(default_factory=dict)
    #: Joint training: steps each task contributed to this batch.
    per_task_steps: Dict[str, int] = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Reward/loss curves over training — the data behind Figures 5 and 6."""

    config: PPOConfig
    iterations: List[IterationStats] = field(default_factory=list)

    def reward_curve(self, task: Optional[str] = None) -> List[float]:
        """The joint reward-mean curve, or one task's curve (``task=name``)."""
        if task is None:
            return [it.reward_mean for it in self.iterations]
        return [
            it.per_task_reward_mean.get(task, float("nan"))
            for it in self.iterations
        ]

    def task_names(self) -> List[str]:
        """Task ids seen during training, in first-appearance order."""
        seen: "OrderedDict[str, None]" = OrderedDict()
        for stats in self.iterations:
            for name in stats.per_task_reward_mean:
                seen.setdefault(name, None)
        return list(seen)

    def per_task_final_rewards(self) -> Dict[str, float]:
        """Each task's reward mean in the last iteration it appeared in."""
        finals: Dict[str, float] = {}
        for stats in self.iterations:
            finals.update(stats.per_task_reward_mean)
        return finals

    def loss_curve(self) -> List[float]:
        return [it.total_loss for it in self.iterations]

    def steps(self) -> List[int]:
        return [it.steps_total for it in self.iterations]

    @property
    def final_reward_mean(self) -> float:
        return self.iterations[-1].reward_mean if self.iterations else float("nan")

    @property
    def best_reward_mean(self) -> float:
        return max((it.reward_mean for it in self.iterations), default=float("nan"))

    def converged_at(self, threshold: float = 0.0) -> Optional[int]:
        """First step count at which the mean reward exceeds ``threshold``."""
        for stats in self.iterations:
            if stats.reward_mean > threshold:
                return stats.steps_total
        return None


class _RunningMoments:
    """Streaming mean/variance (Welford batch merge) for one task's advantages."""

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        added = int(values.size)
        if added == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(values.var()) * added
        delta = batch_mean - self.mean
        total = self.count + added
        self.mean += delta * added / total
        self._m2 += batch_m2 + delta * delta * self.count * added / total
        self.count = total

    @property
    def std(self) -> float:
        return float(np.sqrt(self._m2 / self.count)) if self.count else 0.0


class PPOTrainer:
    """Single-process PPO trainer over a :class:`VectorizationEnv`.

    Episodes are single-step (contextual bandit), so the advantage of an
    action is simply ``reward - value_estimate`` and there is no bootstrapping
    or discounting to do.

    ``trainable_parameters`` restricts the optimizer to a parameter subset
    (the frozen-trunk transfer path: a conditioned policy's
    ``transfer_parameters(task)``); every other parameter keeps its exact
    bytes — gradients may still flow through frozen layers, but no
    optimizer step ever touches them.
    """

    def __init__(
        self,
        env: VectorizationEnv,
        policy: Policy,
        config: Optional[PPOConfig] = None,
        trainable_parameters=None,
        profiler=None,
    ):
        self.env = env
        self.policy = policy
        self.config = config or PPOConfig()
        #: Optional :class:`repro.profiling.PhaseTimer`; when attached,
        #: training records collect/gather/evaluate/backward/optimizer
        #: phase timings.  ``None`` (default) skips all timing calls.
        self.profiler = profiler
        # The environment must decode actions with the policy's own
        # space(s).  A multi-task policy hands its per-task spaces to a
        # multi-task env; a single-task policy keeps the legacy assignment.
        spaces = getattr(policy, "spaces", None)
        if spaces is not None and hasattr(env, "set_action_spaces"):
            env.set_action_spaces(spaces)
        elif spaces is not None and len(spaces) > 1:
            raise ValueError(
                "a multi-task policy (head banks: "
                f"{list(spaces)}) needs a MultiTaskEnv, not "
                f"{type(env).__name__}"
            )
        elif hasattr(policy, "space"):
            env_task = getattr(env, "task", None)
            if env_task is not None and hasattr(policy, "space_for"):
                # Validates the bank serves the env's task: a single bank
                # *named* for a different task is rejected here instead of
                # silently decoding its menus into this task's cache path
                # (the unnamed legacy bank serves any task).
                self.env.action_space = policy.space_for(env_task.name)
            else:
                self.env.action_space = policy.space
        if trainable_parameters is not None:
            parameters = list(trainable_parameters)
            if not parameters:
                raise ValueError(
                    "trainable_parameters must name at least one parameter"
                )
        else:
            parameters = policy.parameters()
        self.optimizer = Adam(parameters, self.config.learning_rate)
        self.history = TrainingHistory(config=self.config)
        self.total_steps = 0
        # One running-moments accumulator per task id for per-task
        # advantage normalization (lazily created on first joint batch).
        self._advantage_moments: Dict[Optional[str], _RunningMoments] = {}
        # Hand-fused update kernels for the known policy architectures
        # (bit-identical to the graph path; see PPOConfig.fused_update).
        self._fused = None
        if self.config.fused_update is not False:
            from repro.rl.fused_update import FusedUpdater

            self._fused = FusedUpdater.create(policy, self.optimizer, self.config)
            if self._fused is None and self.config.fused_update is True:
                raise ValueError(
                    "fused_update=True but the fused kernels do not support "
                    f"this policy ({type(policy).__name__}); use "
                    "fused_update=None for per-minibatch auto-detection"
                )

    # -- rollout collection --------------------------------------------------------

    def collect_batch(self, batch_size: int):
        from repro.distributed.async_api import AsyncEvaluator

        observations: List[np.ndarray] = []
        actions: List[np.ndarray] = []
        log_probs: List[float] = []
        rewards: List[float] = []
        values: List[float] = []
        task_names: List[str] = []
        # Deduplicated evaluation for the whole rollout: repeated (loop,
        # action) pairs — the common case once the policy sharpens — hit the
        # shared reward cache instead of recompiling.  With a parallel
        # evaluation service the rollout is chunked so chunk k's unique
        # misses simulate in worker processes while the policy network acts
        # on chunk k+1 (latency hiding); otherwise one chunk preserves the
        # single-pass serial behaviour exactly.
        # The policy hands a fleet-backed service its action distribution:
        # idle workers speculatively evaluate the top-k likely next actions
        # while this process is busy inferring, so later chunks hit instead
        # of waiting.
        evaluator = AsyncEvaluator(self.env, policy=self.policy)
        chunk_size = (
            max(1, self.config.async_chunk_size)
            if evaluator.overlapping
            else batch_size
        )
        futures = []
        collected = 0
        while collected < batch_size:
            # Gather the whole chunk's ready observations first, then act on
            # them with ONE batched forward (rows grouped by task id inside
            # act_batch).  Site order and RNG consumption match the serial
            # loop exactly, so rollouts are byte-identical either way.
            entries = self._gather_chunk(min(chunk_size, batch_size - collected))
            outputs = self._act_chunk(entries)
            pairs = []
            for (sample, observation, task_name), output in zip(entries, outputs):
                pairs.append((sample, output.action))
                observations.append(observation)
                actions.append(np.asarray(output.action, dtype=np.float64))
                log_probs.append(output.log_prob)
                values.append(output.value)
                task_names.append(task_name)
            futures.append(evaluator.submit(pairs))
            collected += len(pairs)
        for future in futures:
            for step in future.result():
                reward = step.reward
                if self.config.reward_clip is not None:
                    reward = float(
                        np.clip(reward, -self.config.reward_clip, self.config.reward_clip)
                    )
                rewards.append(reward)
        # Tasks may differ in action arity; pad each row to the widest so
        # one matrix holds the joint batch (each task's evaluate only reads
        # its own leading columns).  Single-task batches pad to their own
        # width — i.e. not at all.
        width = max(action.shape[0] for action in actions)
        action_matrix = np.zeros((len(actions), width), dtype=np.float64)
        for row, action in enumerate(actions):
            action_matrix[row, : action.shape[0]] = action
        return (
            np.stack(observations),
            action_matrix,
            np.asarray(log_probs),
            np.asarray(rewards),
            np.asarray(values),
            task_names,
        )

    def _gather_chunk(self, count: int):
        """The next ``count`` rollout entries as (sample, observation, task)."""
        next_batch = getattr(self.env, "next_batch", None)
        if next_batch is not None:
            return next_batch(count)
        entries = []
        for _ in range(count):
            observation = self.env.reset()
            entries.append(
                (self.env.current_sample(), observation, self.env.current_task_name)
            )
        return entries

    def _act_chunk(self, entries):
        """Sample actions for a whole chunk with one batched forward."""
        act_batch = getattr(self.policy, "act_batch", None)
        if act_batch is not None:
            return act_batch(
                np.stack([observation for _, observation, _ in entries]),
                tasks=[task_name for _, _, task_name in entries],
            )
        return [
            self.policy.act(observation, task=task_name)
            for _, observation, task_name in entries
        ]

    # -- optimisation ---------------------------------------------------------------

    def update(
        self,
        observations,
        actions,
        old_log_probs,
        rewards,
        values,
        task_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, float]:
        advantages = rewards - values
        per_task = self.config.per_task_advantage_norm
        if per_task is None:
            # Default on exactly for joint batches: a single-task batch
            # keeps the pre-conditioning global normalization bytes.
            per_task = task_names is not None and len(set(task_names)) > 1
        if per_task:
            advantages = self._normalize_advantages_per_task(advantages, task_names)
        elif advantages.std() > 1e-8:
            advantages = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
        returns = rewards

        batch_size = observations.shape[0]
        indices = np.arange(batch_size)
        config = self.config
        last_metrics: Dict[str, float] = {}
        rng = np.random.default_rng(self.total_steps)
        profiler = self.profiler
        # Group membership never changes across epochs — only the shuffle
        # order does — so the name-to-code table is built once here and the
        # per-epoch work is a cheap order-preserving partition of the
        # freshly shuffled index array.
        plan = self._task_group_plan(task_names)

        for _ in range(config.epochs_per_batch):
            rng.shuffle(indices)
            # Minibatches form *within* task groups so every update step
            # applies exactly one head bank's log-probs/entropy/value.  A
            # single-task batch is one group spanning the whole shuffled
            # index array — slicing (and therefore training) identical to
            # the pre-multi-task trainer.
            for task, task_indices in self._shuffled_groups(indices, plan):
                # Gather each group's matrices ONCE per epoch; minibatches
                # below read contiguous slices instead of re-running fancy
                # indexing per step.  ``group_x[a:b]`` holds exactly the
                # rows ``x[task_indices[a:b]]`` the per-minibatch gather
                # produced, so training bytes are unchanged.
                if profiler is not None:
                    gather_started = time.perf_counter()
                group_observations = observations[task_indices]
                group_actions = actions[task_indices]
                group_old_log_probs = old_log_probs[task_indices]
                group_advantages = advantages[task_indices]
                group_returns = returns[task_indices]
                if profiler is not None:
                    profiler.add(
                        "gather", time.perf_counter() - gather_started
                    )
                fused = self._fused
                if fused is not None and not fused.kernel_for(task):
                    fused = None
                for start in range(0, len(task_indices), config.minibatch_size):
                    stop = start + config.minibatch_size
                    if fused is not None:
                        last_metrics = fused.update_minibatch(
                            group_observations[start:stop],
                            group_actions[start:stop],
                            group_old_log_probs[start:stop],
                            group_advantages[start:stop],
                            group_returns[start:stop],
                            task=task,
                            timer=profiler,
                        )
                    else:
                        last_metrics = self._update_minibatch(
                            group_observations[start:stop],
                            group_actions[start:stop],
                            group_old_log_probs[start:stop],
                            group_advantages[start:stop],
                            group_returns[start:stop],
                            task=task,
                        )
        return last_metrics

    def _normalize_advantages_per_task(
        self, advantages: np.ndarray, task_names: Optional[Sequence[str]]
    ) -> np.ndarray:
        """Standardize each task's advantages by its running mean/std.

        The running statistics persist across batches (Welford merge), so
        a task whose rewards sit on a different scale is normalized
        against its own history rather than whatever mix this particular
        batch happened to contain.
        """
        names = (
            list(task_names)
            if task_names is not None
            else [None] * len(advantages)
        )
        normalized = np.asarray(advantages, dtype=np.float64).copy()
        for name in dict.fromkeys(names):  # stable first-seen order
            mask = np.asarray([entry == name for entry in names])
            moments = self._advantage_moments.setdefault(name, _RunningMoments())
            moments.update(normalized[mask])
            normalized[mask] = (normalized[mask] - moments.mean) / (
                moments.std + 1e-8
            )
        return normalized

    @staticmethod
    def _task_group_plan(task_names: Optional[Sequence[str]]):
        """The epoch-invariant part of task grouping: names + code array.

        Returns ``(names, codes)``: for single-group batches ``names`` is
        the lone task id (or ``None``) and ``codes`` is ``None``; for
        joint batches ``names`` lists distinct task ids and ``codes`` maps
        every batch row to its position in that list.
        """
        if task_names is None or len(set(task_names)) <= 1:
            return (task_names[0] if task_names else None), None
        names = list(dict.fromkeys(task_names))
        code_of = {name: code for code, name in enumerate(names)}
        codes = np.asarray([code_of[name] for name in task_names])
        return names, codes

    @staticmethod
    def _shuffled_groups(indices, plan):
        """Partition shuffled indices by task id, preserving shuffle order.

        Groups appear in first-appearance-within-the-shuffle order and
        each group's indices keep their shuffled order — the exact
        partition the historical per-epoch OrderedDict walk produced, as a
        few vectorized passes over the precomputed code array.
        """
        names, codes = plan
        if codes is None:
            return [(names, indices)]
        shuffled_codes = codes[indices]
        _, first_positions = np.unique(shuffled_codes, return_index=True)
        ordered = shuffled_codes[np.sort(first_positions)]
        return [
            (names[code], indices[shuffled_codes == code]) for code in ordered
        ]

    @staticmethod
    def _task_groups(indices, task_names: Optional[Sequence[str]]):
        """Partition shuffled indices by task id, preserving shuffle order."""
        if task_names is None or len(set(task_names)) <= 1:
            only = task_names[0] if task_names else None
            return [(only, indices)]
        groups: "OrderedDict[str, List[int]]" = OrderedDict()
        for index in indices:
            groups.setdefault(task_names[index], []).append(int(index))
        return [(task, np.asarray(members)) for task, members in groups.items()]

    def _update_minibatch(
        self, observations, actions, old_log_probs, advantages, returns, task=None
    ) -> Dict[str, float]:
        config = self.config
        profiler = self.profiler
        started = time.perf_counter() if profiler is not None else 0.0
        log_probs, entropy, values = self.policy.evaluate(
            observations, actions, task=task
        )
        # The clipped surrogate as ONE graph node (ops.ppo_surrogate is
        # bit-identical, forward and backward, to the historical
        # exp/sub/mul/clip/minimum/mean/mul chain).
        policy_loss = ops.ppo_surrogate(
            log_probs,
            old_log_probs,
            advantages,
            1.0 - config.clip_ratio,
            1.0 + config.clip_ratio,
        )
        value_loss = mse_loss(values, Tensor(returns))
        entropy_bonus = ops.mean(entropy)
        total_loss = ops.add(
            ops.add(policy_loss, ops.mul(value_loss, config.value_coefficient)),
            ops.mul(entropy_bonus, -config.entropy_coefficient),
        )
        if profiler is not None:
            now = time.perf_counter()
            profiler.add("evaluate", now - started)
            started = now
        self.optimizer.zero_grad()
        total_loss.backward()
        if profiler is not None:
            now = time.perf_counter()
            profiler.add("backward", now - started)
            started = now
        self.optimizer.clip_gradients(config.max_gradient_norm)
        self.optimizer.step()
        if profiler is not None:
            profiler.add("optimizer", time.perf_counter() - started)
        return {
            "total_loss": float(total_loss.item()),
            "policy_loss": float(policy_loss.item()),
            "value_loss": float(value_loss.item()),
            "entropy": float(entropy_bonus.item()),
        }

    # -- training loop -----------------------------------------------------------------

    def train(self, total_steps: int, batch_size: Optional[int] = None) -> TrainingHistory:
        """Run training until ``total_steps`` environment steps were consumed."""
        batch_size = batch_size or min(self.config.train_batch_size, total_steps)
        iteration = len(self.history.iterations)
        profiler = self.profiler
        while self.total_steps < total_steps:
            start_time = time.perf_counter()
            current_batch = min(batch_size, total_steps - self.total_steps)
            with profiler.scope("collect") if profiler is not None else nullcontext():
                (
                    observations,
                    actions,
                    log_probs,
                    rewards,
                    values,
                    task_names,
                ) = self.collect_batch(current_batch)
            with profiler.scope("update") if profiler is not None else nullcontext():
                metrics = self.update(
                    observations, actions, log_probs, rewards, values, task_names
                )
            self.total_steps += current_batch
            iteration += 1
            per_task_rewards: Dict[str, float] = {}
            per_task_steps: Dict[str, int] = {}
            name_array = np.asarray(task_names)
            for name in dict.fromkeys(task_names):  # stable first-seen order
                mask = name_array == name
                per_task_rewards[name] = float(rewards[mask].mean())
                per_task_steps[name] = int(mask.sum())
            self.history.iterations.append(
                IterationStats(
                    iteration=iteration,
                    steps_total=self.total_steps,
                    reward_mean=float(rewards.mean()),
                    reward_min=float(rewards.min()),
                    reward_max=float(rewards.max()),
                    total_loss=metrics.get("total_loss", float("nan")),
                    policy_loss=metrics.get("policy_loss", float("nan")),
                    value_loss=metrics.get("value_loss", float("nan")),
                    entropy=metrics.get("entropy", float("nan")),
                    wall_time_seconds=time.perf_counter() - start_time,
                    per_task_reward_mean=per_task_rewards,
                    per_task_steps=per_task_steps,
                )
            )
        return self.history
