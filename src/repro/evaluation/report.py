"""Plain-text tables for experiment output."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Table:
    """A simple column-aligned text table."""

    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    title: str = ""

    def add_row(self, values: Sequence[object]) -> None:
        self.rows.append([_format_cell(value) for value in values])

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append(
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(self.headers))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_speedup_table(
    speedups: Dict[str, Dict[str, float]],
    methods: Optional[Sequence[str]] = None,
    title: str = "",
) -> Table:
    """Render {benchmark: {method: speedup}} as a table with a geomean row."""
    if methods is None:
        methods = sorted({m for per in speedups.values() for m in per})
    table = Table(headers=["benchmark"] + list(methods), title=title)
    for benchmark, per_method in speedups.items():
        table.add_row([benchmark] + [per_method.get(m, float("nan")) for m in methods])
    geomeans = []
    for method in methods:
        values = [per.get(method) for per in speedups.values() if per.get(method)]
        geomeans.append(geometric_mean([v for v in values if v and v > 0]))
    table.add_row(["geomean"] + geomeans)
    return table


def format_cache_stats_table(
    stats,
    title: str = "reward cache",
    simulator_memo=None,
    frontend=None,
    fleet=None,
) -> Table:
    """Render :class:`repro.cache.CacheStats` (or any object with the same
    counters) as a two-column table, including the derived hit rate and the
    number of pipeline evaluations the cache avoided.

    ``simulator_memo`` (a :meth:`CompileAndMeasure.simulator_memo_stats`
    dict) and ``frontend`` (a :class:`FrontendCacheStats` dict) append the
    hot-path memo counters to the same table so cache-pressure regressions
    in any layer are visible from one report.  ``fleet`` (a
    :class:`repro.fleet.FleetStats`) splits the hits into speculative vs
    demand-earned ones, so warm-start analysis can tell a genuinely warm
    store from one the prefetcher filled moments earlier.
    """
    table = Table(headers=["metric", "value"], title=title)
    table.add_row(["lookups", stats.lookups])
    table.add_row(["hits", stats.hits])
    if fleet is not None:
        table.add_row(["hits (speculative)", fleet.prefetch_hits])
        table.add_row(
            ["hits (demand)", max(0, stats.hits - fleet.prefetch_hits)]
        )
    table.add_row(["misses", stats.misses])
    table.add_row(["batch deduplicated", stats.batch_deduplicated])
    table.add_row(["evictions", stats.evictions])
    table.add_row(["hit rate", stats.hit_rate])
    table.add_row(["compiles avoided", stats.compiles_avoided])
    if fleet is not None:
        table.add_row(["prefetch issued", fleet.prefetch_issued])
        table.add_row(["prefetch joined in flight", fleet.prefetch_joined])
        table.add_row(["prefetch wasted", fleet.prefetch_wasted])
        table.add_row(["async waits converted", fleet.waits_converted])
    if simulator_memo is not None:
        table.add_row(["simulator memo hits", simulator_memo["hits"]])
        table.add_row(["simulator memo misses", simulator_memo["misses"]])
        table.add_row(["simulator memo evictions", simulator_memo["evictions"]])
        table.add_row(["simulator memo hit rate", simulator_memo["hit_rate"]])
        table.add_row(["simulator memo entries", simulator_memo["entries"]])
        table.add_row(["simulator playbooks", simulator_memo["playbook_entries"]])
        if "cost_iteration_hits" in simulator_memo:
            table.add_row(["cost memo hits", simulator_memo["cost_iteration_hits"]])
            table.add_row(["cost memo misses", simulator_memo["cost_iteration_misses"]])
            table.add_row(["cost memo hit rate", simulator_memo["cost_iteration_hit_rate"]])
            table.add_row(["cost grid sweeps", simulator_memo["cost_sweeps"]])
            table.add_row(["cost configs prepaid", simulator_memo["cost_swept_configs"]])
    if frontend is not None:
        table.add_row(["frontend cache hits", frontend["hits"]])
        table.add_row(["frontend cache misses", frontend["misses"]])
        table.add_row(["frontend cache evictions", frontend["evictions"]])
        table.add_row(["frontend cache hit rate", frontend["hit_rate"]])
    return table


def format_no_evaluations_table(title: str = "reward cache") -> Table:
    """The explicit empty-state report: no reward queries have run yet.

    Reserved for runs that genuinely measured nothing.  A run whose every
    reward was answered by a warm cache *did* evaluate — report it with
    :func:`format_cache_stats_table` / :func:`format_comparison_cache_table`
    (which show the hits) rather than this table.
    """
    table = Table(headers=["metric", "value"], title=f"{title} (no evaluations yet)")
    table.add_row(["evaluations", 0])
    return table


def format_task_summary_table(comparison, title: str = "") -> Table:
    """Task-tagged per-method summary of a comparison run.

    ``comparison`` is a :class:`repro.evaluation.comparison.TaskComparison`
    (or anything with ``task``/``methods``/``speedups`` and
    ``geomean``/``average``): one row per method with its geomean and
    average speedup over the baseline and how many kernels it ran on.
    """
    table = Table(
        headers=["method", "geomean speedup", "average speedup", "kernels"],
        title=title or f"method summary (task: {comparison.task})",
    )
    for method in comparison.methods:
        measured = sum(
            1 for per in comparison.speedups.values() if method in per
        )
        table.add_row(
            [method, comparison.geomean(method), comparison.average(method), measured]
        )
    return table


def format_generalization_table(matrix, title: str = "") -> Table:
    """Render a held-out-kernel generalization matrix as a text table.

    ``matrix`` is a :class:`repro.evaluation.comparison.GeneralizationMatrix`
    (or anything with ``items()`` yielding ``(task, SplitComparison)`` and a
    ``methods`` list): two rows per task — the train-kernels geomeans and
    the held-out test-kernels geomeans per method — so the per-method
    generalization gap reads straight down each column.
    """
    methods = matrix.methods
    table = Table(
        headers=["task", "kernels", "count"] + list(methods),
        title=title or "generalization matrix (geomean speedup over baseline)",
    )
    for task, entry in matrix.items():
        for side, comparison in entry.sides.items():
            table.add_row(
                [task, side, len(comparison.speedups)]
                + [comparison.geomean(method) for method in methods]
            )
    return table


def format_comparison_cache_table(
    comparison, title: str = "comparison reward cache"
) -> Table:
    """How a comparison run's rewards were served: cache hits vs simulations.

    Distinguishes the fully-warm case (every measurement a cache hit, zero
    simulator calls) from a cold run — the table a warm-store rerun shows
    instead of the misleading "no evaluations" empty state.
    """
    table = Table(headers=["metric", "value"], title=title)
    table.add_row(["lookups", comparison.cache_lookups])
    table.add_row(["cache hits", comparison.cache_hits])
    table.add_row(["simulated (misses)", comparison.cache_misses])
    hit_rate = (
        comparison.cache_hits / comparison.cache_lookups
        if comparison.cache_lookups
        else 0.0
    )
    table.add_row(["hit rate", hit_rate])
    if comparison.cache_misses == 0:
        table.add_row(["fully cache-served", "yes"])
    return table


def format_service_stats_table(
    stats,
    store_stats=None,
    preloaded: int = 0,
    title: str = "evaluation service",
) -> Table:
    """Render :class:`repro.distributed.ServiceStats` with one row per worker
    plus, when a persistent store backs the cache, its load/append counters.

    ``preloaded`` is the number of measurements the cache warm-started from
    disk (i.e. compiles this whole run never had to do)."""
    table = Table(headers=["metric", "value"], title=title)
    table.add_row(["dispatched to workers", stats.dispatched])
    table.add_row(["completed by workers", stats.completed])
    table.add_row(["worker errors", stats.errors])
    table.add_row(["serial batches", stats.serial_batches])
    table.add_row(["serial requests", stats.serial_requests])
    for worker_id in sorted(stats.per_worker_completed):
        table.add_row(
            [f"worker {worker_id} completed", stats.per_worker_completed[worker_id]]
        )
    if store_stats is not None:
        table.add_row(["store: preloaded entries", preloaded])
        table.add_row(["store: records loaded", store_stats.records_loaded])
        table.add_row(["store: records appended", store_stats.appended])
        table.add_row(["store: segments loaded", store_stats.segments_loaded])
        table.add_row(["store: segments skipped", store_stats.segments_skipped])
        table.add_row(["store: corrupt records", store_stats.corrupt_records])
    return table


def format_fleet_stats_table(
    stats,
    store_stats=None,
    preloaded: int = 0,
    title: str = "fleet evaluation",
) -> Table:
    """Render :class:`repro.fleet.FleetStats` as a text table.

    The fleet analogue of :func:`format_service_stats_table`: dispatch and
    completion totals with one per-worker throughput row each, the
    robustness counters (workers lost, retries, re-shards, inline
    fallbacks), and the speculative-prefetch ledger with the derived
    waits-converted rate.  ``store_stats``/``preloaded`` append the shared
    persistent store's counters exactly as the local-service table does.
    """
    table = Table(headers=["metric", "value"], title=title)
    table.add_row(["dispatched to fleet", stats.dispatched])
    table.add_row(["demand dispatches", stats.demand_dispatched])
    table.add_row(["completed by fleet", stats.completed])
    table.add_row(["worker errors", stats.errors])
    table.add_row(["serial batches", stats.serial_batches])
    table.add_row(["serial requests", stats.serial_requests])
    table.add_row(["workers lost", stats.workers_lost])
    table.add_row(["retries", stats.retries])
    table.add_row(["re-shards", stats.reshards])
    table.add_row(["inline evaluations", stats.inline_evaluations])
    table.add_row(["prefetch issued", stats.prefetch_issued])
    table.add_row(["prefetch hits", stats.prefetch_hits])
    table.add_row(["prefetch joined in flight", stats.prefetch_joined])
    table.add_row(["prefetch wasted", stats.prefetch_wasted])
    table.add_row(["async waits converted", stats.waits_converted])
    for worker in sorted(stats.per_worker_completed):
        table.add_row(
            [f"worker {worker} completed", stats.per_worker_completed[worker]]
        )
    if store_stats is not None:
        table.add_row(["store: preloaded entries", preloaded])
        table.add_row(["store: records loaded", store_stats.records_loaded])
        table.add_row(["store: records appended", store_stats.appended])
        table.add_row(["store: segments loaded", store_stats.segments_loaded])
        table.add_row(["store: segments skipped", store_stats.segments_skipped])
        table.add_row(["store: corrupt records", store_stats.corrupt_records])
    return table


def format_serving_stats_table(
    report,
    title: str = "compile service",
) -> Table:
    """Render a :class:`repro.serving.stats.ServingReport` as a text table.

    One glanceable view of a serving run: request/error/coalescing counts,
    the p50/p95/p99/mean latency profile, sustained requests per second,
    per-tier hit rates (``store`` answered with zero simulation,
    ``frontend`` skipped parse/AST/embedding, ``cold`` ran the full
    pipeline), micro-batch shape, and — when a latency SLO is configured —
    its attainment.
    """
    table = Table(headers=["metric", "value"], title=title)
    table.add_row(["requests", report.requests])
    table.add_row(["errors", report.errors])
    table.add_row(["coalesced", report.coalesced])
    table.add_row(["coalesced rate", report.coalesced_rate])
    table.add_row(["latency p50 (ms)", report.latency_p50_ms])
    table.add_row(["latency p95 (ms)", report.latency_p95_ms])
    table.add_row(["latency p99 (ms)", report.latency_p99_ms])
    table.add_row(["latency mean (ms)", report.latency_mean_ms])
    table.add_row(["requests/s", report.requests_per_second])
    for tier in ("store", "frontend", "cold"):
        table.add_row(
            [f"tier {tier}", report.tier_counts.get(tier, 0)]
        )
        table.add_row([f"tier {tier} rate", report.tier_rate(tier)])
    table.add_row(["ticks", report.ticks])
    table.add_row(["mean batch size", report.mean_batch_size])
    table.add_row(["max batch size", report.max_batch_size])
    if report.slo_ms is not None:
        table.add_row(["SLO (ms)", report.slo_ms])
        table.add_row(["SLO attainment", report.slo_attainment])
    return table


def geometric_mean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
