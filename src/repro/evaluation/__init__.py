"""Experiment drivers that regenerate every table and figure of the paper.

Each ``figure*`` function returns a small result object with the same rows or
series the paper plots, plus a ``format_table()`` helper so benchmarks and
examples can print them.  The mapping from paper figure to driver is listed
in DESIGN.md (§4) and EXPERIMENTS.md.
"""

from repro.evaluation.report import (
    Table,
    format_generalization_table,
    format_serving_stats_table,
    format_speedup_table,
    format_task_summary_table,
)
from repro.evaluation.splits import KernelSplit, split_kernels
from repro.evaluation.comparison import (
    ComparisonRunner,
    GeneralizationMatrix,
    MethodComparison,
    SiteDecision,
    SplitComparison,
    TaskComparison,
    compare_methods,
    train_reference_agents,
    TrainedAgents,
)
from repro.evaluation.figures import (
    ActionSweepResult,
    Figure1Result,
    Figure2Result,
    FigureConvergenceResult,
    FigureCurvesResult,
    FigureComparisonResult,
    TaskComparisonFigure,
    action_sweep,
    figure1_dot_product_grid,
    figure2_bruteforce_suite,
    figure5_hyperparameter_sweep,
    figure6_action_spaces,
    figure7_main_comparison,
    figure8_polybench,
    figure9_mibench,
    figure_convergence,
    figure_task_comparison,
)

__all__ = [
    "Table",
    "format_generalization_table",
    "format_serving_stats_table",
    "format_speedup_table",
    "format_task_summary_table",
    "KernelSplit",
    "split_kernels",
    "ComparisonRunner",
    "GeneralizationMatrix",
    "MethodComparison",
    "SiteDecision",
    "SplitComparison",
    "TaskComparison",
    "compare_methods",
    "TrainedAgents",
    "train_reference_agents",
    "ActionSweepResult",
    "Figure1Result",
    "Figure2Result",
    "FigureConvergenceResult",
    "FigureCurvesResult",
    "FigureComparisonResult",
    "TaskComparisonFigure",
    "action_sweep",
    "figure_convergence",
    "figure1_dot_product_grid",
    "figure2_bruteforce_suite",
    "figure5_hyperparameter_sweep",
    "figure6_action_spaces",
    "figure7_main_comparison",
    "figure8_polybench",
    "figure9_mibench",
    "figure_task_comparison",
]
