"""Experiment drivers that regenerate every table and figure of the paper.

Each ``figure*`` function returns a small result object with the same rows or
series the paper plots, plus a ``format_table()`` helper so benchmarks and
examples can print them.  The mapping from paper figure to driver is listed
in DESIGN.md (§4) and EXPERIMENTS.md.
"""

from repro.evaluation.report import Table, format_speedup_table
from repro.evaluation.comparison import (
    MethodComparison,
    compare_methods,
    train_reference_agents,
    TrainedAgents,
)
from repro.evaluation.figures import (
    Figure1Result,
    Figure2Result,
    FigureCurvesResult,
    FigureComparisonResult,
    figure1_dot_product_grid,
    figure2_bruteforce_suite,
    figure5_hyperparameter_sweep,
    figure6_action_spaces,
    figure7_main_comparison,
    figure8_polybench,
    figure9_mibench,
)

__all__ = [
    "Table",
    "format_speedup_table",
    "MethodComparison",
    "compare_methods",
    "TrainedAgents",
    "train_reference_agents",
    "Figure1Result",
    "Figure2Result",
    "FigureCurvesResult",
    "FigureComparisonResult",
    "figure1_dot_product_grid",
    "figure2_bruteforce_suite",
    "figure5_hyperparameter_sweep",
    "figure6_action_spaces",
    "figure7_main_comparison",
    "figure8_polybench",
    "figure9_mibench",
]
