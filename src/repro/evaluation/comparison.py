"""Measuring a kernel suite under every method the paper compares.

Two layers live here:

* :class:`ComparisonRunner` / :class:`TaskComparison` — the task-generic
  protocol: any mapping of named agents x any kernel suite x any registered
  :class:`repro.tasks.OptimizationTask` produces the paper's speedup matrix
  (Figures 7-9), with every measurement routed through the run-wide reward
  cache (and sharded evaluation service, when attached) and a per-site
  decision log recording what every agent chose where.
* :func:`train_reference_agents` / :func:`compare_methods` — the original
  vectorization-specific drivers behind the Figure 7/8/9 reproductions,
  kept as-is (they bundle PPO training, brute-force labelling and the
  Polly comparison into one call).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import VectorizationAgent
from repro.agents.baseline import BaselineAgent
from repro.agents.brute_force import BruteForceAgent
from repro.agents.decision_tree import DecisionTreeAgent
from repro.agents.nns import NearestNeighborAgent
from repro.agents.policy_agent import PolicyAgent
from repro.agents.random_search import RandomSearchAgent
from repro.cache.reward_cache import RewardCache, resolve_cache
from repro.core.framework import TrainingConfig, build_embedding_model
from repro.core.loop_extractor import extract_loops
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.embedding.ast_paths import extract_path_contexts
from repro.embedding.code2vec import Code2VecModel
from repro.embedding.vocab import normalize_identifiers
from repro.machine.description import MachineDescription
from repro.polly.optimizer import PollyOptimizer
from repro.rl.env import VectorizationEnv, build_samples
from repro.rl.policy import make_policy
from repro.evaluation.splits import KernelSplit
from repro.rl.ppo import PPOConfig, PPOTrainer, TrainingHistory
from repro.tasks import OptimizationTask, resolve_task


@dataclass
class MethodComparison:
    """Speed-ups over the baseline per kernel and method (Figures 7/8/9)."""

    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    methods: List[str] = field(default_factory=list)

    def geomean(self, method: str) -> float:
        from repro.evaluation.report import geometric_mean

        values = [per.get(method, float("nan")) for per in self.speedups.values()]
        return geometric_mean([v for v in values if v == v and v > 0])

    def average(self, method: str) -> float:
        values = [
            per[method]
            for per in self.speedups.values()
            if method in per and per[method] == per[method]
        ]
        return float(np.mean(values)) if values else float("nan")


# ---------------------------------------------------------------------------
# Task-generic comparison protocol
# ---------------------------------------------------------------------------


@dataclass
class SiteDecision:
    """One agent's chosen action for one decision site (the decision log)."""

    kernel: str
    method: str
    site_index: int
    action: Tuple[int, ...]
    source_line: int = 0
    description: str = ""


@dataclass
class TaskComparison:
    """Speed-ups over the baseline per kernel and method, for one task.

    The task-generic counterpart of :class:`MethodComparison`: the same
    per-benchmark matrix the paper plots in Figures 7-9, plus the raw
    cycles, the per-site decision log, and the cache traffic the run
    generated (hits vs simulator misses), so a warm-store rerun can prove
    it recompiled nothing.
    """

    task: str
    methods: List[str] = field(default_factory=list)
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cycles: Dict[str, Dict[str, float]] = field(default_factory=dict)
    baseline_cycles: Dict[str, float] = field(default_factory=dict)
    decision_log: List[SiteDecision] = field(default_factory=list)
    #: Reward-cache traffic attributable to this run (stats deltas).
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    def geomean(self, method: str) -> float:
        from repro.evaluation.report import geometric_mean

        values = [per.get(method, float("nan")) for per in self.speedups.values()]
        return geometric_mean([v for v in values if v == v and v > 0])

    def average(self, method: str) -> float:
        values = [
            per[method]
            for per in self.speedups.values()
            if method in per and per[method] == per[method]
        ]
        return float(np.mean(values)) if values else float("nan")

    def decisions_for(self, kernel: str, method: str) -> Dict[int, Tuple[int, ...]]:
        """The per-site decision map one agent chose for one kernel."""
        return {
            entry.site_index: entry.action
            for entry in self.decision_log
            if entry.kernel == kernel and entry.method == method
        }

    def format_table(self, title: str = ""):
        """The per-benchmark speedup matrix (Figure 7/8/9 style)."""
        from repro.evaluation.report import format_speedup_table

        return format_speedup_table(
            self.speedups,
            self.methods,
            title=title or f"speedup over baseline (task: {self.task})",
        )

    def summary_table(self, title: str = ""):
        """Task-tagged per-method geomean/average summary."""
        from repro.evaluation.report import format_task_summary_table

        return format_task_summary_table(self, title=title)

    def cache_report(self, title: str = "comparison reward cache"):
        """How this run's measurements were served (hits vs simulations).

        A fully cache-served run (every reward answered by a warm store)
        reports its hits; the explicit "no evaluations" table only appears
        when the comparison genuinely measured nothing — an empty kernel
        list, not a warm cache.
        """
        from repro.evaluation.report import (
            format_comparison_cache_table,
            format_no_evaluations_table,
        )

        if self.cache_lookups == 0:
            return format_no_evaluations_table(title=title)
        return format_comparison_cache_table(self, title=title)


@dataclass
class SplitComparison:
    """One task measured on both sides of a train/test kernel split.

    ``train`` is the comparison on the kernels the policy was (or would
    be) trained on; ``test`` is the same agents on the held-out kernels.
    The gap between the two rows' geomeans is the generalization story
    the paper tells in §5: an RL geomean that survives the move to
    ``test`` means the policy learned the embedding -> action mapping
    rather than the training kernels.
    """

    task: str
    split: KernelSplit
    train: TaskComparison
    test: TaskComparison

    @property
    def sides(self) -> "OrderedDict[str, TaskComparison]":
        return OrderedDict([("train", self.train), ("test", self.test)])

    def generalization_gap(self, method: str) -> float:
        """``train geomean - test geomean`` for one method (0 is ideal)."""
        return self.train.geomean(method) - self.test.geomean(method)


@dataclass
class GeneralizationMatrix:
    """Held-out-kernel matrix: every task x {train, test} x every method.

    The return shape of ``compare_all_tasks(kernel_split=...)``: an
    ordered ``task name -> SplitComparison`` mapping plus the split that
    produced it.  Mapping-style access (``matrix["unrolling"].test``)
    reaches any cell; :meth:`format_table` renders the whole matrix as
    the two-rows-per-task table the transfer protocol reports.
    """

    split: KernelSplit
    tasks: "OrderedDict[str, SplitComparison]" = field(default_factory=OrderedDict)

    def __getitem__(self, task: str) -> SplitComparison:
        return self.tasks[task]

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def items(self):
        return self.tasks.items()

    @property
    def methods(self) -> List[str]:
        for entry in self.tasks.values():
            return list(entry.train.methods)
        return []

    def format_table(self, title: str = ""):
        from repro.evaluation.report import format_generalization_table

        return format_generalization_table(self, title=title)


class ComparisonRunner:
    """Runs agents x kernels x one task into a :class:`TaskComparison`.

    The runner owns the shared measurement plumbing: one pipeline, one
    reward cache (adopted from the ``evaluation_service`` when one is
    attached, so worker shards and in-process measurements see each other's
    results), and the task whose ``decision_sites``/``apply`` define what
    is decided and how it is measured.  Agents are passed to :meth:`run`
    by name; :meth:`default_agents` builds the training-free trio
    (baseline / random / brute force) wired to the runner's plumbing.
    """

    def __init__(
        self,
        task: Optional[OptimizationTask] = None,
        pipeline: Optional[CompileAndMeasure] = None,
        machine: Optional[MachineDescription] = None,
        embedding_model: Optional[Code2VecModel] = None,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
    ):
        self.task = resolve_task(task)
        self.evaluation_service = evaluation_service
        if evaluation_service is not None:
            # The service's workers measure under its pipeline's machine; a
            # disagreeing explicit pipeline would silently mix measurements
            # from two machines, so mirror evaluate_requests' guard here.
            # (A distinct but value-equal pipeline is fine.)
            service_pipeline = evaluation_service.pipeline
            if pipeline is None:
                pipeline = service_pipeline
            elif pipeline is not service_pipeline and (
                service_pipeline.machine != pipeline.machine
                or service_pipeline.default_symbol_value
                != pipeline.default_symbol_value
            ):
                raise ValueError(
                    "ComparisonRunner: explicit pipeline disagrees with the "
                    "evaluation service's (machine model or "
                    "default_symbol_value); build both from the same "
                    "machine description"
                )
        self.pipeline = pipeline or CompileAndMeasure(
            machine=machine or MachineDescription()
        )
        if machine is not None and machine != self.pipeline.machine:
            raise ValueError(
                "ComparisonRunner: explicit machine conflicts with the "
                "pipeline's machine; build the pipeline (or evaluation "
                "service) from that machine instead"
            )
        self.machine = self.pipeline.machine
        self.embedding_model = embedding_model
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)

    # -- agents -------------------------------------------------------------

    def default_agents(self, seed: int = 0) -> "OrderedDict[str, VectorizationAgent]":
        """The training-free reference agents, sharing this runner's plumbing."""
        agents: "OrderedDict[str, VectorizationAgent]" = OrderedDict()
        agents["baseline"] = BaselineAgent(self.pipeline, task=self.task)
        agents["random"] = RandomSearchAgent(seed=seed, task=self.task)
        agents["brute_force"] = BruteForceAgent(
            self.pipeline,
            reward_cache=self.reward_cache,
            evaluation_service=self.evaluation_service,
            task=self.task,
        )
        return agents

    def _check_agent(self, name: str, agent: VectorizationAgent) -> None:
        agent_task = getattr(agent, "task", None)
        if agent_task is not None and agent_task.name != self.task.name:
            raise ValueError(
                f"agent {name!r} decides for task {agent_task.name!r} but this "
                f"comparison runs task {self.task.name!r}; construct the agent "
                f"with task={self.task.name!r}"
            )
        if self.embedding_model is None and getattr(agent, "uses_observation", True):
            # Without an embedding model the runner can only hand agents a
            # placeholder observation; an embedding-driven agent (NNS, tree,
            # policy) would then make the same decision at every site and
            # the table would present that garbage as a real comparison.
            raise ValueError(
                f"agent {name!r} decides from the site embedding but this "
                "ComparisonRunner has no embedding_model; pass the model the "
                "agent was fitted/trained with"
            )

    # -- observations -------------------------------------------------------

    def _observation(self, site) -> np.ndarray:
        if self.embedding_model is None:
            # Only reachable for observation-ignoring agents (baseline,
            # random, brute force) — _check_agent rejects the rest.
            return np.zeros(1)
        return self.task.observation_features(site, self.embedding_model)

    # -- the protocol -------------------------------------------------------

    def run(
        self,
        agents: Mapping[str, VectorizationAgent],
        kernels: Sequence[LoopKernel],
    ) -> TaskComparison:
        """Measure every agent on every kernel under this runner's task.

        Three phases: (1) per kernel, measure the baseline once (cached)
        and let every agent decide an action per decision site (logged);
        (2) with an attached evaluation service running workers, fan the
        resulting whole-kernel applications out across the shards, so the
        comparison matrix measures in parallel; (3) apply every decision
        map through the reward cache — after phase 2 those are pure
        lookups, and serially (no workers) phase 3 simply measures inline.
        The decision sequence, decision log and every reported number are
        byte-identical between the serial and fanned-out paths.
        """
        for name, agent in agents.items():
            self._check_agent(name, agent)
        hits_before = self.reward_cache.stats.hits
        misses_before = self.reward_cache.stats.misses
        comparison = TaskComparison(task=self.task.name, methods=list(agents))

        # Phase 1: decisions.  No agent's decision depends on any apply
        # result (brute-force site sweeps route their own reward queries
        # through the shared cache/service), so every (kernel, agent)
        # decision map exists before anything is applied — which is what
        # lets phase 2 parallelize per kernel.
        plans: List[Tuple[LoopKernel, object, List[Tuple[str, Dict[int, Tuple[int, ...]]]]]] = []
        for kernel in kernels:
            baseline, _ = self.reward_cache.measure_baseline(self.pipeline, kernel)
            sites = self.task.decision_sites(kernel)
            observations = [self._observation(site) for site in sites]
            comparison.baseline_cycles[kernel.name] = baseline.cycles
            per_agent: List[Tuple[str, Dict[int, Tuple[int, ...]]]] = []
            for name, agent in agents.items():
                decisions: Dict[int, Tuple[int, ...]] = {}
                for site, observation in zip(sites, observations):
                    chosen = agent.select_factors(
                        observation, kernel=kernel, loop_index=site.index
                    )
                    action = self.task.cache_key(chosen.as_tuple())
                    decisions[site.index] = action
                    comparison.decision_log.append(
                        SiteDecision(
                            kernel=kernel.name,
                            method=name,
                            site_index=site.index,
                            action=action,
                            source_line=site.source_line,
                            description=site.description,
                        )
                    )
                per_agent.append((name, decisions))
            plans.append((kernel, baseline, per_agent))

        # Phase 2: fan the applications out across the service's worker
        # shards; their measurements land in the shared cache (including a
        # disk-backed store), making phase 3 lookup-only.  Any service with
        # ``workers``/``measure_applications`` fits — the in-process
        # EvaluationService and the multi-host FleetEvaluationService both
        # qualify, so a comparison can span machines without code changes.
        service = self.evaluation_service
        if service is not None and getattr(service, "workers", 0) > 0:
            if service.cache is not self.reward_cache:
                raise ValueError(
                    "evaluation service uses a different RewardCache than "
                    "the comparison runner; share one cache (e.g. pass "
                    "service.cache)"
                )
            service.measure_applications(
                self.task,
                [
                    (kernel, decisions)
                    for kernel, _baseline, per_agent in plans
                    for _name, decisions in per_agent
                ],
            )

        # Phase 3: the original serial apply loop, unchanged — it reports
        # exactly what the task's apply measures, whether that answer
        # comes from the warm cache (fanned-out or rerun) or is simulated
        # inline right here (serial cold run).
        for kernel, baseline, per_agent in plans:
            speedup_row: Dict[str, float] = {}
            cycles_row: Dict[str, float] = {}
            for name, decisions in per_agent:
                application = self.task.apply(
                    self.pipeline, kernel, decisions, reward_cache=self.reward_cache
                )
                cycles_row[name] = application.result.cycles
                speedup_row[name] = (
                    baseline.cycles / application.result.cycles
                    if application.result.cycles > 0
                    else float("inf")
                )
            comparison.speedups[kernel.name] = speedup_row
            comparison.cycles[kernel.name] = cycles_row
        comparison.cache_hits = self.reward_cache.stats.hits - hits_before
        comparison.cache_misses = self.reward_cache.stats.misses - misses_before
        return comparison

    def run_split(
        self,
        agents: Mapping[str, VectorizationAgent],
        kernels: Sequence[LoopKernel],
        split: KernelSplit,
        training_kernel_names: Optional[Sequence[str]] = None,
    ) -> SplitComparison:
        """:meth:`run` on both sides of a train/test kernel split.

        When the caller knows which kernels its agents actually trained
        on, passing ``training_kernel_names`` re-checks the split against
        them — a "test" side containing training kernels would report
        memorization as generalization.
        """
        if training_kernel_names is not None:
            split.assert_no_leakage(training_kernel_names)
        train_kernels, test_kernels = split.partition(kernels)
        return SplitComparison(
            task=self.task.name,
            split=split,
            train=self.run(agents, train_kernels),
            test=self.run(agents, test_kernels),
        )


@dataclass
class TrainedAgents:
    """Everything produced by :func:`train_reference_agents`."""

    embedding_model: Code2VecModel
    pipeline: CompileAndMeasure
    rl_agent: PolicyAgent
    nns_agent: NearestNeighborAgent
    tree_agent: DecisionTreeAgent
    random_agent: RandomSearchAgent
    brute_force_agent: BruteForceAgent
    history: TrainingHistory
    training_samples: int = 0
    reward_cache: Optional[RewardCache] = None


def _embed_loop(embedding_model: Code2VecModel, loop) -> np.ndarray:
    rename_map = normalize_identifiers(loop.nest_root)
    contexts = extract_path_contexts(loop.nest_root, rename_map=rename_map)
    return embedding_model.embed(contexts)


def train_reference_agents(
    train_kernels: Sequence[LoopKernel],
    machine: Optional[MachineDescription] = None,
    rl_steps: int = 1500,
    rl_batch_size: int = 150,
    learning_rate: float = 5e-4,
    label_kernels: Optional[Sequence[LoopKernel]] = None,
    pretrain_epochs: int = 1,
    seed: int = 0,
    reward_cache: Optional[RewardCache] = None,
    evaluation_service=None,
) -> TrainedAgents:
    """Train the RL policy and fit NNS / decision tree on brute-force labels.

    This is the shared setup for Figures 7, 8 and 9: pretrain the embedding
    on loop properties, train PPO once on the synthetic corpus, then evaluate
    the frozen agents on held-out suites.  ``label_kernels`` defaults to the
    training kernels (the paper also limits the brute-force labelling to a
    5,000-sample subset for cost reasons).

    Pass an ``evaluation_service`` (see :mod:`repro.distributed`) to shard
    reward evaluation across worker processes and/or persist it to disk; the
    service's pipeline and cache take over as the run-wide instances.
    """
    if evaluation_service is not None:
        # The service's pipeline (and its machine model) take over; a
        # conflicting explicit machine would silently measure everything
        # under the wrong model, so reject it.
        pipeline = evaluation_service.pipeline
        if machine is not None and machine is not pipeline.machine:
            raise ValueError(
                "train_reference_agents: explicit machine conflicts with the "
                "evaluation service's pipeline machine; build the service "
                "from a pipeline using that machine instead"
            )
        machine = pipeline.machine
        if reward_cache is None:
            reward_cache = evaluation_service.cache
    else:
        machine = machine or MachineDescription()
        pipeline = CompileAndMeasure(machine=machine)
    embedding_model = build_embedding_model(train_kernels)

    if pretrain_epochs > 0:
        _pretrain_embedding(
            embedding_model, train_kernels, pipeline, pretrain_epochs, seed
        )

    # One measurement cache for the whole comparison: PPO rollouts and the
    # brute-force labelling sweep share each other's evaluations.
    if reward_cache is None:
        reward_cache = RewardCache()
    samples = build_samples(train_kernels, embedding_model, pipeline)
    env = VectorizationEnv(
        samples,
        pipeline=pipeline,
        seed=seed,
        reward_cache=reward_cache,
        evaluation_service=evaluation_service,
    )
    policy = make_policy("discrete", env.observation_dim, seed=seed)
    trainer = PPOTrainer(
        env,
        policy,
        PPOConfig(learning_rate=learning_rate, train_batch_size=rl_batch_size,
                  minibatch_size=min(64, rl_batch_size), epochs_per_batch=6),
    )
    history = trainer.train(rl_steps, batch_size=rl_batch_size)
    rl_agent = PolicyAgent(policy)

    # Brute-force labels for the supervised methods.
    brute = BruteForceAgent(
        pipeline, reward_cache=reward_cache, evaluation_service=evaluation_service
    )
    label_kernels = list(label_kernels) if label_kernels is not None else list(train_kernels)
    embeddings: List[np.ndarray] = []
    labels: List[Tuple[int, int]] = []
    for kernel in label_kernels:
        try:
            loops = extract_loops(kernel.source, function_name=kernel.function_name)
        except Exception:
            continue
        for loop in loops:
            observation = _embed_loop(embedding_model, loop)
            decision = brute.select_factors(observation, kernel, loop.loop_index)
            embeddings.append(observation)
            labels.append(decision.as_tuple())
    nns_agent = NearestNeighborAgent(k=1)
    tree_agent = DecisionTreeAgent(max_depth=8, seed=seed)
    if embeddings:
        stacked = np.stack(embeddings)
        nns_agent.fit(stacked, labels)
        tree_agent.fit(stacked, labels)

    return TrainedAgents(
        embedding_model=embedding_model,
        pipeline=pipeline,
        rl_agent=rl_agent,
        nns_agent=nns_agent,
        tree_agent=tree_agent,
        # The paper's plain uniform-random baseline: one draw, no measuring,
        # so it takes no cache (best-of-N mode is opt-in via candidates>1).
        random_agent=RandomSearchAgent(seed=seed),
        brute_force_agent=brute,
        history=history,
        training_samples=len(samples),
        reward_cache=reward_cache,
    )


def _pretrain_embedding(
    embedding_model: Code2VecModel,
    kernels: Sequence[LoopKernel],
    pipeline: CompileAndMeasure,
    epochs: int,
    seed: int,
) -> None:
    """Self-supervised pretraining on loop-property labels (see DESIGN.md)."""
    from repro.analysis.loopinfo import analyze_loop
    from repro.embedding.pretrain import Code2VecPretrainer, loop_property_labels

    bags, labels = [], []
    for kernel in kernels:
        try:
            loops = extract_loops(kernel.source, function_name=kernel.function_name)
            ir_function = pipeline.lower_kernel(kernel)
            ir_loops = ir_function.innermost_loops()
        except Exception:
            continue
        for loop in loops:
            if loop.loop_index >= len(ir_loops):
                continue
            rename_map = normalize_identifiers(loop.nest_root)
            bags.append(extract_path_contexts(loop.nest_root, rename_map=rename_map))
            labels.append(
                loop_property_labels(analyze_loop(ir_function, ir_loops[loop.loop_index]))
            )
    if bags:
        Code2VecPretrainer(embedding_model, seed=seed).train(bags, labels, epochs=epochs)


def _measure_with_agent(
    pipeline: CompileAndMeasure,
    embedding_model: Code2VecModel,
    kernel: LoopKernel,
    agent: VectorizationAgent,
) -> float:
    """Cycles when ``agent`` decides the factors of every innermost loop."""
    loops = extract_loops(kernel.source, function_name=kernel.function_name)
    factors: Dict[int, Tuple[int, int]] = {}
    for loop in loops:
        observation = _embed_loop(embedding_model, loop)
        decision = agent.select_factors(observation, kernel=kernel,
                                        loop_index=loop.loop_index)
        factors[loop.loop_index] = decision.as_tuple()
    return pipeline.measure_with_factors(kernel, factors).cycles


def compare_methods(
    kernels: Sequence[LoopKernel],
    trained: TrainedAgents,
    include_polly: bool = True,
    include_supervised: bool = True,
    include_combined: bool = False,
    polly_optimizer: Optional[PollyOptimizer] = None,
) -> MethodComparison:
    """Speed-ups over the baseline for every method on every kernel."""
    pipeline = trained.pipeline
    embedding_model = trained.embedding_model
    polly = polly_optimizer or PollyOptimizer()

    methods = ["baseline", "random"]
    if include_polly:
        methods.append("polly")
    if include_supervised:
        methods.extend(["nns", "decision_tree"])
    methods.extend(["rl", "brute_force"])
    if include_combined:
        methods.append("polly+rl")

    comparison = MethodComparison(methods=methods)
    for kernel in kernels:
        baseline = pipeline.measure_baseline(kernel)
        row: Dict[str, float] = {"baseline": 1.0}
        row["random"] = baseline.cycles / _measure_with_agent(
            pipeline, embedding_model, kernel, trained.random_agent
        )
        if include_polly:
            transformed = polly.optimize(pipeline.lower_kernel(kernel))
            row["polly"] = baseline.cycles / pipeline.measure_function(
                kernel, transformed
            ).cycles
        if include_supervised:
            row["nns"] = baseline.cycles / _measure_with_agent(
                pipeline, embedding_model, kernel, trained.nns_agent
            )
            row["decision_tree"] = baseline.cycles / _measure_with_agent(
                pipeline, embedding_model, kernel, trained.tree_agent
            )
        row["rl"] = baseline.cycles / _measure_with_agent(
            pipeline, embedding_model, kernel, trained.rl_agent
        )
        row["brute_force"] = baseline.cycles / _measure_with_agent(
            pipeline, embedding_model, kernel, trained.brute_force_agent
        )
        if include_combined:
            transformed = polly.optimize(pipeline.lower_kernel(kernel))
            loops = extract_loops(kernel.source, function_name=kernel.function_name)
            factors: Dict[int, Tuple[int, int]] = {}
            for loop in loops:
                observation = _embed_loop(embedding_model, loop)
                decision = trained.rl_agent.select_factors(
                    observation, kernel=kernel, loop_index=loop.loop_index
                )
                factors[loop.loop_index] = decision.as_tuple()
            row["polly+rl"] = baseline.cycles / pipeline.measure_function(
                kernel, transformed, factors
            ).cycles
        comparison.speedups[kernel.name] = row
    return comparison
