"""Seed-stable train/test kernel splits for generalization evaluation.

The paper's core claim is that one learned policy transfers to kernels it
never trained on; proving that requires a split whose membership cannot
drift between the training process and the evaluation process.  Ranking
kernels by ``sha256(f"{seed}|{name}")`` gives exactly that: the same seed
and kernel names produce the same split in every process, interpreter and
``PYTHONHASHSEED`` (unlike the built-in ``hash``), and changing the seed
reshuffles the assignment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple


def _kernel_name(kernel) -> str:
    """A kernel's name — entries may be kernel objects or bare name strings."""
    return str(getattr(kernel, "name", kernel))


def _rank(seed: int, name: str) -> str:
    """The kernel's process-stable sort key within one seed's shuffle."""
    return hashlib.sha256(f"{seed}|{name}".encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class KernelSplit:
    """A disjoint train/test partition of a kernel suite, by kernel name.

    Immutable and name-based so it can be recorded by a training run,
    passed between processes, and re-applied to the same suite later; the
    constructor rejects overlap and duplicates so no split with leakage
    can exist.
    """

    train: Tuple[str, ...]
    test: Tuple[str, ...]
    seed: int = 0

    def __post_init__(self):
        train = tuple(str(name) for name in self.train)
        test = tuple(str(name) for name in self.test)
        object.__setattr__(self, "train", train)
        object.__setattr__(self, "test", test)
        if not train:
            raise ValueError("a kernel split needs at least one training kernel")
        if not test:
            raise ValueError("a kernel split needs at least one held-out kernel")
        if len(set(train)) != len(train) or len(set(test)) != len(test):
            raise ValueError("kernel split contains duplicate kernel names")
        overlap = set(train) & set(test)
        if overlap:
            raise ValueError(
                f"kernel split leaks: {sorted(overlap)} appear in both the "
                "train and test sides"
            )

    @property
    def names(self) -> Tuple[str, ...]:
        """Every kernel name the split covers (train then test)."""
        return self.train + self.test

    def partition(self, kernels: Sequence) -> Tuple[List, List]:
        """Split ``kernels`` into (train, test) lists, preserving order.

        Every kernel must belong to one side — a kernel the split never
        assigned would otherwise silently vanish from the comparison.
        """
        train_side, test_side = [], []
        train_names, test_names = set(self.train), set(self.test)
        unknown = []
        for kernel in kernels:
            name = _kernel_name(kernel)
            if name in train_names:
                train_side.append(kernel)
            elif name in test_names:
                test_side.append(kernel)
            else:
                unknown.append(name)
        if unknown:
            raise ValueError(
                f"kernels {unknown} are not covered by this split "
                f"(train: {list(self.train)}, test: {list(self.test)})"
            )
        return train_side, test_side

    def assert_no_leakage(self, training_kernel_names: Sequence[str]) -> None:
        """Reject a run whose training kernels overlap this split's test side.

        A generalization matrix computed over kernels the policy trained
        on would present memorization as transfer; fail loudly instead.
        """
        overlap = set(self.test) & {str(name) for name in training_kernel_names}
        if overlap:
            raise ValueError(
                f"held-out kernels {sorted(overlap)} overlap the run's "
                "training kernels; the test side of a generalization "
                "matrix must be disjoint from what the policy trained on"
            )

    @classmethod
    def from_holdout(
        cls, kernels: Sequence, test_names: Sequence[str], seed: int = 0
    ) -> "KernelSplit":
        """A split with an explicitly named test side over ``kernels``."""
        names = [_kernel_name(kernel) for kernel in kernels]
        if len(set(names)) != len(names):
            raise ValueError("kernel suite contains duplicate names; cannot split")
        held_out = {str(name) for name in test_names}
        missing = held_out - set(names)
        if missing:
            raise ValueError(
                f"holdout kernels {sorted(missing)} are not in the suite "
                f"({names})"
            )
        return cls(
            train=tuple(name for name in names if name not in held_out),
            test=tuple(name for name in names if name in held_out),
            seed=seed,
        )


def split_kernels(
    kernels: Sequence, test_fraction: float = 0.25, seed: int = 0
) -> KernelSplit:
    """Partition a kernel suite into a seed-stable train/test split.

    Kernels are ranked by ``sha256(f"{seed}|{name}")`` and the first
    ``test_fraction`` of the ranking is held out (at least one kernel on
    each side), so the split depends only on the seed and the kernel
    names — identical across processes and interpreter restarts.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(
            f"test_fraction must be strictly between 0 and 1, got {test_fraction}"
        )
    names = [_kernel_name(kernel) for kernel in kernels]
    if len(set(names)) != len(names):
        raise ValueError("kernel suite contains duplicate names; cannot split")
    if len(names) < 2:
        raise ValueError(
            "splitting needs at least 2 kernels (one per side); "
            f"got {len(names)}"
        )
    ranked = sorted(names, key=lambda name: _rank(seed, name))
    test_count = min(len(names) - 1, max(1, int(round(test_fraction * len(names)))))
    held_out = set(ranked[:test_count])
    return KernelSplit(
        train=tuple(name for name in names if name not in held_out),
        test=tuple(name for name in names if name in held_out),
        seed=seed,
    )
