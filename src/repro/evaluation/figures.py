"""One driver per figure of the paper's evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import KernelSuite, LoopKernel
from repro.datasets.llvm_suite import llvm_vectorizer_suite, test_benchmarks
from repro.datasets.mibench import mibench_suite
from repro.datasets.motivating import dot_product_kernel
from repro.datasets.polybench import polybench_suite
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.evaluation.comparison import (
    MethodComparison,
    TaskComparison,
    TrainedAgents,
    compare_methods,
    train_reference_agents,
)
from repro.evaluation.report import Table, format_speedup_table
from repro.machine.description import MachineDescription
from repro.rl.tune import ExperimentResult, run_experiments
from repro.simulator.engine import Simulator
from repro.vectorizer.bruteforce import brute_force_search
from repro.vectorizer.cost_model import BaselineCostModel


# ---------------------------------------------------------------------------
# Figure 1: dot-product (VF, IF) sweep
# ---------------------------------------------------------------------------


@dataclass
class Figure1Result:
    """Speed-up over the baseline for every (VF, IF) pair of the dot product."""

    grid: Dict[Tuple[int, int], float]
    baseline_factors: Tuple[int, int]
    best_factors: Tuple[int, int]
    best_speedup: float
    fraction_better_than_baseline: float

    def format_table(self) -> Table:
        vfs = sorted({vf for vf, _ in self.grid})
        ifs = sorted({interleave for _, interleave in self.grid})
        table = Table(
            headers=["VF \\ IF"] + [str(i) for i in ifs],
            title="Figure 1: dot product speedup over the LLVM baseline "
            f"(baseline chose VF={self.baseline_factors[0]}, "
            f"IF={self.baseline_factors[1]})",
        )
        for vf in vfs:
            table.add_row([str(vf)] + [self.grid[(vf, i)] for i in ifs])
        return table


def figure1_dot_product_grid(
    machine: Optional[MachineDescription] = None,
) -> Figure1Result:
    """Regenerate Figure 1: brute-force sweep of the motivating kernel."""
    machine = machine or MachineDescription()
    kernel = dot_product_kernel()
    pipeline = CompileAndMeasure(machine=machine)
    ir_function = pipeline.lower_kernel(kernel)
    baseline_decision = pipeline.baseline_model.decide_loop(
        ir_function, ir_function.innermost_loops()[0]
    )
    simulator = Simulator(machine=machine, bindings=kernel.bindings)
    result = brute_force_search(ir_function, machine=machine, simulator=simulator)
    loop = ir_function.innermost_loops()[0]
    grid = result.grid_speedups(loop)
    best_factors = result.best_factors[loop.loop_id]
    better = sum(1 for value in grid.values() if value >= 1.0)
    return Figure1Result(
        grid=grid,
        baseline_factors=(baseline_decision.vf, baseline_decision.interleave),
        best_factors=best_factors,
        best_speedup=max(grid.values()),
        fraction_better_than_baseline=better / len(grid),
    )


# ---------------------------------------------------------------------------
# Figure 2: brute-force vs baseline on the vectorizer test-suite
# ---------------------------------------------------------------------------


@dataclass
class Figure2Result:
    """Best achievable speed-up over the baseline per test-suite kernel."""

    speedups: Dict[str, float]

    @property
    def average(self) -> float:
        return float(np.mean(list(self.speedups.values())))

    @property
    def maximum(self) -> float:
        return float(max(self.speedups.values()))

    def format_table(self) -> Table:
        table = Table(
            headers=["kernel", "brute-force / baseline"],
            title="Figure 2: headroom over the baseline cost model",
        )
        for name, value in self.speedups.items():
            table.add_row([name, value])
        table.add_row(["average", self.average])
        return table


def figure2_bruteforce_suite(
    machine: Optional[MachineDescription] = None,
    suite: Optional[KernelSuite] = None,
) -> Figure2Result:
    """Regenerate Figure 2 over the LLVM-vectorizer-style kernel bank."""
    machine = machine or MachineDescription()
    suite = suite or llvm_vectorizer_suite()
    speedups: Dict[str, float] = {}
    for kernel in suite:
        ir_function = kernel.lower()
        simulator = Simulator(machine=machine, bindings=kernel.bindings)
        result = brute_force_search(ir_function, machine=machine, simulator=simulator)
        speedups[kernel.name] = result.speedup_over_baseline()
    return Figure2Result(speedups=speedups)


# ---------------------------------------------------------------------------
# Figures 5 and 6: training curves
# ---------------------------------------------------------------------------


@dataclass
class FigureCurvesResult:
    """Reward-mean and loss curves per swept configuration."""

    experiments: List[ExperimentResult]

    def reward_curves(self) -> Dict[str, List[float]]:
        return {e.name: e.history.reward_curve() for e in self.experiments}

    def loss_curves(self) -> Dict[str, List[float]]:
        return {e.name: e.history.loss_curve() for e in self.experiments}

    def final_rewards(self) -> Dict[str, float]:
        return {e.name: e.history.final_reward_mean for e in self.experiments}

    def best_configuration(self) -> str:
        return max(self.experiments, key=lambda e: e.history.final_reward_mean).name

    def format_table(self, title: str) -> Table:
        table = Table(headers=["configuration", "final reward mean", "best reward mean"],
                      title=title)
        for experiment in self.experiments:
            table.add_row(
                [
                    experiment.name,
                    experiment.history.final_reward_mean,
                    experiment.history.best_reward_mean,
                ]
            )
        return table


def _make_training_environment(
    train_count: int, seed: int, machine: Optional[MachineDescription]
):
    """Build an env factory over a synthetic corpus (shared by Figures 5/6).

    The factory accepts an optional ``tasks=`` keyword (a tuple of
    registered task names) so :func:`repro.rl.tune.run_experiments` grids
    can sweep single-task vs joint multi-task configurations; per-task
    samples are built lazily and memoised across experiments.
    """
    from repro.core.framework import build_embedding_model
    from repro.rl.env import MultiTaskEnv, VectorizationEnv, build_samples
    from repro.tasks import resolve_task

    machine = machine or MachineDescription()
    kernels = list(
        generate_synthetic_dataset(SyntheticDatasetConfig(count=train_count, seed=seed))
    )
    pipeline = CompileAndMeasure(machine=machine)
    embedding_model = build_embedding_model(kernels)
    samples = build_samples(kernels, embedding_model, pipeline)
    sample_memo = {"vectorization": samples}

    def lane_samples(task):
        if task.name not in sample_memo:
            sample_memo[task.name] = build_samples(
                kernels, embedding_model, pipeline, task=task
            )
        return sample_memo[task.name]

    def make_env(tasks=None):
        if not tasks:
            return VectorizationEnv(samples, pipeline=pipeline, seed=seed)
        task_objects = [resolve_task(name) for name in tasks]
        return MultiTaskEnv(
            task_objects,
            {task.name: lane_samples(task) for task in task_objects},
            pipeline=pipeline,
            seed=seed,
        )

    return make_env


def figure5_hyperparameter_sweep(
    total_steps: int = 600,
    train_count: int = 40,
    learning_rates: Sequence[float] = (5e-5, 5e-4, 5e-3),
    hidden_sizes: Sequence[Tuple[int, ...]] = ((32, 32), (64, 64), (128, 128)),
    batch_sizes: Sequence[int] = (100, 200, 400),
    machine: Optional[MachineDescription] = None,
    seed: int = 0,
) -> Dict[str, FigureCurvesResult]:
    """Regenerate Figure 5: sweeps over learning rate, FCNN width, batch size.

    The paper sweeps {5e-5, 5e-4, 5e-3}, {32x32, 64x64, 128x128} and
    {500, 1000, 4000} over up to 500k steps; the defaults here are scaled to
    CI budgets but keep the same axes and relative ordering.
    """
    from repro.rl.ppo import PPOConfig

    make_env = _make_training_environment(train_count, seed, machine)
    # The learning-rate and architecture sweeps fix the batch size at a value
    # that yields several training iterations within the reduced step budget
    # (the paper's curves likewise have many iterations per configuration).
    base = PPOConfig(
        train_batch_size=max(50, min(200, total_steps // 4)),
        minibatch_size=64,
        epochs_per_batch=6,
    )
    results: Dict[str, FigureCurvesResult] = {}
    results["learning_rate"] = FigureCurvesResult(
        run_experiments(
            make_env, {"learning_rate": list(learning_rates)}, total_steps,
            base_config=base, seed=seed,
        )
    )
    results["fcnn_architecture"] = FigureCurvesResult(
        run_experiments(
            make_env, {"hidden_sizes": list(hidden_sizes),
                       "learning_rate": [5e-4]}, total_steps,
            base_config=base, seed=seed,
        )
    )
    results["batch_size"] = FigureCurvesResult(
        run_experiments(
            make_env,
            {"train_batch_size": list(batch_sizes), "learning_rate": [5e-4]},
            total_steps,
            base_config=base,
            seed=seed,
        )
    )
    return results


def figure6_action_spaces(
    total_steps: int = 600,
    train_count: int = 40,
    machine: Optional[MachineDescription] = None,
    seed: int = 0,
) -> FigureCurvesResult:
    """Regenerate Figure 6: discrete vs 1-continuous vs 2-continuous actions."""
    make_env = _make_training_environment(train_count, seed, machine)
    experiments = run_experiments(
        make_env,
        {"policy": ["discrete", "continuous1", "continuous2"],
         "learning_rate": [5e-4]},
        total_steps,
        seed=seed,
    )
    return FigureCurvesResult(experiments)


# ---------------------------------------------------------------------------
# Figures 7, 8, 9: method comparisons on held-out suites
# ---------------------------------------------------------------------------


@dataclass
class FigureComparisonResult:
    """Per-benchmark speed-ups over the baseline for each method."""

    comparison: MethodComparison
    title: str

    def format_table(self) -> Table:
        return format_speedup_table(
            self.comparison.speedups, self.comparison.methods, title=self.title
        )

    def average(self, method: str) -> float:
        return self.comparison.average(method)

    def geomean(self, method: str) -> float:
        return self.comparison.geomean(method)


def _default_trained_agents(
    train_count: int,
    rl_steps: int,
    machine: Optional[MachineDescription],
    seed: int,
) -> TrainedAgents:
    """Training corpus: synthetic loops plus the vectorizer-suite kernels that
    are *not* part of the held-out 12 test benchmarks (the paper's training
    set is likewise generated from the LLVM vectorizer tests)."""
    kernels = list(
        generate_synthetic_dataset(SyntheticDatasetConfig(count=train_count, seed=seed))
    )
    held_out = set(test_benchmarks().names())
    kernels.extend(k for k in llvm_vectorizer_suite() if k.name not in held_out)
    return train_reference_agents(
        kernels, machine=machine, rl_steps=rl_steps, seed=seed
    )


def figure7_main_comparison(
    trained: Optional[TrainedAgents] = None,
    train_count: int = 60,
    rl_steps: int = 1200,
    machine: Optional[MachineDescription] = None,
    seed: int = 0,
) -> FigureComparisonResult:
    """Regenerate Figure 7: baseline / random / Polly / NNS / decision tree /
    RL / brute force on the 12 held-out test benchmarks."""
    trained = trained or _default_trained_agents(train_count, rl_steps, machine, seed)
    comparison = compare_methods(
        list(test_benchmarks()), trained, include_polly=True, include_supervised=True
    )
    return FigureComparisonResult(
        comparison=comparison,
        title="Figure 7: performance normalised to the baseline cost model",
    )


def figure8_polybench(
    trained: Optional[TrainedAgents] = None,
    train_count: int = 60,
    rl_steps: int = 1200,
    machine: Optional[MachineDescription] = None,
    seed: int = 0,
) -> FigureComparisonResult:
    """Regenerate Figure 8: baseline / Polly / RL (+ combined) on PolyBench."""
    trained = trained or _default_trained_agents(train_count, rl_steps, machine, seed)
    comparison = compare_methods(
        list(polybench_suite()),
        trained,
        include_polly=True,
        include_supervised=False,
        include_combined=True,
    )
    return FigureComparisonResult(
        comparison=comparison,
        title="Figure 8: PolyBench, performance normalised to the baseline",
    )


def figure9_mibench(
    trained: Optional[TrainedAgents] = None,
    train_count: int = 60,
    rl_steps: int = 1200,
    machine: Optional[MachineDescription] = None,
    seed: int = 0,
) -> FigureComparisonResult:
    """Regenerate Figure 9: baseline / Polly / RL on MiBench-like programs."""
    trained = trained or _default_trained_agents(train_count, rl_steps, machine, seed)
    comparison = compare_methods(
        list(mibench_suite()),
        trained,
        include_polly=True,
        include_supervised=False,
    )
    return FigureComparisonResult(
        comparison=comparison,
        title="Figure 9: MiBench, performance normalised to the baseline",
    )


# ---------------------------------------------------------------------------
# Convergence curves: per-configuration / per-task reward over training
# ---------------------------------------------------------------------------


@dataclass
class FigureConvergenceResult:
    """Reward-convergence curves per configuration and per task.

    The Figure 5/6 plot data generalized to joint training: for every
    configuration there is the joint reward-mean curve plus one curve per
    task id seen during training (for a single-task run, that one task's
    curve equals the joint curve).  ``curves`` maps ``configuration ->
    curve name -> reward means``; ``"joint"`` is the overall curve.
    """

    curves: Dict[str, Dict[str, List[float]]]
    steps: Dict[str, List[int]]

    def configurations(self) -> List[str]:
        return list(self.curves)

    def reward_curve(self, configuration: str, task: Optional[str] = None) -> List[float]:
        """One configuration's joint curve, or one of its task curves."""
        return self.curves[configuration]["joint" if task is None else task]

    def format_table(self, title: str = "reward convergence") -> Table:
        table = Table(
            headers=["configuration", "curve", "iterations", "first", "best",
                     "final"],
            title=title,
        )
        for configuration, curve_map in self.curves.items():
            for curve_name, rewards in curve_map.items():
                finite = [value for value in rewards if value == value]
                table.add_row(
                    [
                        configuration,
                        curve_name,
                        len(rewards),
                        finite[0] if finite else float("nan"),
                        max(finite) if finite else float("nan"),
                        finite[-1] if finite else float("nan"),
                    ]
                )
        return table


def figure_convergence(results) -> FigureConvergenceResult:
    """Render per-configuration/per-task reward curves from training runs.

    ``results`` is whatever holds the histories: a single
    :class:`~repro.rl.ppo.TrainingHistory`, a ``name -> TrainingHistory``
    mapping, or the :class:`~repro.rl.tune.ExperimentResult` list that
    :func:`repro.rl.tune.run_experiments` returns — so one driver plots
    both a single joint run and a whole Figure-5/6-style sweep.
    """
    from repro.rl.ppo import TrainingHistory

    if isinstance(results, TrainingHistory):
        items = [("default", results)]
    elif isinstance(results, dict):
        items = list(results.items())
    else:
        items = [(result.name, result.history) for result in results]
    curves: Dict[str, Dict[str, List[float]]] = {}
    steps: Dict[str, List[int]] = {}
    for name, history in items:
        curve_map: Dict[str, List[float]] = {"joint": history.reward_curve()}
        for task_name in history.task_names():
            curve_map[task_name] = history.reward_curve(task=task_name)
        curves[name] = curve_map
        steps[name] = history.steps()
    return FigureConvergenceResult(curves=curves, steps=steps)


# ---------------------------------------------------------------------------
# Task-generic drivers: the same figures over any registered task
# ---------------------------------------------------------------------------


@dataclass
class ActionSweepResult:
    """Speed-up over the baseline for every menu action at one site.

    The Figure-1 grid generalised over a task's own action menus: the (VF,
    IF) matrix for vectorization, the (tile, fuse) matrix for Polly tiling,
    a single unroll column for the unrolling task.  ``format_table``
    renders a matrix for two-dimensional menus and a flat list otherwise,
    with the axes labelled by the task's ``action_labels`` — nothing here
    assumes VF/IF.
    """

    task: str
    action_labels: Tuple[str, ...]
    menus: Tuple[Tuple[int, ...], ...]
    kernel: str
    site_index: int
    grid: Dict[Tuple[int, ...], float]
    baseline_cycles: float

    @property
    def best_action(self) -> Tuple[int, ...]:
        return max(self.grid, key=lambda action: self.grid[action])

    @property
    def best_speedup(self) -> float:
        return max(self.grid.values())

    @property
    def fraction_better_than_baseline(self) -> float:
        better = sum(1 for value in self.grid.values() if value >= 1.0)
        return better / len(self.grid) if self.grid else 0.0

    def format_table(self, title: str = "") -> Table:
        title = title or (
            f"action sweep (task: {self.task}, kernel: {self.kernel}, "
            f"site #{self.site_index})"
        )
        if len(self.menus) == 2:
            first, second = self.menus
            table = Table(
                headers=[f"{self.action_labels[0]} \\ {self.action_labels[1]}"]
                + [str(value) for value in second],
                title=title,
            )
            for row_value in first:
                table.add_row(
                    [str(row_value)]
                    + [self.grid[(row_value, col_value)] for col_value in second]
                )
            return table
        table = Table(
            headers=list(self.action_labels) + ["speedup over baseline"],
            title=title,
        )
        for action in sorted(self.grid):
            table.add_row([str(value) for value in action] + [self.grid[action]])
        return table


def action_sweep(
    kernel: LoopKernel,
    task=None,
    site_index: int = 0,
    pipeline: Optional[CompileAndMeasure] = None,
    reward_cache=None,
    evaluation_service=None,
) -> ActionSweepResult:
    """Sweep a task's whole action menu on one decision site (Figure 1 style).

    Every measurement routes through :func:`repro.cache.evaluate_requests`,
    so a shared cache and/or a sharded evaluation service serve repeats and
    parallelise the grid exactly as in training.
    """
    from repro.cache.reward_cache import evaluate_requests, resolve_cache
    from repro.tasks import resolve_task

    task = resolve_task(task)
    if pipeline is None and evaluation_service is not None:
        pipeline = evaluation_service.pipeline
    # An explicit pipeline disagreeing with the service's is rejected by
    # evaluate_requests below — never silently overridden.
    pipeline = pipeline or CompileAndMeasure()
    reward_cache = resolve_cache(reward_cache, evaluation_service)
    baseline, _ = reward_cache.measure_baseline(pipeline, kernel)
    actions = task.action_space("discrete").all_actions()
    outcomes = evaluate_requests(
        pipeline,
        reward_cache,
        [(kernel, site_index, action) for action in actions],
        service=evaluation_service,
        task=task,
    )
    grid = {
        action: (
            baseline.cycles / outcome.measurement.cycles
            if outcome.measurement.cycles > 0
            else float("inf")
        )
        for action, outcome in zip(actions, outcomes)
    }
    return ActionSweepResult(
        task=task.name,
        action_labels=task.action_labels,
        menus=task.menus,
        kernel=kernel.name,
        site_index=site_index,
        grid=grid,
        baseline_cycles=baseline.cycles,
    )


@dataclass
class TaskComparisonFigure:
    """A Figure 7/8/9-style comparison rendered for one task."""

    comparison: "TaskComparison"
    title: str

    def format_table(self) -> Table:
        return self.comparison.format_table(title=self.title)

    def summary_table(self) -> Table:
        return self.comparison.summary_table()

    def average(self, method: str) -> float:
        return self.comparison.average(method)

    def geomean(self, method: str) -> float:
        return self.comparison.geomean(method)


def figure_task_comparison(
    kernels: Sequence[LoopKernel],
    task=None,
    agents=None,
    machine: Optional[MachineDescription] = None,
    embedding_model=None,
    reward_cache=None,
    evaluation_service=None,
    seed: int = 0,
    title: str = "",
) -> TaskComparisonFigure:
    """Render the paper's agent-vs-baseline comparison for any task.

    ``agents`` is a name → agent mapping; when omitted the training-free
    trio (baseline / random / brute force) runs, which is enough to bound
    any learned agent from below and above.  Pass a trained
    :class:`repro.agents.policy_agent.PolicyAgent` (plus the embedding it
    was trained with) to reproduce the full figure.
    """
    from repro.evaluation.comparison import ComparisonRunner

    runner = ComparisonRunner(
        task=task,
        machine=machine,
        embedding_model=embedding_model,
        reward_cache=reward_cache,
        evaluation_service=evaluation_service,
    )
    comparison = runner.run(agents or runner.default_agents(seed=seed), kernels)
    return TaskComparisonFigure(
        comparison=comparison,
        title=title
        or f"performance normalised to the baseline (task: {comparison.task})",
    )
