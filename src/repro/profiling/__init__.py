"""Phase timers for the training hot paths.

A :class:`PhaseTimer` accumulates wall-clock time into named scopes.
Scopes nest: entering ``evaluate`` inside ``update`` records under the
path ``update/evaluate``, and the report table indents children under
their parents so a training step reads as a tree of where the time went.

Two ways to use it:

* Explicitly, threading a timer through code that should stay
  import-light (the PPO trainer holds an optional ``profiler``)::

      timer = PhaseTimer()
      with timer.scope("update"):
          with timer.scope("backward"):
              ...
      print(timer.report())

* Through the module-level :func:`phase_timer` context manager, which
  reuses the innermost active timer (so library code can annotate scopes
  without ever seeing the timer object)::

      with phase_timer("update") as timer:   # creates + activates a timer
          with phase_timer("backward"):       # nests under "update"
              ...
      print(timer.report())

Timing overhead is two ``perf_counter`` calls and a dict update per
scope; code on byte-identity-guarded paths only enters scopes when a
profiler is attached, so the unprofiled paths pay nothing.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["PhaseTimer", "phase_timer", "active_timer"]

_state = threading.local()


def active_timer() -> Optional["PhaseTimer"]:
    """The innermost timer activated by :func:`phase_timer`, if any."""
    stack = getattr(_state, "timers", None)
    return stack[-1] if stack else None


class PhaseTimer:
    """Accumulates wall-clock seconds into nested, named scopes."""

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._stack: List[str] = []

    # -- recording -----------------------------------------------------------

    @contextlib.contextmanager
    def scope(self, name: str) -> Iterator["PhaseTimer"]:
        """Time a scope; nested scopes record under ``parent/child`` paths."""
        path = "/".join(self._stack + [str(name)])
        self._stack.append(str(name))
        started = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - started
            self._stack.pop()
            self.totals[path] = self.totals.get(path, 0.0) + elapsed
            self.counts[path] = self.counts.get(path, 0) + 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Record pre-measured time (for code that cannot hold a scope open)."""
        path = "/".join(self._stack + [str(name)])
        self.totals[path] = self.totals.get(path, 0.0) + float(seconds)
        self.counts[path] = self.counts.get(path, 0) + int(count)

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    # -- reading -------------------------------------------------------------

    def seconds(self, path: str) -> float:
        """Total seconds recorded under ``path`` (0.0 when never entered)."""
        return self.totals.get(path, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """A flat ``path -> seconds`` mapping (stable insertion order)."""
        return dict(self.totals)

    def _rows(self) -> List[Tuple[str, float, int]]:
        return [
            (path, self.totals[path], self.counts.get(path, 0))
            for path in sorted(self.totals)
        ]

    def report(self, title: str = "phase timings") -> str:
        """A per-run report table: one row per scope path, children
        indented under their parents, with totals, call counts, and each
        scope's share of its root phase."""
        rows = self._rows()
        if not rows:
            return f"{title}: (no scopes recorded)"
        roots: Dict[str, float] = {}
        for path, seconds, _ in rows:
            root = path.split("/", 1)[0]
            if "/" not in path:
                roots[root] = seconds
        rendered: List[Tuple[str, str, str, str]] = []
        for path, seconds, count in rows:
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            root_total = roots.get(path.split("/", 1)[0], 0.0)
            share = f"{100.0 * seconds / root_total:5.1f}%" if root_total > 0 else "    —"
            rendered.append((label, f"{seconds:.6f}", str(count), share))
        headers = ("phase", "seconds", "calls", "share")
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rendered))
            for i in range(4)
        ]
        lines = [title]
        lines.append(
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in rendered:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(4)))
        return "\n".join(lines)


@contextlib.contextmanager
def phase_timer(name: str) -> Iterator[PhaseTimer]:
    """Time a scope on the active timer, creating one when none is active.

    The yielded value is the :class:`PhaseTimer` holding the recordings,
    so the outermost ``with phase_timer(...) as timer`` owns the report.
    """
    timer = active_timer()
    created = timer is None
    if created:
        timer = PhaseTimer()
        stack = getattr(_state, "timers", None)
        if stack is None:
            stack = _state.timers = []
        stack.append(timer)
    try:
        with timer.scope(name):
            yield timer
    finally:
        if created:
            _state.timers.pop()
