"""Deterministic cycle-level cost simulator.

This package stands in for the paper's physical testbed (clang -O3 binaries
timed on an i7-8559U).  Given an IR function, a machine description and a
vectorization plan it produces a cycle estimate that responds to VF and IF
the way real hardware does:

* wider VF amortises per-element instruction cost until the physical vector
  width is exhausted, after which each logical vector op costs multiple
  physical ops,
* interleaving hides the latency of reduction recurrences by providing
  independent accumulator chains,
* strided and gathered accesses cost more per element and waste bandwidth,
* short trip counts make aggressive factors counter-productive (the vector
  body never executes and everything runs in the scalar epilogue),
* too much VF×IF runs out of vector registers and pays spill traffic,
* working sets that fall out of cache become bandwidth bound, which is what
  the Polly-style tiling pass exploits.
"""

from repro.simulator.cost import (
    IterationCost,
    LoopCost,
    estimate_loop_cost,
    memo_stats,
    reset_memo_stats,
    sweep_iteration_costs,
)
from repro.simulator.engine import FunctionCost, Simulator, simulate_function
from repro.simulator.compile_time import estimate_compile_time

__all__ = [
    "IterationCost",
    "LoopCost",
    "estimate_loop_cost",
    "memo_stats",
    "reset_memo_stats",
    "sweep_iteration_costs",
    "FunctionCost",
    "Simulator",
    "simulate_function",
    "estimate_compile_time",
]
