"""Cost model for one innermost loop under a (VF, IF) choice.

The per-iteration model is queried for the same loop at every candidate
(VF, IF) pair by the brute-force oracle, the planner and grid sweeps —
a 7x5 grid per loop, revisited across a run.  The *second* vector
configuration to miss for the same (machine, working set, if-conversion)
group therefore triggers a *one-pass sweep*: every still uncached grid
point is priced in a single vectorised evaluation (numpy arrays over the
config axis, each arithmetic step in the exact order of the scalar
model, so every row is bit-identical to a scalar call) and parked in the
per-analysis memo.  Subsequent queries — the rest of a brute-force grid,
the planner's comparisons — are pure lookups.  Arming on the second
miss rather than the first matters: the RL rollout path rewrites the
kernel source per action, so each analysis there is queried for exactly
one vector configuration and a first-miss sweep would price a whole
grid nobody reads back.  (:func:`sweep_iteration_costs`, the explicit
grid API, batches up front regardless.)

``SWEEP_ENABLED`` gates the batch path; with it off every configuration
is priced by the scalar model on demand (the historical behaviour).
Module-level counters (:func:`memo_stats`) expose hit/miss/sweep rates
for the cache report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.analysis.loopinfo import LoopAnalysis
from repro.machine.description import MachineDescription, OpClass

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.vectorizer.legality import VectorizationLegality


#: Gate for the one-pass (VF, IF) sweep.  Tests flip this to compare the
#: batch path against the scalar model bit for bit.
SWEEP_ENABLED = True

_MEMO_STATS = {
    "working_set_hits": 0,
    "working_set_misses": 0,
    "iteration_hits": 0,
    "iteration_misses": 0,
    "evictions": 0,
    "sweeps": 0,
    "swept_configs": 0,
}


def memo_stats() -> Dict[str, float]:
    """Counters for the per-analysis cost memo (module-wide totals).

    ``sweeps`` counts one-pass grid evaluations, ``swept_configs`` the
    configurations they priced; ``iteration_hits`` therefore includes
    every grid point a sweep prepaid.  ``evictions`` counts runaway-key
    backstop clears (never hit in practice).
    """
    stats: Dict[str, float] = dict(_MEMO_STATS)
    lookups = stats["iteration_hits"] + stats["iteration_misses"]
    stats["iteration_hit_rate"] = stats["iteration_hits"] / lookups if lookups else 0.0
    return stats


def reset_memo_stats() -> None:
    for key in _MEMO_STATS:
        _MEMO_STATS[key] = 0


@dataclass
class IterationCost:
    """Cycles of one (vector) loop iteration and what bounds it."""

    cycles: float
    bound_by: str
    components: Dict[str, float] = field(default_factory=dict)


@dataclass
class LoopCost:
    """Total cost of executing one innermost loop with chosen factors."""

    vf: int
    interleave: int
    trip_count: int
    total_cycles: float
    vector_iterations: int
    epilogue_iterations: int
    vector_iteration: IterationCost
    scalar_iteration: IterationCost
    prologue_cycles: float
    epilogue_cycles: float
    reduction_combine_cycles: float

    @property
    def cycles_per_element(self) -> float:
        return self.total_cycles / max(1, self.trip_count)


# ---------------------------------------------------------------------------
# Per-iteration model
# ---------------------------------------------------------------------------


def _reduction_op_class(op: str, is_float: bool) -> OpClass:
    if op == "*":
        return OpClass.FLOAT_MUL if is_float else OpClass.INT_MUL
    if op in ("&", "|", "^"):
        return OpClass.BITWISE
    # '+', 'min', 'max' all behave like an add for latency purposes.
    return OpClass.FLOAT_ADD if is_float else OpClass.INT_ADD


def _analysis_memo(analysis: LoopAnalysis) -> dict:
    """Per-analysis memo for derived costs, stored on the analysis itself.

    An analysis is immutable once built, so working sets and iteration
    costs derived from it can be reused for the lifetime of the object —
    exactly the lifetime a simulator's per-loop analysis cache gives it.
    The planner's (VF, IF) sweeps re-query the same analysis hundreds of
    times per training run; without this memo each query re-walked the
    access-pattern list from scratch.
    """
    memo = analysis.__dict__.get("_cost_memo")
    if memo is None:
        memo = {}
        analysis.__dict__["_cost_memo"] = memo
    elif len(memo) > 4096:  # runaway-key backstop; never hit in practice
        _MEMO_STATS["evictions"] += len(memo)
        memo.clear()
    return memo


def estimate_working_set(analysis: LoopAnalysis, trip_count: int) -> float:
    """Bytes the loop touches over its full trip (per array, capped at the
    declared array size when known).  Memoized per (analysis, trip count)."""
    memo = _analysis_memo(analysis)
    key = ("working_set", trip_count)
    cached = memo.get(key)
    if cached is not None:
        _MEMO_STATS["working_set_hits"] += 1
        return cached
    _MEMO_STATS["working_set_misses"] += 1
    value = _estimate_working_set_uncached(analysis, trip_count)
    memo[key] = value
    return value


def _estimate_working_set_uncached(analysis: LoopAnalysis, trip_count: int) -> float:
    per_array: Dict[str, float] = {}
    for pattern in analysis.access_patterns:
        stride = pattern.stride_elements
        element_bytes = pattern.element_bytes
        if pattern.kind == "invariant":
            touched = float(element_bytes)
        elif stride is None:
            touched = float(trip_count) * 64.0  # gather: assume a line per element
        else:
            touched = float(trip_count) * abs(stride) * element_bytes
        info = analysis.function.arrays.get(pattern.access.array)
        if info is not None and info.element_count is not None:
            touched = min(touched, info.element_count * info.dtype.size_bytes)
        name = pattern.access.array
        per_array[name] = max(per_array.get(name, 0.0), touched)
    return sum(per_array.values())


def estimate_iteration_cycles(
    analysis: LoopAnalysis,
    machine: MachineDescription,
    vf: int,
    interleave: int,
    working_set_bytes: float,
    if_converted: bool = False,
) -> IterationCost:
    """Cycles for one loop iteration processing ``vf * interleave`` elements.

    With ``vf == interleave == 1`` this is the scalar iteration cost.  The
    model takes the maximum of four structural bounds (compute throughput,
    memory-port throughput, recurrence latency, cache/DRAM bandwidth) and
    adds loop control overhead and any register-spill traffic.

    Results are memoized per (analysis, machine, factors, working set):
    every ``estimate_loop_cost`` call re-derives the scalar iteration and
    brute-force sweeps revisit the same (VF, IF) points, so most queries
    after the first are pure lookups.  The *second* vector configuration
    to miss for the same (machine, working set, if-conversion) group
    prices the machine's whole candidate grid in one vectorised pass
    (see the module docstring), so the rest of a grid sweep never
    reaches the model at all; a one-shot query (the RL rollout path)
    stays on the scalar model.  Callers get a fresh
    :class:`IterationCost` each time (the memoized one stays pristine).
    """
    memo = _analysis_memo(analysis)
    key = ("iteration", id(machine), vf, interleave, working_set_bytes, if_converted)
    cached = memo.get(key)
    if cached is None or cached[0] is not machine:
        _MEMO_STATS["iteration_misses"] += 1
        vector = vf > 1 or interleave > 1
        group = ("sweep_armed", id(machine), working_set_bytes, if_converted)
        if SWEEP_ENABLED and vector and memo.get(group) is machine:
            _sweep_into_memo(
                analysis, machine, memo, working_set_bytes, if_converted,
                require=(vf, interleave),
            )
            cached = memo[key]
        else:
            if vector:
                memo[group] = machine
            result = _estimate_iteration_cycles_uncached(
                analysis, machine, vf, interleave, working_set_bytes, if_converted
            )
            memo[key] = cached = (machine, result)
    else:
        _MEMO_STATS["iteration_hits"] += 1
    pristine = cached[1]
    return IterationCost(
        cycles=pristine.cycles,
        bound_by=pristine.bound_by,
        components=dict(pristine.components),
    )


def _estimate_iteration_cycles_uncached(
    analysis: LoopAnalysis,
    machine: MachineDescription,
    vf: int,
    interleave: int,
    working_set_bytes: float,
    if_converted: bool = False,
) -> IterationCost:
    mix = analysis.operation_mix
    elements = vf * interleave
    element_bits = analysis.element_bits
    lanes = machine.lanes_for(element_bits)
    parts = machine.physical_parts(vf, element_bits)
    copies = parts * interleave  # physical ops per logical body operation

    def rt(op_class: OpClass) -> float:
        return machine.cost(op_class).recip_throughput

    def lat(op_class: OpClass) -> float:
        return machine.cost(op_class).latency

    # ---- compute throughput -------------------------------------------------
    compute_cycles = copies * (
        mix.int_add * rt(OpClass.INT_ADD)
        + mix.int_mul * rt(OpClass.INT_MUL)
        + mix.int_div * rt(OpClass.INT_DIV)
        + mix.float_add * rt(OpClass.FLOAT_ADD)
        + mix.float_mul * rt(OpClass.FLOAT_MUL)
        + mix.float_div * rt(OpClass.FLOAT_DIV)
        + mix.bitwise * rt(OpClass.BITWISE)
        + mix.shift * rt(OpClass.SHIFT)
        + mix.compare * rt(OpClass.COMPARE)
        + mix.select * rt(OpClass.SELECT)
        + mix.convert * rt(OpClass.CONVERT)
        + mix.math_call * rt(OpClass.MATH_CALL)
    )
    # Division units are not duplicated per lane: wide divides serialise.
    if mix.int_div or mix.float_div or mix.math_call:
        compute_cycles += (
            (mix.int_div + mix.float_div + mix.math_call)
            * max(0, vf - lanes)
            * 0.5
            * interleave
        )

    # ---- memory ports --------------------------------------------------------
    load_cycles = 0.0
    store_cycles = 0.0
    bytes_moved = 0.0
    line = machine.cache.line_bytes
    for pattern in analysis.access_patterns:
        access_lanes = machine.lanes_for(pattern.element_bytes * 8)
        access_parts = machine.physical_parts(vf, pattern.element_bytes * 8)
        aligned = _is_aligned(analysis, pattern, machine)
        misalign = 1.0 if aligned else 1.0 + machine.misalignment_penalty
        # Scalarised (strided/gather) vector accesses get more expensive per
        # element as the body is replicated: each extra physical copy adds
        # extract/insert traffic and code that no longer fits the uop cache.
        scalarisation_factor = 1.0 + 0.2 * max(0, access_parts * interleave - 1)
        if pattern.access.is_write:
            if pattern.kind == "contiguous":
                cost = access_parts * interleave * rt(OpClass.STORE) * misalign
                moved = elements * pattern.element_bytes
            elif pattern.kind == "invariant":
                cost = rt(OpClass.STORE)
                moved = pattern.element_bytes
            elif pattern.kind == "strided":
                cost = elements * machine.strided_cost_per_element * scalarisation_factor
                moved = elements * min(
                    line, abs(pattern.stride_elements or 1) * pattern.element_bytes
                )
            else:  # scatter
                cost = elements * machine.scatter_cost_per_element * scalarisation_factor
                moved = elements * min(line, 64)
            store_cycles += cost
        else:
            if pattern.kind == "contiguous":
                cost = access_parts * interleave * rt(OpClass.LOAD) * misalign
                moved = elements * pattern.element_bytes
            elif pattern.kind == "invariant":
                cost = 0.1  # hoisted out of the loop by LICM
                moved = 0.0
            elif pattern.kind == "strided":
                cost = elements * machine.strided_cost_per_element * scalarisation_factor
                moved = elements * min(
                    line, abs(pattern.stride_elements or 1) * pattern.element_bytes
                )
            else:  # gather
                cost = elements * machine.gather_cost_per_element * scalarisation_factor
                moved = elements * min(line, 64)
            load_cycles += cost
        bytes_moved += moved

    # Predicated bodies need masks/blends on their memory operations.
    if if_converted and vf > 1:
        mask_ops = (mix.stores + max(1, analysis.predicate_count)) * copies
        store_cycles += mask_ops * rt(OpClass.SHUFFLE) * 0.5
        compute_cycles += analysis.predicate_count * copies * rt(OpClass.SELECT)

    # ---- issue width ---------------------------------------------------------
    total_uops = (
        copies * (mix.arithmetic + mix.compare + mix.select + mix.convert)
        + copies * mix.math_call * 4
        + load_cycles / max(rt(OpClass.LOAD), 1e-9) * rt(OpClass.LOAD) * 2
        + store_cycles / max(rt(OpClass.STORE), 1e-9) * rt(OpClass.STORE)
    )
    issue_cycles = total_uops / machine.issue_width

    # ---- recurrence latency ---------------------------------------------------
    latency_cycles = 0.0
    for reduction in analysis.reductions:
        op_class = _reduction_op_class(reduction.op, reduction.is_float)
        latency_cycles = max(latency_cycles, lat(op_class))
    graph = analysis.dependence_graph
    if graph is not None:
        distance = graph.min_carried_distance()
        if distance is not None and distance > 0:
            chain_latency = lat(OpClass.LOAD) + (
                lat(OpClass.FLOAT_ADD) if mix.float_add or mix.float_mul
                else lat(OpClass.INT_ADD)
            )
            latency_cycles = max(latency_cycles, chain_latency * elements / distance)
        if graph.scalar_recurrences:
            # A non-reduction scalar recurrence serialises every element: the
            # chain advances one element per operation latency, so unrolling
            # (interleave) cannot hide it.
            serial_latency = (
                lat(OpClass.FLOAT_ADD)
                if mix.float_add or mix.float_mul or mix.float_div
                else lat(OpClass.INT_ADD)
            )
            latency_cycles = max(latency_cycles, serial_latency * elements)

    # ---- cache / DRAM bandwidth ----------------------------------------------
    bandwidth = machine.cache.effective_bandwidth(working_set_bytes)
    bandwidth_cycles = bytes_moved / max(bandwidth, 1e-9)
    # Latency exposure of the first miss per line is blended into bandwidth
    # for streaming loops; gathers expose more of it.
    if analysis.gather_accesses:
        bandwidth_cycles += (
            analysis.gather_accesses
            * elements
            * 0.02
            * machine.cache.effective_load_latency(working_set_bytes)
        )

    # ---- register pressure -----------------------------------------------------
    # Reduction accumulators must stay live across the whole iteration, and
    # every replicated copy of the body keeps some in-flight temporaries per
    # distinct memory stream.  Excess pressure turns into spill traffic; the
    # charge per spilled value is mild (L1-hitting stores/reloads that mostly
    # overlap with other work) but it grows with how many streams the body
    # juggles, which is what eventually makes extreme VF*IF counter-productive
    # on multi-array kernels while leaving single-stream reductions cheap.
    distinct_arrays = len({p.access.array for p in analysis.access_patterns})
    live_vectors = (
        len(analysis.reductions) * parts * interleave
        + 0.4 * distinct_arrays * parts * interleave
        + 2
    )
    spill_cycles = 0.0
    if vf > 1 or interleave > 1:
        excess = live_vectors - machine.vector_registers
        if excess > 0:
            spill_cycles = excess * (rt(OpClass.LOAD) + rt(OpClass.STORE)) * 0.75

    components = {
        "compute": compute_cycles,
        "load": load_cycles,
        "store": store_cycles,
        "issue": issue_cycles,
        "latency": latency_cycles,
        "bandwidth": bandwidth_cycles,
        "spill": spill_cycles,
    }
    bound_by = max(
        ("compute", "load", "store", "issue", "latency", "bandwidth"),
        key=lambda key: components[key],
    )
    cycles = (
        max(compute_cycles, load_cycles, store_cycles, issue_cycles,
            latency_cycles, bandwidth_cycles)
        + spill_cycles
        + machine.loop_overhead_cycles
    )
    return IterationCost(cycles=cycles, bound_by=bound_by, components=components)


def _candidate_grid(machine: MachineDescription) -> List[Tuple[int, int]]:
    return [
        (vf, interleave)
        for vf in machine.vf_candidates()
        for interleave in machine.if_candidates()
    ]


def _sweep_into_memo(
    analysis: LoopAnalysis,
    machine: MachineDescription,
    memo: dict,
    working_set_bytes: float,
    if_converted: bool,
    require: Optional[Tuple[int, int]] = None,
) -> None:
    """Price every still-uncached candidate (VF, IF) in one pass.

    ``require`` forces an off-grid configuration (a trip-count-clamped
    factor, say) into the batch so the triggering query always lands.
    Already cached grid points are left untouched (their pristine objects
    stay pristine and their hit counters keep meaning something).
    """
    configs = _candidate_grid(machine)
    if require is not None and require not in configs:
        configs.append(require)
    missing = [
        (vf, interleave)
        for vf, interleave in configs
        if ("iteration", id(machine), vf, interleave, working_set_bytes, if_converted)
        not in memo
    ]
    if not missing:
        return
    results = _estimate_iteration_cycles_batch(
        analysis, machine, missing, working_set_bytes, if_converted
    )
    for (vf, interleave), result in zip(missing, results):
        key = ("iteration", id(machine), vf, interleave, working_set_bytes, if_converted)
        memo[key] = (machine, result)
    _MEMO_STATS["sweeps"] += 1
    _MEMO_STATS["swept_configs"] += len(missing)


def sweep_iteration_costs(
    analysis: LoopAnalysis,
    machine: MachineDescription,
    working_set_bytes: float,
    if_converted: bool = False,
) -> Dict[Tuple[int, int], IterationCost]:
    """Per-iteration cost of every candidate (VF, IF) of ``machine``.

    One memoized batch evaluation (primed up front — the explicit grid
    API never waits for the second-miss arming heuristic); each returned
    row is bit-identical to the corresponding
    :func:`estimate_iteration_cycles` call.  Callers get fresh
    :class:`IterationCost` objects.
    """
    if SWEEP_ENABLED:
        _sweep_into_memo(
            analysis, machine, _analysis_memo(analysis), working_set_bytes,
            if_converted,
        )
    return {
        (vf, interleave): estimate_iteration_cycles(
            analysis, machine, vf, interleave, working_set_bytes, if_converted
        )
        for vf, interleave in _candidate_grid(machine)
    }


def _estimate_iteration_cycles_batch(
    analysis: LoopAnalysis,
    machine: MachineDescription,
    configs: List[Tuple[int, int]],
    working_set_bytes: float,
    if_converted: bool,
) -> List[IterationCost]:
    """Vectorised :func:`_estimate_iteration_cycles_uncached` over configs.

    Every arithmetic step mirrors the scalar model expression for
    expression — same association order, same int/float promotion points —
    so each lane of the batch is bit-identical to a scalar evaluation of
    that configuration.  Only elementwise operations run over the config
    axis (no cross-config reductions), which is what makes the equivalence
    exact rather than approximate.
    """
    mix = analysis.operation_mix
    vf = np.array([pair[0] for pair in configs], dtype=np.int64)
    interleave = np.array([pair[1] for pair in configs], dtype=np.int64)
    elements = vf * interleave
    element_bits = analysis.element_bits
    lanes = machine.lanes_for(element_bits)
    parts = np.maximum(1, -(-vf // lanes))  # ceil division, as physical_parts
    copies = parts * interleave

    def rt(op_class: OpClass) -> float:
        return machine.cost(op_class).recip_throughput

    def lat(op_class: OpClass) -> float:
        return machine.cost(op_class).latency

    # ---- compute throughput -------------------------------------------------
    # The per-copy price is config-independent: one scalar sum in the exact
    # order of the scalar model, then an elementwise multiply.
    per_copy = (
        mix.int_add * rt(OpClass.INT_ADD)
        + mix.int_mul * rt(OpClass.INT_MUL)
        + mix.int_div * rt(OpClass.INT_DIV)
        + mix.float_add * rt(OpClass.FLOAT_ADD)
        + mix.float_mul * rt(OpClass.FLOAT_MUL)
        + mix.float_div * rt(OpClass.FLOAT_DIV)
        + mix.bitwise * rt(OpClass.BITWISE)
        + mix.shift * rt(OpClass.SHIFT)
        + mix.compare * rt(OpClass.COMPARE)
        + mix.select * rt(OpClass.SELECT)
        + mix.convert * rt(OpClass.CONVERT)
        + mix.math_call * rt(OpClass.MATH_CALL)
    )
    compute_cycles = copies * per_copy
    if mix.int_div or mix.float_div or mix.math_call:
        compute_cycles = compute_cycles + (
            (mix.int_div + mix.float_div + mix.math_call)
            * np.maximum(0, vf - lanes)
            * 0.5
            * interleave
        )

    # ---- memory ports --------------------------------------------------------
    load_cycles = np.zeros(len(configs), dtype=np.float64)
    store_cycles = np.zeros(len(configs), dtype=np.float64)
    bytes_moved = np.zeros(len(configs), dtype=np.float64)
    line = machine.cache.line_bytes
    for pattern in analysis.access_patterns:
        access_lanes = machine.lanes_for(pattern.element_bytes * 8)
        access_parts = np.maximum(1, -(-vf // access_lanes))
        aligned = _is_aligned(analysis, pattern, machine)
        misalign = 1.0 if aligned else 1.0 + machine.misalignment_penalty
        scalarisation_factor = 1.0 + 0.2 * np.maximum(0, access_parts * interleave - 1)
        if pattern.access.is_write:
            if pattern.kind == "contiguous":
                cost = access_parts * interleave * rt(OpClass.STORE) * misalign
                moved = elements * pattern.element_bytes
            elif pattern.kind == "invariant":
                cost = rt(OpClass.STORE)
                moved = pattern.element_bytes
            elif pattern.kind == "strided":
                cost = elements * machine.strided_cost_per_element * scalarisation_factor
                moved = elements * min(
                    line, abs(pattern.stride_elements or 1) * pattern.element_bytes
                )
            else:  # scatter
                cost = elements * machine.scatter_cost_per_element * scalarisation_factor
                moved = elements * min(line, 64)
            store_cycles = store_cycles + cost
        else:
            if pattern.kind == "contiguous":
                cost = access_parts * interleave * rt(OpClass.LOAD) * misalign
                moved = elements * pattern.element_bytes
            elif pattern.kind == "invariant":
                cost = 0.1
                moved = 0.0
            elif pattern.kind == "strided":
                cost = elements * machine.strided_cost_per_element * scalarisation_factor
                moved = elements * min(
                    line, abs(pattern.stride_elements or 1) * pattern.element_bytes
                )
            else:  # gather
                cost = elements * machine.gather_cost_per_element * scalarisation_factor
                moved = elements * min(line, 64)
            load_cycles = load_cycles + cost
        bytes_moved = bytes_moved + moved

    if if_converted:
        vector_lanes = vf > 1
        if vector_lanes.any():
            mask_ops = (mix.stores + max(1, analysis.predicate_count)) * copies
            extra_store = mask_ops * rt(OpClass.SHUFFLE) * 0.5
            extra_compute = analysis.predicate_count * copies * rt(OpClass.SELECT)
            store_cycles[vector_lanes] = (
                store_cycles[vector_lanes] + extra_store[vector_lanes]
            )
            compute_cycles = np.asarray(compute_cycles, dtype=np.float64).copy()
            compute_cycles[vector_lanes] = (
                compute_cycles[vector_lanes] + extra_compute[vector_lanes]
            )

    # ---- issue width ---------------------------------------------------------
    total_uops = (
        copies * (mix.arithmetic + mix.compare + mix.select + mix.convert)
        + copies * mix.math_call * 4
        + load_cycles / max(rt(OpClass.LOAD), 1e-9) * rt(OpClass.LOAD) * 2
        + store_cycles / max(rt(OpClass.STORE), 1e-9) * rt(OpClass.STORE)
    )
    issue_cycles = total_uops / machine.issue_width

    # ---- recurrence latency ---------------------------------------------------
    base_latency = 0.0
    for reduction in analysis.reductions:
        op_class = _reduction_op_class(reduction.op, reduction.is_float)
        base_latency = max(base_latency, lat(op_class))
    latency_cycles = np.full(len(configs), base_latency, dtype=np.float64)
    graph = analysis.dependence_graph
    if graph is not None:
        distance = graph.min_carried_distance()
        if distance is not None and distance > 0:
            chain_latency = lat(OpClass.LOAD) + (
                lat(OpClass.FLOAT_ADD) if mix.float_add or mix.float_mul
                else lat(OpClass.INT_ADD)
            )
            latency_cycles = np.maximum(
                latency_cycles, chain_latency * elements / distance
            )
        if graph.scalar_recurrences:
            serial_latency = (
                lat(OpClass.FLOAT_ADD)
                if mix.float_add or mix.float_mul or mix.float_div
                else lat(OpClass.INT_ADD)
            )
            latency_cycles = np.maximum(latency_cycles, serial_latency * elements)

    # ---- cache / DRAM bandwidth ----------------------------------------------
    bandwidth = machine.cache.effective_bandwidth(working_set_bytes)
    bandwidth_cycles = bytes_moved / max(bandwidth, 1e-9)
    if analysis.gather_accesses:
        bandwidth_cycles = bandwidth_cycles + (
            analysis.gather_accesses
            * elements
            * 0.02
            * machine.cache.effective_load_latency(working_set_bytes)
        )

    # ---- register pressure -----------------------------------------------------
    distinct_arrays = len({p.access.array for p in analysis.access_patterns})
    live_vectors = (
        len(analysis.reductions) * parts * interleave
        + 0.4 * distinct_arrays * parts * interleave
        + 2
    )
    excess = live_vectors - machine.vector_registers
    spill_mask = ((vf > 1) | (interleave > 1)) & (excess > 0)
    spill_cycles = np.where(
        spill_mask,
        excess * (rt(OpClass.LOAD) + rt(OpClass.STORE)) * 0.75,
        0.0,
    )

    component_rows = (
        ("compute", np.broadcast_to(np.asarray(compute_cycles, dtype=np.float64),
                                    (len(configs),))),
        ("load", load_cycles),
        ("store", store_cycles),
        ("issue", issue_cycles),
        ("latency", latency_cycles),
        ("bandwidth", bandwidth_cycles),
    )
    stacked = np.stack([row for _, row in component_rows])
    bound_index = np.argmax(stacked, axis=0)
    bounded_cycles = np.max(stacked, axis=0)
    cycles = bounded_cycles + spill_cycles + machine.loop_overhead_cycles

    names = tuple(name for name, _ in component_rows)
    results: List[IterationCost] = []
    for index in range(len(configs)):
        components = {name: float(row[index]) for name, row in component_rows}
        components["spill"] = float(spill_cycles[index])
        results.append(
            IterationCost(
                cycles=float(cycles[index]),
                bound_by=names[int(bound_index[index])],
                components=components,
            )
        )
    return results


def _is_aligned(
    analysis: LoopAnalysis, pattern, machine: MachineDescription
) -> bool:
    """Whether a contiguous access is known to start vector-aligned."""
    info = analysis.function.arrays.get(pattern.access.array)
    if info is None or info.alignment is None:
        return False
    return info.alignment >= machine.vector_bits // 8 or info.alignment >= 16


# ---------------------------------------------------------------------------
# Whole-loop model
# ---------------------------------------------------------------------------


def estimate_loop_cost(
    analysis: LoopAnalysis,
    machine: MachineDescription,
    vf: int,
    interleave: int,
    trip_count: int,
    legality: Optional["VectorizationLegality"] = None,
) -> LoopCost:
    """Cycles to run the whole innermost loop with the given *effective*
    factors and runtime trip count."""
    trip_count = max(0, trip_count)
    working_set = estimate_working_set(analysis, trip_count)
    if_converted = analysis.has_predicates or analysis.operation_mix.select > 0

    scalar_iteration = estimate_iteration_cycles(
        analysis, machine, 1, 1, working_set, if_converted=False
    )
    if vf <= 1 and interleave <= 1:
        total = trip_count * scalar_iteration.cycles
        return LoopCost(
            vf=1,
            interleave=1,
            trip_count=trip_count,
            total_cycles=total,
            vector_iterations=0,
            epilogue_iterations=trip_count,
            vector_iteration=scalar_iteration,
            scalar_iteration=scalar_iteration,
            prologue_cycles=0.0,
            epilogue_cycles=total,
            reduction_combine_cycles=0.0,
        )

    vector_iteration = estimate_iteration_cycles(
        analysis, machine, vf, interleave, working_set, if_converted=if_converted
    )
    elements = vf * interleave
    vector_iterations = trip_count // elements
    epilogue_iterations = trip_count - vector_iterations * elements

    prologue = 8.0  # vector loop preheader setup
    if legality is not None:
        if legality.needs_runtime_trip_check:
            prologue += machine.runtime_check_cycles
        if legality.needs_alias_checks:
            prologue += 10.0 * legality.alias_check_count

    combine = 0.0
    if analysis.reductions and vf * interleave > 1:
        parts = machine.physical_parts(vf, analysis.element_bits)
        lanes = machine.lanes_for(analysis.element_bits)
        # One vector add per extra accumulator, then a log2 shuffle tree to
        # fold the lanes of the final register.
        steps = (parts * interleave - 1) + math.log2(max(2, min(vf, lanes)))
        combine = len(analysis.reductions) * steps * machine.reduction_combine_cost_per_step

    epilogue_cycles = epilogue_iterations * scalar_iteration.cycles
    total = (
        prologue
        + vector_iterations * vector_iteration.cycles
        + epilogue_cycles
        + combine
    )
    return LoopCost(
        vf=vf,
        interleave=interleave,
        trip_count=trip_count,
        total_cycles=total,
        vector_iterations=vector_iterations,
        epilogue_iterations=epilogue_iterations,
        vector_iteration=vector_iteration,
        scalar_iteration=scalar_iteration,
        prologue_cycles=prologue,
        epilogue_cycles=epilogue_cycles,
        reduction_combine_cycles=combine,
    )
