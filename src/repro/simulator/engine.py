"""Whole-function cycle estimation (walks the region tree)."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.loopinfo import LoopAnalysis, OperationMix, analyze_loop, _count_statement
from repro.ir.evaluate import evaluate_expr, trip_count_of
from repro.ir.nodes import Conditional, IRFunction, Loop, RegionNode, Statement
from repro.machine.description import MachineDescription, OpClass
from repro.simulator.cost import LoopCost, estimate_loop_cost

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.vectorizer.planner import FunctionVectorPlan


#: :class:`OperationMix` count fields paired with the op class that prices
#: them, in the exact order the scalar pricer accumulates.  The vectorised
#: block pricer adds the per-class products in this same order so both paths
#: produce bit-identical cycles for every statement.
_MIX_OP_CLASSES: Tuple[Tuple[str, OpClass], ...] = (
    ("int_add", OpClass.INT_ADD),
    ("int_mul", OpClass.INT_MUL),
    ("int_div", OpClass.INT_DIV),
    ("float_add", OpClass.FLOAT_ADD),
    ("float_mul", OpClass.FLOAT_MUL),
    ("float_div", OpClass.FLOAT_DIV),
    ("bitwise", OpClass.BITWISE),
    ("shift", OpClass.SHIFT),
    ("compare", OpClass.COMPARE),
    ("select", OpClass.SELECT),
    ("convert", OpClass.CONVERT),
    ("math_call", OpClass.MATH_CALL),
    ("loads", OpClass.LOAD),
    ("stores", OpClass.STORE),
)


@dataclass
class SimulatorMemoStats:
    """Hit/miss/eviction counters for the whole-function simulation memo."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class FunctionCost:
    """Estimated execution cost of one function call."""

    function: IRFunction
    machine: MachineDescription
    total_cycles: float
    loop_costs: Dict[int, LoopCost] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.machine.cycles_to_seconds(self.total_cycles)

    def speedup_over(self, other: "FunctionCost") -> float:
        """How much faster *this* cost is than ``other`` (>1 means faster)."""
        if self.total_cycles <= 0:
            return float("inf")
        return other.total_cycles / self.total_cycles


class Simulator:
    """Estimates cycles for IR functions under a vectorization plan.

    ``bindings`` provide runtime values for symbolic loop bounds and scalar
    parameters (the equivalent of the paper's test harness choosing concrete
    array sizes); any symbol still unknown falls back to
    ``default_symbol_value``.
    """

    #: Entry cap for the per-simulator memo of whole-function simulations.
    MAX_MEMO_ENTRIES = 4096

    def __init__(
        self,
        machine: Optional[MachineDescription] = None,
        bindings: Optional[Dict[str, float]] = None,
        default_symbol_value: int = 256,
    ):
        self.machine = machine or MachineDescription()
        self.bindings = dict(bindings or {})
        self.default_symbol_value = default_symbol_value
        self._analysis_cache: Dict[Tuple[int, int], LoopAnalysis] = {}
        # Memoised whole-function simulations keyed by (function, plan
        # factors, bindings), LRU-evicted at MAX_MEMO_ENTRIES.  The
        # FunctionCost values hold the function alive, so the id()-based
        # keys cannot be recycled while cached.
        self._simulate_cache: "OrderedDict[tuple, FunctionCost]" = OrderedDict()
        self.memo = SimulatorMemoStats()
        # Per-statement cycle estimates; statements are immutable during
        # simulation and shared across repeated simulations of cached IR.
        self._statement_cache: Dict[int, Tuple[Statement, float]] = {}
        # Per-region "playbooks": each region body (a statement list) reduces
        # to folded statement-run cycles interleaved with the Loop/Conditional
        # nodes that still depend on the query's plan and bindings.  Built
        # once per region, so repeated (VF, IF, unroll) queries stop
        # re-walking (and re-pricing) the statement lists.
        self._playbook_cache: Dict[int, Tuple[object, Tuple[object, ...]]] = {}
        self._op_costs = np.array(
            [self.machine.cost(op).recip_throughput for _, op in _MIX_OP_CLASSES],
            dtype=np.float64,
        )

    # -- public API ---------------------------------------------------------------

    def simulate(
        self,
        function: IRFunction,
        plan: Optional[FunctionVectorPlan] = None,
        extra_bindings: Optional[Dict[str, float]] = None,
    ) -> FunctionCost:
        bindings = dict(self.bindings)
        if extra_bindings:
            bindings.update(extra_bindings)
        key = (
            id(function),
            _plan_fingerprint(plan),
            tuple(sorted(bindings.items())),
        )
        cached = self._simulate_cache.get(key)
        if cached is not None and cached.function is function:
            self.memo.hits += 1
            self._simulate_cache.move_to_end(key)
            return cached
        self.memo.misses += 1
        cost = FunctionCost(function=function, machine=self.machine, total_cycles=0.0)
        cost.total_cycles = self._region_cycles(function.body, function, plan, bindings, cost)
        self._simulate_cache[key] = cost
        self._simulate_cache.move_to_end(key)
        while len(self._simulate_cache) > self.MAX_MEMO_ENTRIES:
            self._simulate_cache.popitem(last=False)
            self.memo.evictions += 1
        return cost

    def memo_stats(self) -> Dict[str, float]:
        """Counters for this simulator's memos (the whole-function LRU plus
        entry counts of the per-function analysis/statement/playbook stores)."""
        return {
            "hits": self.memo.hits,
            "misses": self.memo.misses,
            "evictions": self.memo.evictions,
            "hit_rate": self.memo.hit_rate,
            "entries": len(self._simulate_cache),
            "analysis_entries": len(self._analysis_cache),
            "statement_entries": len(self._statement_cache),
            "playbook_entries": len(self._playbook_cache),
        }

    def loop_analysis(self, function: IRFunction, loop: Loop) -> LoopAnalysis:
        key = (id(function), loop.loop_id)
        cached = self._analysis_cache.get(key)
        if cached is not None and cached.function is function:
            return cached
        analysis = analyze_loop(function, loop)
        self._analysis_cache[key] = analysis
        return analysis

    # -- region walking ---------------------------------------------------------------

    def _region_cycles(
        self,
        nodes: Iterable[RegionNode],
        function: IRFunction,
        plan: Optional[FunctionVectorPlan],
        bindings: Dict[str, float],
        cost: FunctionCost,
    ) -> float:
        if isinstance(nodes, (list, tuple)):
            items: Iterable[object] = self._region_playbook(nodes)
        else:
            # No stable identity to memoize under (e.g. a generator from an
            # external caller): walk the nodes directly.
            items = nodes
        cycles = 0.0
        for item in items:
            if type(item) is float:
                cycles += item  # a pre-priced statement run
            elif isinstance(item, Statement):
                cycles += self._statement_cycles(item)
            elif isinstance(item, Conditional):
                then_cycles = self._region_cycles(
                    item.then_body, function, plan, bindings, cost
                )
                else_cycles = self._region_cycles(
                    item.else_body, function, plan, bindings, cost
                )
                cycles += 1.0 + max(then_cycles, else_cycles)
            elif isinstance(item, Loop):
                cycles += self._loop_cycles(item, function, plan, bindings, cost)
        return cycles

    def _region_playbook(self, nodes) -> Tuple[object, ...]:
        """Reduce a region body to folded statement-run cycles plus the
        plan-dependent nodes, memoized by body identity.

        Consecutive statements are priced in one vectorised pass and folded
        into a single float, so per-plan queries only re-evaluate the Loop
        and Conditional entries.  The body list is pinned in the cache value
        to keep its id() from being recycled.
        """
        key = id(nodes)
        cached = self._playbook_cache.get(key)
        if cached is not None and cached[0] is nodes:
            return cached[1]
        items: List[object] = []
        run: List[Statement] = []
        for node in nodes:
            if isinstance(node, Statement):
                run.append(node)
                continue
            if run:
                items.append(self._statement_block_cycles(run))
                run = []
            if isinstance(node, (Conditional, Loop)):
                items.append(node)
        if run:
            items.append(self._statement_block_cycles(run))
        playbook = tuple(items)
        self._playbook_cache[key] = (nodes, playbook)
        return playbook

    def _loop_cycles(
        self,
        loop: Loop,
        function: IRFunction,
        plan: Optional[FunctionVectorPlan],
        bindings: Dict[str, float],
        cost: FunctionCost,
    ) -> float:
        trip = self._runtime_trip_count(loop, bindings)
        if loop.is_innermost:
            analysis = self.loop_analysis(function, loop)
            loop_plan = plan.plan_for(loop) if plan is not None else None
            if loop_plan is not None:
                loop_cost = estimate_loop_cost(
                    loop_plan.analysis,
                    self.machine,
                    loop_plan.vf,
                    loop_plan.interleave,
                    trip,
                    legality=loop_plan.legality,
                )
            else:
                loop_cost = estimate_loop_cost(analysis, self.machine, 1, 1, trip)
            cost.loop_costs[loop.loop_id] = loop_cost
            return loop_cost.total_cycles + 2.0
        body_cycles = self._region_cycles(loop.body, function, plan, bindings, cost)
        per_iteration = body_cycles + self.machine.loop_overhead_cycles
        return trip * per_iteration + 4.0

    # -- leaves ----------------------------------------------------------------------

    def _statement_cycles(self, statement: Statement) -> float:
        cached = self._statement_cache.get(id(statement))
        if cached is not None and cached[0] is statement:
            return cached[1]
        cycles = self._statement_cycles_uncached(statement)
        self._statement_cache[id(statement)] = (statement, cycles)
        return cycles

    def _statement_cycles_uncached(self, statement: Statement) -> float:
        mix = OperationMix()
        _count_statement(statement, mix)
        costs = self._op_costs
        cycles = 0.0
        for column, (field_name, _) in enumerate(_MIX_OP_CLASSES):
            cycles += getattr(mix, field_name) * float(costs[column])
        return max(cycles, 0.25)

    def _statement_block_cycles(self, statements: List[Statement]) -> float:
        """Cycles of a run of consecutive statements, priced in one pass.

        Builds an (n_statements, n_op_classes) count matrix and reduces it
        against the machine cost vector class by class — the same
        accumulation order as the scalar pricer, so every per-statement
        value is bit-identical to :meth:`_statement_cycles`.
        """
        if len(statements) == 1:
            return self._statement_cycles(statements[0])
        mixes = np.empty((len(statements), len(_MIX_OP_CLASSES)), dtype=np.float64)
        for row, statement in enumerate(statements):
            mix = OperationMix()
            _count_statement(statement, mix)
            for column, (field_name, _) in enumerate(_MIX_OP_CLASSES):
                mixes[row, column] = getattr(mix, field_name)
        costs = self._op_costs
        cycles = mixes[:, 0] * costs[0]
        for column in range(1, costs.shape[0]):
            cycles += mixes[:, column] * costs[column]
        np.maximum(cycles, 0.25, out=cycles)
        total = 0.0
        for statement, value in zip(statements, cycles.tolist()):
            self._statement_cache[id(statement)] = (statement, value)
            total += value
        return total

    def _runtime_trip_count(self, loop: Loop, bindings: Dict[str, float]) -> int:
        trip = trip_count_of(
            loop.lower, loop.upper, loop.step, loop.condition_op, bindings
        )
        if trip is not None:
            return int(trip)
        if loop.trip_count is not None:
            return loop.trip_count
        # Bind every unknown symbol in the bounds to the default and retry.
        symbols = {
            ref.name
            for expr in (loop.lower, loop.upper)
            if expr is not None
            for ref in expr.scalar_refs()
        }
        padded = dict(bindings)
        for name in symbols:
            padded.setdefault(name, self.default_symbol_value)
        trip = trip_count_of(
            loop.lower, loop.upper, loop.step, loop.condition_op, padded
        )
        if trip is not None:
            return int(trip)
        return self.default_symbol_value


def _plan_fingerprint(plan: Optional[FunctionVectorPlan]) -> Optional[tuple]:
    """Stable identity of a plan's effective factors (cost-relevant state)."""
    if plan is None:
        return None
    return tuple(
        sorted((loop_id, p.vf, p.interleave) for loop_id, p in plan.plans.items())
    )


def simulate_function(
    function: IRFunction,
    plan: Optional[FunctionVectorPlan] = None,
    machine: Optional[MachineDescription] = None,
    bindings: Optional[Dict[str, float]] = None,
    default_symbol_value: int = 256,
) -> FunctionCost:
    """Convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        machine=machine, bindings=bindings, default_symbol_value=default_symbol_value
    )
    return simulator.simulate(function, plan)
