"""Whole-function cycle estimation (walks the region tree)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.loopinfo import LoopAnalysis, OperationMix, analyze_loop, _count_statement
from repro.ir.evaluate import evaluate_expr, trip_count_of
from repro.ir.nodes import Conditional, IRFunction, Loop, RegionNode, Statement
from repro.machine.description import MachineDescription, OpClass
from repro.simulator.cost import LoopCost, estimate_loop_cost

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.vectorizer.planner import FunctionVectorPlan


@dataclass
class FunctionCost:
    """Estimated execution cost of one function call."""

    function: IRFunction
    machine: MachineDescription
    total_cycles: float
    loop_costs: Dict[int, LoopCost] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.machine.cycles_to_seconds(self.total_cycles)

    def speedup_over(self, other: "FunctionCost") -> float:
        """How much faster *this* cost is than ``other`` (>1 means faster)."""
        if self.total_cycles <= 0:
            return float("inf")
        return other.total_cycles / self.total_cycles


class Simulator:
    """Estimates cycles for IR functions under a vectorization plan.

    ``bindings`` provide runtime values for symbolic loop bounds and scalar
    parameters (the equivalent of the paper's test harness choosing concrete
    array sizes); any symbol still unknown falls back to
    ``default_symbol_value``.
    """

    #: Entry cap for the per-simulator memo of whole-function simulations.
    MAX_MEMO_ENTRIES = 4096

    def __init__(
        self,
        machine: Optional[MachineDescription] = None,
        bindings: Optional[Dict[str, float]] = None,
        default_symbol_value: int = 256,
    ):
        self.machine = machine or MachineDescription()
        self.bindings = dict(bindings or {})
        self.default_symbol_value = default_symbol_value
        self._analysis_cache: Dict[Tuple[int, int], LoopAnalysis] = {}
        # Memoised whole-function simulations keyed by (function, plan
        # factors, bindings).  The FunctionCost values hold the function
        # alive, so the id()-based keys cannot be recycled while cached.
        self._simulate_cache: Dict[tuple, FunctionCost] = {}
        # Per-statement cycle estimates; statements are immutable during
        # simulation and shared across repeated simulations of cached IR.
        self._statement_cache: Dict[int, Tuple[Statement, float]] = {}

    # -- public API ---------------------------------------------------------------

    def simulate(
        self,
        function: IRFunction,
        plan: Optional[FunctionVectorPlan] = None,
        extra_bindings: Optional[Dict[str, float]] = None,
    ) -> FunctionCost:
        bindings = dict(self.bindings)
        if extra_bindings:
            bindings.update(extra_bindings)
        key = (
            id(function),
            _plan_fingerprint(plan),
            tuple(sorted(bindings.items())),
        )
        cached = self._simulate_cache.get(key)
        if cached is not None and cached.function is function:
            return cached
        cost = FunctionCost(function=function, machine=self.machine, total_cycles=0.0)
        cost.total_cycles = self._region_cycles(function.body, function, plan, bindings, cost)
        if len(self._simulate_cache) >= self.MAX_MEMO_ENTRIES:
            self._simulate_cache.clear()
        self._simulate_cache[key] = cost
        return cost

    def loop_analysis(self, function: IRFunction, loop: Loop) -> LoopAnalysis:
        key = (id(function), loop.loop_id)
        cached = self._analysis_cache.get(key)
        if cached is not None and cached.function is function:
            return cached
        analysis = analyze_loop(function, loop)
        self._analysis_cache[key] = analysis
        return analysis

    # -- region walking ---------------------------------------------------------------

    def _region_cycles(
        self,
        nodes: Iterable[RegionNode],
        function: IRFunction,
        plan: Optional[FunctionVectorPlan],
        bindings: Dict[str, float],
        cost: FunctionCost,
    ) -> float:
        cycles = 0.0
        for node in nodes:
            if isinstance(node, Statement):
                cycles += self._statement_cycles(node)
            elif isinstance(node, Conditional):
                then_cycles = self._region_cycles(
                    node.then_body, function, plan, bindings, cost
                )
                else_cycles = self._region_cycles(
                    node.else_body, function, plan, bindings, cost
                )
                cycles += 1.0 + max(then_cycles, else_cycles)
            elif isinstance(node, Loop):
                cycles += self._loop_cycles(node, function, plan, bindings, cost)
        return cycles

    def _loop_cycles(
        self,
        loop: Loop,
        function: IRFunction,
        plan: Optional[FunctionVectorPlan],
        bindings: Dict[str, float],
        cost: FunctionCost,
    ) -> float:
        trip = self._runtime_trip_count(loop, bindings)
        if loop.is_innermost:
            analysis = self.loop_analysis(function, loop)
            loop_plan = plan.plan_for(loop) if plan is not None else None
            if loop_plan is not None:
                loop_cost = estimate_loop_cost(
                    loop_plan.analysis,
                    self.machine,
                    loop_plan.vf,
                    loop_plan.interleave,
                    trip,
                    legality=loop_plan.legality,
                )
            else:
                loop_cost = estimate_loop_cost(analysis, self.machine, 1, 1, trip)
            cost.loop_costs[loop.loop_id] = loop_cost
            return loop_cost.total_cycles + 2.0
        body_cycles = self._region_cycles(loop.body, function, plan, bindings, cost)
        per_iteration = body_cycles + self.machine.loop_overhead_cycles
        return trip * per_iteration + 4.0

    # -- leaves ----------------------------------------------------------------------

    def _statement_cycles(self, statement: Statement) -> float:
        cached = self._statement_cache.get(id(statement))
        if cached is not None and cached[0] is statement:
            return cached[1]
        cycles = self._statement_cycles_uncached(statement)
        self._statement_cache[id(statement)] = (statement, cycles)
        return cycles

    def _statement_cycles_uncached(self, statement: Statement) -> float:
        mix = OperationMix()
        _count_statement(statement, mix)
        machine = self.machine
        cycles = (
            mix.int_add * machine.cost(OpClass.INT_ADD).recip_throughput
            + mix.int_mul * machine.cost(OpClass.INT_MUL).recip_throughput
            + mix.int_div * machine.cost(OpClass.INT_DIV).recip_throughput
            + mix.float_add * machine.cost(OpClass.FLOAT_ADD).recip_throughput
            + mix.float_mul * machine.cost(OpClass.FLOAT_MUL).recip_throughput
            + mix.float_div * machine.cost(OpClass.FLOAT_DIV).recip_throughput
            + mix.bitwise * machine.cost(OpClass.BITWISE).recip_throughput
            + mix.shift * machine.cost(OpClass.SHIFT).recip_throughput
            + mix.compare * machine.cost(OpClass.COMPARE).recip_throughput
            + mix.select * machine.cost(OpClass.SELECT).recip_throughput
            + mix.convert * machine.cost(OpClass.CONVERT).recip_throughput
            + mix.math_call * machine.cost(OpClass.MATH_CALL).recip_throughput
            + mix.loads * machine.cost(OpClass.LOAD).recip_throughput
            + mix.stores * machine.cost(OpClass.STORE).recip_throughput
        )
        return max(cycles, 0.25)

    def _runtime_trip_count(self, loop: Loop, bindings: Dict[str, float]) -> int:
        trip = trip_count_of(
            loop.lower, loop.upper, loop.step, loop.condition_op, bindings
        )
        if trip is not None:
            return int(trip)
        if loop.trip_count is not None:
            return loop.trip_count
        # Bind every unknown symbol in the bounds to the default and retry.
        symbols = {
            ref.name
            for expr in (loop.lower, loop.upper)
            if expr is not None
            for ref in expr.scalar_refs()
        }
        padded = dict(bindings)
        for name in symbols:
            padded.setdefault(name, self.default_symbol_value)
        trip = trip_count_of(
            loop.lower, loop.upper, loop.step, loop.condition_op, padded
        )
        if trip is not None:
            return int(trip)
        return self.default_symbol_value


def _plan_fingerprint(plan: Optional[FunctionVectorPlan]) -> Optional[tuple]:
    """Stable identity of a plan's effective factors (cost-relevant state)."""
    if plan is None:
        return None
    return tuple(
        sorted((loop_id, p.vf, p.interleave) for loop_id, p in plan.plans.items())
    )


def simulate_function(
    function: IRFunction,
    plan: Optional[FunctionVectorPlan] = None,
    machine: Optional[MachineDescription] = None,
    bindings: Optional[Dict[str, float]] = None,
    default_symbol_value: int = 256,
) -> FunctionCost:
    """Convenience wrapper around :class:`Simulator`."""
    simulator = Simulator(
        machine=machine, bindings=bindings, default_symbol_value=default_symbol_value
    )
    return simulator.simulate(function, plan)
