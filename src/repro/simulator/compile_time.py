"""Compilation-time model.

Section 3.4 of the paper observes that over-aggressive factors blow up
compile time (the vectorizer has to emit and register-allocate very wide
bodies), and handles it by capping compilation at 10x the baseline's compile
time and giving the agent a -9 reward when the cap is hit.  The environment
needs an analogue of that behaviour, so this module estimates compile time
as a function of how much code the chosen factors force the compiler to
emit: roughly linear in the body size and superlinear in the number of
physical vector copies (register allocation and scheduling).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.ir.nodes import IRFunction
from repro.machine.description import MachineDescription

if TYPE_CHECKING:  # imported lazily to avoid a package-level import cycle
    from repro.vectorizer.planner import FunctionVectorPlan

#: Fixed front-end + mid-end time per translation unit (seconds).
BASE_COMPILE_SECONDS = 0.05
#: Per-statement lowering/optimisation cost.
PER_STATEMENT_SECONDS = 0.002
#: Per emitted vector copy of each statement.
PER_COPY_SECONDS = 0.0008
#: Superlinear term modelling register allocation / scheduling pressure.
PRESSURE_SECONDS = 0.00012


def estimate_compile_time(
    function: IRFunction,
    plan: Optional[FunctionVectorPlan] = None,
    machine: Optional[MachineDescription] = None,
) -> float:
    """Estimated seconds to compile ``function`` with the given plan."""
    machine = machine or (plan.machine if plan is not None else MachineDescription())
    seconds = BASE_COMPILE_SECONDS
    seconds += PER_STATEMENT_SECONDS * len(function.statements())
    for loop in function.innermost_loops():
        statements = len(loop.statements(recursive=True))
        vf, interleave = 1, 1
        element_bits = 32
        if plan is not None:
            loop_plan = plan.plan_for(loop)
            if loop_plan is not None:
                vf, interleave = loop_plan.vf, loop_plan.interleave
                element_bits = loop_plan.analysis.element_bits
        parts = machine.physical_parts(vf, element_bits)
        copies = parts * interleave
        seconds += PER_COPY_SECONDS * statements * copies
        seconds += PRESSURE_SECONDS * (copies ** 2)
    return seconds


def compile_time_ratio(
    function: IRFunction,
    plan: FunctionVectorPlan,
    baseline_plan: Optional[FunctionVectorPlan] = None,
    machine: Optional[MachineDescription] = None,
) -> float:
    """Compile time of ``plan`` relative to the baseline plan (>1 = slower)."""
    chosen = estimate_compile_time(function, plan, machine)
    baseline = estimate_compile_time(function, baseline_plan, machine)
    return chosen / max(baseline, 1e-9)
