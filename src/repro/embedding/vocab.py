"""Vocabularies over path-context components and identifier normalisation."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.embedding.ast_paths import PathContext
from repro.frontend import ast


@dataclass
class Vocabulary:
    """A string-to-index mapping with an UNK entry at index 0."""

    token_to_index: Dict[str, int] = field(default_factory=dict)
    index_to_token: List[str] = field(default_factory=lambda: ["<UNK>"])

    def __post_init__(self) -> None:
        if not self.token_to_index:
            self.token_to_index = {"<UNK>": 0}

    def __len__(self) -> int:
        return len(self.index_to_token)

    def add(self, token: str) -> int:
        index = self.token_to_index.get(token)
        if index is None:
            index = len(self.index_to_token)
            self.token_to_index[token] = index
            self.index_to_token.append(token)
        return index

    def lookup(self, token: str) -> int:
        """Index of ``token`` (0, the UNK index, when unknown)."""
        return self.token_to_index.get(token, 0)

    def lookup_many(self, tokens: Iterable[str]) -> List[int]:
        return [self.lookup(token) for token in tokens]

    @staticmethod
    def from_counts(counts: Counter, max_size: Optional[int] = None,
                    min_count: int = 1) -> "Vocabulary":
        vocabulary = Vocabulary()
        most_common = counts.most_common(max_size)
        for token, count in most_common:
            if count >= min_count:
                vocabulary.add(token)
        return vocabulary


def normalize_identifiers(node: ast.Node) -> Dict[str, str]:
    """Map identifiers in a loop subtree to role-based canonical names.

    The dataset generator creates many variants of the same loop that differ
    only in variable names; §3.2 of the paper notes renaming was needed so
    that names do not bias the embedding.  Arrays (anything subscripted)
    become ``arr0, arr1, ...``; everything else becomes ``var0, var1, ...``,
    both numbered in first-appearance order.
    """
    arrays: List[str] = []
    scalars: List[str] = []
    for child in node.walk():
        if isinstance(child, ast.ArraySubscript):
            root = child.root_array()
            if root is not None and root.name not in arrays:
                arrays.append(root.name)
    for child in node.walk():
        if isinstance(child, ast.Identifier):
            if child.name not in arrays and child.name not in scalars:
                scalars.append(child.name)
        elif isinstance(child, ast.VarDecl):
            if child.name not in arrays and child.name not in scalars:
                scalars.append(child.name)
    mapping: Dict[str, str] = {}
    for index, name in enumerate(arrays):
        mapping[name] = f"arr{index}"
    for index, name in enumerate(scalars):
        mapping[name] = f"var{index}"
    return mapping


def build_vocabularies(
    context_sets: Sequence[Sequence[PathContext]],
    max_tokens: Optional[int] = 5000,
    max_paths: Optional[int] = 20000,
) -> Tuple[Vocabulary, Vocabulary]:
    """Build (token vocabulary, path vocabulary) from a corpus of loops."""
    token_counts: Counter = Counter()
    path_counts: Counter = Counter()
    for contexts in context_sets:
        for context in contexts:
            token_counts[context.start_token] += 1
            token_counts[context.end_token] += 1
            path_counts[context.path] += 1
    tokens = Vocabulary.from_counts(token_counts, max_tokens)
    paths = Vocabulary.from_counts(path_counts, max_paths)
    return tokens, paths
