"""code2vec-style loop embedding generator.

The paper feeds each loop's source text to code2vec (Alon et al., 2019) and
uses the resulting 340-dimensional code vector as the RL agent's observation.
This package reimplements the relevant pieces:

* :mod:`repro.embedding.ast_paths` — decompose a loop's AST into leaf-to-leaf
  path contexts ``(source token, path, target token)``,
* :mod:`repro.embedding.vocab` — vocabularies over tokens and paths with
  identifier normalisation (the paper notes that renaming parameters was
  crucial to stop names biasing the embedding),
* :mod:`repro.embedding.code2vec` — the attention model that combines path
  contexts into a single fixed-length code vector,
* :mod:`repro.embedding.pretrain` — a self-supervised pretraining task
  (predicting structural loop properties) standing in for code2vec's original
  method-name prediction task.
"""

from repro.embedding.ast_paths import PathContext, extract_path_contexts, loop_tokens
from repro.embedding.vocab import Vocabulary, build_vocabularies, normalize_identifiers
from repro.embedding.code2vec import Code2VecConfig, Code2VecModel
from repro.embedding.pretrain import LoopPropertyLabels, Code2VecPretrainer, loop_property_labels

__all__ = [
    "PathContext",
    "extract_path_contexts",
    "loop_tokens",
    "Vocabulary",
    "build_vocabularies",
    "normalize_identifiers",
    "Code2VecConfig",
    "Code2VecModel",
    "LoopPropertyLabels",
    "Code2VecPretrainer",
    "loop_property_labels",
]
