"""AST path-context extraction (the front half of code2vec).

A *path context* is a triple ``(start_token, path, end_token)`` where the
path is the sequence of AST node labels walked from one leaf up to the lowest
common ancestor and back down to another leaf.  code2vec embeds each of the
three components and lets attention decide which contexts matter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend import ast


@dataclass(frozen=True)
class PathContext:
    """One leaf-to-leaf path through the AST."""

    start_token: str
    path: str
    end_token: str

    def __str__(self) -> str:
        return f"{self.start_token},{self.path},{self.end_token}"


@dataclass
class _Leaf:
    token: str
    #: Node labels from the root of the extracted subtree down to the leaf.
    ancestry: Tuple[str, ...]
    #: Positions (child indices) along the ancestry, to find common prefixes.
    positions: Tuple[int, ...]


def _leaf_token(node: ast.Node) -> Optional[str]:
    """The terminal token a node contributes, or ``None`` for internal nodes."""
    if isinstance(node, ast.Identifier):
        return node.name
    if isinstance(node, ast.IntLiteral):
        return str(node.value)
    if isinstance(node, ast.FloatLiteral):
        return str(node.value)
    if isinstance(node, ast.CharLiteral):
        return f"char_{node.value}"
    if isinstance(node, ast.StringLiteral):
        return "string"
    if isinstance(node, ast.VarDecl):
        return node.name
    if isinstance(node, ast.BreakStmt):
        return "break"
    if isinstance(node, ast.ContinueStmt):
        return "continue"
    return None


def _collect_leaves(
    node: ast.Node,
    ancestry: Tuple[str, ...],
    positions: Tuple[int, ...],
    leaves: List[_Leaf],
) -> None:
    token = _leaf_token(node)
    label = node.label()
    new_ancestry = ancestry + (label,)
    children = [child for child in node.children() if child is not None]
    if token is not None and not children:
        leaves.append(_Leaf(token=token, ancestry=new_ancestry, positions=positions))
        return
    if token is not None:
        # Nodes like VarDecl both carry a token and have children (the init).
        leaves.append(_Leaf(token=token, ancestry=new_ancestry, positions=positions))
    for index, child in enumerate(children):
        _collect_leaves(child, new_ancestry, positions + (index,), leaves)


def extract_path_contexts(
    node: ast.Node,
    max_path_length: int = 8,
    max_path_width: int = 3,
    max_contexts: int = 200,
    rename_map: Optional[Dict[str, str]] = None,
) -> List[PathContext]:
    """Extract path contexts from the AST subtree rooted at ``node``.

    ``max_path_length`` bounds the number of nodes on a path and
    ``max_path_width`` bounds the distance between the two leaves' branches at
    the common ancestor — the same hyperparameters code2vec uses to keep the
    context set small.  ``rename_map`` normalises identifiers so that variable
    naming does not bias the embedding.
    """
    leaves: List[_Leaf] = []
    _collect_leaves(node, (), (), leaves)
    rename_map = rename_map or {}

    contexts: List[PathContext] = []
    for (index_a, leaf_a), (index_b, leaf_b) in itertools.combinations(
        enumerate(leaves), 2
    ):
        if index_b - index_a > 32 and len(contexts) >= max_contexts:
            break
        path = _path_between(leaf_a, leaf_b, max_path_length, max_path_width)
        if path is None:
            continue
        start = rename_map.get(leaf_a.token, leaf_a.token)
        end = rename_map.get(leaf_b.token, leaf_b.token)
        contexts.append(PathContext(start_token=start, path=path, end_token=end))
        if len(contexts) >= max_contexts:
            break
    return contexts


def _path_between(
    leaf_a: _Leaf, leaf_b: _Leaf, max_path_length: int, max_path_width: int
) -> Optional[str]:
    ancestry_a, ancestry_b = leaf_a.ancestry, leaf_b.ancestry
    positions_a, positions_b = leaf_a.positions, leaf_b.positions

    common = 0
    limit = min(len(positions_a), len(positions_b), len(ancestry_a) - 1, len(ancestry_b) - 1)
    while common < limit and positions_a[common] == positions_b[common] and (
        ancestry_a[common] == ancestry_b[common]
    ):
        common += 1
    # Width: how far apart the two branches are under the common ancestor.
    if common < len(positions_a) and common < len(positions_b):
        width = abs(positions_a[common] - positions_b[common])
        if width > max_path_width:
            return None

    up = list(reversed(ancestry_a[common:-1] + (ancestry_a[-1],)))
    down = list(ancestry_b[common:-1] + (ancestry_b[-1],))
    # The common ancestor label sits at ancestry[common - 1] (or the root).
    ancestor = ancestry_a[common - 1] if common > 0 else ancestry_a[0]
    nodes = up[:-0] if False else up
    path_labels = nodes + [ancestor] + down
    if len(path_labels) > max_path_length:
        return None
    up_part = "^".join(_strip_label(label) for label in up)
    down_part = "_".join(_strip_label(label) for label in down)
    return f"{up_part}^{_strip_label(ancestor)}_{down_part}"


def _strip_label(label: str) -> str:
    """Drop value payloads from labels so paths generalise (Name:x -> Name)."""
    return label.split(":", 1)[0]


def loop_tokens(node: ast.Node) -> List[str]:
    """All terminal tokens of the subtree, in source order (used for vocab
    statistics and identifier normalisation)."""
    leaves: List[_Leaf] = []
    _collect_leaves(node, (), (), leaves)
    return [leaf.token for leaf in leaves]
