"""Self-supervised pretraining of the embedding network.

The original code2vec is pretrained on method-name prediction over millions
of Java methods; no such corpus is available offline, so the embedding is
pretrained to predict *structural loop properties* that are computed directly
from the analysis passes (reduction presence, access-pattern class, element
type, nesting depth, predication).  The pretext task forces the code vector
to separate loops along exactly the axes that matter for choosing VF/IF,
which is the property the RL agent relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.loopinfo import LoopAnalysis
from repro.embedding.ast_paths import PathContext
from repro.embedding.code2vec import Code2VecModel
from repro.nn import ops
from repro.nn.layers import Dense, Module
from repro.nn.losses import cross_entropy_loss
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor


#: The pretraining heads: name -> number of classes.
PROPERTY_HEADS: Dict[str, int] = {
    "has_reduction": 2,
    "access_kind": 4,      # contiguous / strided / gather / none
    "element_width": 4,    # 8 / 16 / 32 / 64 bit
    "is_float": 2,
    "has_predicate": 2,
    "nest_depth": 4,       # 1 / 2 / 3 / deeper
}


@dataclass
class LoopPropertyLabels:
    """Integer labels for each pretraining head."""

    has_reduction: int
    access_kind: int
    element_width: int
    is_float: int
    has_predicate: int
    nest_depth: int

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


def loop_property_labels(analysis: LoopAnalysis) -> LoopPropertyLabels:
    """Derive pretraining labels from a loop analysis (no human labels)."""
    if analysis.gather_accesses:
        access_kind = 2
    elif analysis.strided_accesses:
        access_kind = 1
    elif analysis.contiguous_accesses:
        access_kind = 0
    else:
        access_kind = 3
    width_map = {8: 0, 16: 1, 32: 2, 64: 3}
    is_float = int(
        any(p.access.dtype.is_float for p in analysis.access_patterns)
        or any(r.is_float for r in analysis.reductions)
    )
    depth = min(4, len(analysis.enclosing_vars) + 1)
    return LoopPropertyLabels(
        has_reduction=int(analysis.has_reduction),
        access_kind=access_kind,
        element_width=width_map.get(analysis.element_bits, 2),
        is_float=is_float,
        has_predicate=int(analysis.has_predicates),
        nest_depth=depth - 1,
    )


class _PropertyHeads(Module):
    """Linear classification heads on top of the code vector."""

    def __init__(self, code_dim: int, rng: np.random.Generator):
        self.heads: Dict[str, Dense] = {
            name: Dense(code_dim, classes, rng=rng)
            for name, classes in PROPERTY_HEADS.items()
        }

    def forward(self, code_vector: Tensor) -> Dict[str, Tensor]:
        batched = ops.reshape(code_vector, (1, -1))
        return {name: head(batched) for name, head in self.heads.items()}


@dataclass
class PretrainResult:
    """Loss curve and final per-head accuracy of a pretraining run."""

    losses: List[float] = field(default_factory=list)
    accuracy: Dict[str, float] = field(default_factory=dict)
    steps: int = 0


class Code2VecPretrainer:
    """Trains a :class:`Code2VecModel` on the loop-property pretext task."""

    def __init__(
        self,
        model: Code2VecModel,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ):
        self.model = model
        rng = np.random.default_rng(seed)
        self.heads = _PropertyHeads(model.config.code_vector_dim, rng)
        self.optimizer = Adam(
            self.model.parameters() + self.heads.parameters(), learning_rate
        )
        self.rng = np.random.default_rng(seed)

    def train(
        self,
        context_bags: Sequence[Sequence[PathContext]],
        labels: Sequence[LoopPropertyLabels],
        epochs: int = 3,
        log_every: int = 0,
    ) -> PretrainResult:
        """Run pretraining over the corpus; returns the loss curve."""
        if len(context_bags) != len(labels):
            raise ValueError("context_bags and labels must be the same length")
        result = PretrainResult()
        indices = np.arange(len(context_bags))
        for _ in range(epochs):
            self.rng.shuffle(indices)
            for index in indices:
                loss_value = self._train_one(context_bags[index], labels[index])
                result.losses.append(loss_value)
                result.steps += 1
        result.accuracy = self.evaluate(context_bags, labels)
        return result

    def _train_one(
        self, contexts: Sequence[PathContext], label: LoopPropertyLabels
    ) -> float:
        code_vector = self.model(contexts)
        logits = self.heads(code_vector)
        label_dict = label.as_dict()
        total: Optional[Tensor] = None
        for name, head_logits in logits.items():
            loss = cross_entropy_loss(head_logits, np.array([label_dict[name]]))
            total = loss if total is None else ops.add(total, loss)
        self.optimizer.zero_grad()
        total.backward()
        self.optimizer.clip_gradients(5.0)
        self.optimizer.step()
        return float(total.item())

    def evaluate(
        self,
        context_bags: Sequence[Sequence[PathContext]],
        labels: Sequence[LoopPropertyLabels],
    ) -> Dict[str, float]:
        """Per-head accuracy over a labelled corpus."""
        correct: Dict[str, int] = {name: 0 for name in PROPERTY_HEADS}
        for contexts, label in zip(context_bags, labels):
            code_vector = Tensor(self.model.embed(contexts))
            logits = self.heads(code_vector)
            label_dict = label.as_dict()
            for name, head_logits in logits.items():
                predicted = int(np.argmax(head_logits.numpy()))
                correct[name] += int(predicted == label_dict[name])
        count = max(1, len(context_bags))
        return {name: correct[name] / count for name in PROPERTY_HEADS}
