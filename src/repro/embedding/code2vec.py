"""The code2vec attention model over path contexts.

Architecture (Alon et al. 2019, as used by the paper):

1. embed the start token, the path and the end token of every context,
2. concatenate and pass through a fully connected layer with tanh to get a
   *combined context vector*,
3. compute attention weights with a learned global attention vector,
4. the *code vector* is the attention-weighted sum of combined context
   vectors (340 features, matching §3.1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.embedding.ast_paths import PathContext
from repro.embedding.vocab import Vocabulary
from repro.nn import ops
from repro.nn.layers import Dense, Module, Parameter
from repro.nn.initializers import normal_init
from repro.nn.tensor import Tensor


@dataclass
class Code2VecConfig:
    """Hyperparameters of the embedding network."""

    token_embedding_dim: int = 64
    path_embedding_dim: int = 64
    code_vector_dim: int = 340
    max_contexts: int = 200
    dropout_keep: float = 1.0
    seed: int = 0


class Code2VecModel(Module):
    """Maps a bag of path contexts to a fixed-length code vector."""

    def __init__(
        self,
        token_vocab: Vocabulary,
        path_vocab: Vocabulary,
        config: Optional[Code2VecConfig] = None,
    ):
        self.config = config or Code2VecConfig()
        self.token_vocab = token_vocab
        self.path_vocab = path_vocab
        rng = np.random.default_rng(self.config.seed)
        token_dim = self.config.token_embedding_dim
        path_dim = self.config.path_embedding_dim
        code_dim = self.config.code_vector_dim

        self.token_embeddings = Parameter(
            normal_init(rng, (len(token_vocab), token_dim), scale=0.1),
            name="token_embeddings",
        )
        self.path_embeddings = Parameter(
            normal_init(rng, (len(path_vocab), path_dim), scale=0.1),
            name="path_embeddings",
        )
        self.combine = Dense(
            2 * token_dim + path_dim, code_dim, activation="tanh", rng=rng
        )
        self.attention = Parameter(
            normal_init(rng, (code_dim, 1), scale=0.1), name="attention"
        )

    # -- encoding ---------------------------------------------------------------

    def encode_indices(self, contexts: Sequence[PathContext]):
        """Vocabulary indices (starts, paths, ends) for a context bag."""
        contexts = list(contexts)[: self.config.max_contexts]
        if not contexts:
            return np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64), np.zeros(
                1, dtype=np.int64
            )
        starts = np.array(
            [self.token_vocab.lookup(c.start_token) for c in contexts], dtype=np.int64
        )
        paths = np.array(
            [self.path_vocab.lookup(c.path) for c in contexts], dtype=np.int64
        )
        ends = np.array(
            [self.token_vocab.lookup(c.end_token) for c in contexts], dtype=np.int64
        )
        return starts, paths, ends

    def forward(self, contexts: Sequence[PathContext]) -> Tensor:
        """The code vector for one loop (shape ``(code_vector_dim,)``)."""
        starts, paths, ends = self.encode_indices(contexts)
        start_vectors = ops.gather_rows(self.token_embeddings, starts)
        path_vectors = ops.gather_rows(self.path_embeddings, paths)
        end_vectors = ops.gather_rows(self.token_embeddings, ends)
        combined_inputs = ops.concatenate(
            [start_vectors, path_vectors, end_vectors], axis=-1
        )
        combined = self.combine(combined_inputs)  # (contexts, code_dim)
        scores = ops.matmul(combined, self.attention)  # (contexts, 1)
        weights = ops.softmax(ops.reshape(scores, (1, -1)), axis=-1)  # (1, contexts)
        code_vector = ops.matmul(weights, combined)  # (1, code_dim)
        return ops.reshape(code_vector, (self.config.code_vector_dim,))

    def embed(self, contexts: Sequence[PathContext]) -> np.ndarray:
        """Inference-mode embedding as a plain numpy vector."""
        from repro.nn.tensor import no_grad

        with no_grad():
            return self.forward(contexts).numpy().copy()

    def embed_batch(self, bags: Sequence[Sequence[PathContext]]) -> np.ndarray:
        """Embeddings for many loops, stacked row-wise."""
        return np.stack([self.embed(bag) for bag in bags], axis=0)

    def attention_weights(self, contexts: Sequence[PathContext]) -> np.ndarray:
        """The attention distribution over contexts (for interpretability)."""
        from repro.nn.tensor import no_grad

        with no_grad():
            starts, paths, ends = self.encode_indices(contexts)
            start_vectors = ops.gather_rows(self.token_embeddings, starts)
            path_vectors = ops.gather_rows(self.path_embeddings, paths)
            end_vectors = ops.gather_rows(self.token_embeddings, ends)
            combined = self.combine(
                ops.concatenate([start_vectors, path_vectors, end_vectors], axis=-1)
            )
            scores = ops.matmul(combined, self.attention)
            weights = ops.softmax(ops.reshape(scores, (1, -1)), axis=-1)
            return weights.numpy().reshape(-1).copy()
