"""Worker-process side of the sharded evaluation service.

Each worker hosts its **own** :class:`CompileAndMeasure` pipeline, so the
IR cache, simulator memos and per-statement cost tables it builds for a
kernel stay hot inside that worker.  The service shards requests by kernel
content hash, which keeps all queries for one kernel on one worker and
makes those memos as effective as in the serial path.

Kernels travel as plain ``dict`` payloads (source text + bindings), not as
:class:`LoopKernel` objects: payloads pickle identically under ``fork`` and
``spawn`` start methods and carry none of the kernel's lazily-built AST/IR
caches across the process boundary.  A payload is shipped at most once per
(worker, kernel) — later requests reference the content hash alone.

Requests carry the owning :class:`repro.tasks.OptimizationTask` *name* and
a generic action tuple; workers resolve the task from the registry and run
``task.evaluate`` — the exact code path the serial batcher runs — so a
sharded evaluation is byte-identical to a serial one for every task.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.datasets.kernels import LoopKernel


def kernel_payload(kernel: LoopKernel) -> dict:
    """The process-portable representation of a kernel."""
    return {
        "name": kernel.name,
        "source": kernel.source,
        "function_name": kernel.function_name,
        "suite": kernel.suite,
        "bindings": dict(kernel.bindings),
        "description": kernel.description,
    }


def kernel_from_payload(payload: dict) -> LoopKernel:
    return LoopKernel(
        name=payload["name"],
        source=payload["source"],
        function_name=payload["function_name"],
        suite=payload.get("suite", "synthetic"),
        bindings=dict(payload.get("bindings", {})),
        description=payload.get("description", ""),
    )


@dataclass
class WorkRequest:
    """One reward query dispatched to a worker.

    ``payload`` is ``None`` when this worker has already been sent the
    kernel with ``kernel_hash`` (the worker keeps them by hash).  ``task``
    names the optimization task whose ``evaluate`` interprets ``action``;
    ``task_payload`` carries the pickled task *object* the first time a
    worker sees that name, so tasks registered only in the parent process
    (user-defined, never imported by ``repro.tasks``) still evaluate in
    workers.  Later requests reference the name alone; the in-tree registry
    is the fallback.
    """

    request_id: int
    kernel_hash: str
    payload: Optional[dict]
    site_index: int
    action: Tuple[int, ...]
    task: str
    task_payload: Optional[object] = None
    #: ``"site"`` — evaluate one action at one site (the original reward
    #: query).  ``"apply"`` — run the task's whole-kernel application
    #: (baseline + full decision map) against a fresh worker-local cache
    #: and ship every measurement entry back (the comparison fan-out).
    kind: str = "site"
    #: The full ``{site: action}`` decision map for ``kind == "apply"``.
    decisions: Optional[Dict[int, Tuple[int, ...]]] = None


@dataclass
class WorkResult:
    """A worker's answer; ``error`` carries a formatted traceback on failure."""

    request_id: int
    worker_id: int
    cycles: float = 0.0
    compile_seconds: float = 0.0
    error: Optional[str] = None
    #: ``kind == "apply"`` answers: the ``(RewardKey, CachedMeasurement)``
    #: entries the application generated, for the parent to merge into the
    #: shared cache.
    entries: Optional[list] = None


def worker_main(
    worker_id: int,
    machine,
    default_symbol_value: int,
    inbox,
    outbox,
) -> None:
    """Process entry point: evaluate requests until a ``None`` sentinel.

    Importing the pipeline and task registry here (not at module import)
    keeps the service importable even where the spawn start method
    re-imports this module before the package's heavier dependencies are
    needed.
    """
    from repro.cache.reward_cache import RewardCache
    from repro.core.pipeline import CompileAndMeasure
    from repro.tasks import get_task

    pipeline = CompileAndMeasure(
        machine=machine, default_symbol_value=default_symbol_value
    )
    kernels: Dict[str, LoopKernel] = {}
    tasks: Dict[str, object] = {}
    while True:
        request = inbox.get()
        if request is None:
            break
        try:
            if request.payload is not None:
                kernels[request.kernel_hash] = kernel_from_payload(request.payload)
            kernel = kernels[request.kernel_hash]
            if request.task_payload is not None:
                tasks[request.task] = request.task_payload
            task = tasks.get(request.task)
            if task is None:
                task = tasks[request.task] = get_task(request.task)
            if getattr(request, "kind", "site") == "apply":
                # A whole-kernel application: run exactly the serial path
                # (cached baseline + ``task.apply``) against a fresh local
                # cache, then ship every entry it produced back to the
                # parent — the per-request cache means the entry list is
                # precisely this application's measurements, nothing more.
                local = RewardCache()
                local.measure_baseline(pipeline, kernel)
                task.apply(
                    pipeline,
                    kernel,
                    dict(request.decisions or {}),
                    reward_cache=local,
                )
                outbox.put(
                    WorkResult(
                        request_id=request.request_id,
                        worker_id=worker_id,
                        entries=local.items(),
                    )
                )
                continue
            result = task.evaluate(
                pipeline, kernel, request.site_index, tuple(request.action)
            )
            outbox.put(
                WorkResult(
                    request_id=request.request_id,
                    worker_id=worker_id,
                    cycles=result.cycles,
                    compile_seconds=result.compile_seconds,
                )
            )
        except Exception:
            outbox.put(
                WorkResult(
                    request_id=request.request_id,
                    worker_id=worker_id,
                    error=traceback.format_exc(),
                )
            )
