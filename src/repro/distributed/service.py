"""Sharded, future-based reward evaluation over a worker-process pool.

:class:`EvaluationService` is the single entry point every reward consumer
(environment, agents, the PPO trainer) routes batched queries through:

* ``workers == 0`` — the serial in-process fallback: requests go through a
  plain :class:`EvaluationBatcher`, byte-identical to the PR-1 path.
* ``workers >= 1`` — unique cache misses are dispatched to a pool of
  worker processes, **sharded by kernel content hash** so each kernel's
  simulator/IR memos live on exactly one worker and stay hot.

``submit`` returns an :class:`EvaluationFuture` immediately; results are
collected lazily, which is what lets a training loop overlap simulation
with policy inference (see :mod:`repro.distributed.async_api`).  Requests
are deduplicated against the cache, against each other, *and against
queries still in flight from earlier futures* — a key is never evaluated
twice no matter how batches interleave.
"""

from __future__ import annotations

import queue as queue_module
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.cache.reward_cache import (
    WHOLE_FUNCTION_APPLICATION,
    BatchOutcome,
    CachedMeasurement,
    EvaluationBatcher,
    RewardCache,
    RewardKey,
    normalize_requests,
)
from repro.distributed.config import EvaluationServiceConfig
from repro.distributed.worker import WorkRequest, kernel_payload, worker_main

if TYPE_CHECKING:
    from repro.core.pipeline import CompileAndMeasure
    from repro.datasets.kernels import LoopKernel
    from repro.tasks.base import OptimizationTask

#: One reward query: the generic (kernel, site index, action tuple) triple
#: or the legacy (kernel, innermost-loop index, VF, IF) 4-tuple.
EvaluationRequest = Tuple


@dataclass
class ServiceStats:
    """Dispatch accounting for one :class:`EvaluationService`."""

    dispatched: int = 0
    completed: int = 0
    errors: int = 0
    serial_batches: int = 0
    serial_requests: int = 0
    per_worker_dispatched: Dict[int, int] = field(default_factory=dict)
    per_worker_completed: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "dispatched": float(self.dispatched),
            "completed": float(self.completed),
            "errors": float(self.errors),
            "serial_batches": float(self.serial_batches),
            "serial_requests": float(self.serial_requests),
        }


class EvaluationFuture:
    """Outcomes of one submitted batch, filled as workers answer.

    ``result()`` blocks (draining the service's result queue) until every
    slot is filled, then returns :class:`BatchOutcome` objects in request
    order — the same contract as ``EvaluationBatcher.flush``.
    """

    def __init__(self, service: "EvaluationService", size: int):
        self._service = service
        self._outcomes: List[Optional[BatchOutcome]] = [None] * size
        self._remaining = size
        self._errors: List[str] = []

    def __len__(self) -> int:
        return len(self._outcomes)

    def done(self) -> bool:
        return self._remaining == 0

    def result(self) -> List[BatchOutcome]:
        self._service._drain_until(self)
        if self._errors:
            raise RuntimeError(
                f"{len(self._errors)} evaluation request(s) failed in workers; "
                f"first failure:\n{self._errors[0]}"
            )
        return list(self._outcomes)  # type: ignore[arg-type]

    # -- service-side plumbing --------------------------------------------

    def _fill(self, slot: int, outcome: BatchOutcome) -> None:
        if self._outcomes[slot] is None:
            self._remaining -= 1
        self._outcomes[slot] = outcome

    def _fail(self, slot: int, message: str) -> None:
        self._remaining -= 1
        self._errors.append(message)


class EvaluationService:
    """Batched reward evaluation, sharded across worker processes.

    The service owns neither the pipeline nor the cache — both may be (and
    usually are) shared with the rest of the run, so workers' results are
    visible to every in-process consumer the moment they land.
    """

    def __init__(
        self,
        pipeline: "CompileAndMeasure",
        cache: Optional[RewardCache] = None,
        workers: int = 0,
        result_timeout: float = 120.0,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self.pipeline = pipeline
        self.cache = RewardCache() if cache is None else cache
        self.workers = int(workers)
        self.result_timeout = result_timeout
        self.stats = ServiceStats()
        self._processes: List = []
        self._inboxes: List = []
        self._outbox = None
        self._shipped: List[set] = []
        # Per worker: task name -> id() of the instance last shipped there.
        self._shipped_tasks: List[Dict[str, int]] = []
        self._next_request_id = 0
        self._pending: Dict[int, RewardKey] = {}
        self._waiters: Dict[RewardKey, List[Tuple[EvaluationFuture, int]]] = {}
        # Whole-kernel application fan-out (measure_applications): in-flight
        # jobs by request id, jobs already fanned out this service lifetime
        # (so repeat comparisons don't re-dispatch), and collected failures.
        self._pending_apply: Dict[int, RewardKey] = {}
        self._applied: set = set()
        self._apply_errors: List[Tuple[RewardKey, str]] = []
        if self.workers > 0:
            self._start_workers()

    @classmethod
    def from_config(
        cls,
        pipeline: "CompileAndMeasure",
        config: EvaluationServiceConfig,
        cache: Optional[RewardCache] = None,
    ) -> "EvaluationService":
        """Build the service (and its cache/store) from one config object."""
        if cache is None:
            if config.cache_dir:
                from repro.distributed.store import DiskBackedRewardCache

                cache = DiskBackedRewardCache.open(
                    config.cache_dir,
                    max_entries=config.max_entries,
                    flush_every=config.flush_every,
                )
            else:
                cache = RewardCache(max_entries=config.max_entries)
        return cls(
            pipeline,
            cache,
            workers=config.workers,
            result_timeout=config.result_timeout,
        )

    # -- lifecycle ---------------------------------------------------------

    def _start_workers(self) -> None:
        import multiprocessing

        # fork is cheapest and always available on the Linux targets; fall
        # back to the platform default (spawn) elsewhere — the worker entry
        # point and payloads are written to survive either.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        self._outbox = context.Queue()
        for worker_id in range(self.workers):
            inbox = context.Queue()
            process = context.Process(
                target=worker_main,
                args=(
                    worker_id,
                    self.pipeline.machine,
                    self.pipeline.default_symbol_value,
                    inbox,
                    self._outbox,
                ),
                daemon=True,
                name=f"reward-eval-worker-{worker_id}",
            )
            process.start()
            self._processes.append(process)
            self._inboxes.append(inbox)
            self._shipped.append(set())
            self._shipped_tasks.append({})

    def close(self) -> None:
        """Stop all workers.  Safe to call more than once.

        Call only after every outstanding future has been resolved; pending
        requests are abandoned, not re-run.
        """
        if not self._processes:
            return
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5)
        for inbox in self._inboxes:
            inbox.cancel_join_thread()
            inbox.close()
        if self._outbox is not None:
            self._outbox.cancel_join_thread()
            self._outbox.close()
        self._processes = []
        self._inboxes = []
        self._outbox = None

    def __enter__(self) -> "EvaluationService":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; explicit close() is the API
        try:
            self.close()
        except Exception:
            pass

    # -- submission --------------------------------------------------------

    def evaluate(
        self,
        requests: Sequence[EvaluationRequest],
        task: Optional["OptimizationTask"] = None,
    ) -> List[BatchOutcome]:
        """Synchronous evaluation: ``submit(...)`` then wait."""
        return self.submit(requests, task=task).result()

    def submit(
        self,
        requests: Sequence[EvaluationRequest],
        task: Optional["OptimizationTask"] = None,
    ) -> EvaluationFuture:
        """Enqueue a batch of reward queries and return a future.

        ``task`` is the optimization task the actions belong to (the
        vectorization default covers the legacy 4-tuple requests).  With
        workers the call returns immediately after dispatching the unique
        misses; serially (``workers == 0``) the batch is evaluated before
        returning and the future is already done.
        """
        if self.workers > 0 and not self._processes:
            raise RuntimeError(
                "evaluation service is closed; create a new one to submit"
            )
        if task is None:
            from repro.tasks import resolve_task

            task = resolve_task(None)
        future = EvaluationFuture(self, len(requests))
        if self.workers == 0:
            batcher = EvaluationBatcher(self.pipeline, self.cache, task=task)
            for kernel, site_index, action in normalize_requests(requests):
                batcher.add_action(kernel, site_index, action)
            self.stats.serial_batches += 1
            self.stats.serial_requests += len(requests)
            for slot, outcome in enumerate(batcher.flush()):
                future._fill(slot, outcome)
            return future
        for slot, (kernel, site_index, action) in enumerate(
            normalize_requests(requests)
        ):
            action = task.cache_key(action)
            key = self.cache.key_for(
                kernel,
                self.pipeline.machine,
                site_index,
                default_symbol_value=self.pipeline.default_symbol_value,
                action=action,
                task=task.name,
            )
            cached = self.cache.get(key)
            if cached is not None:
                future._fill(slot, BatchOutcome(cached, True))
                continue
            waiters = self._waiters.get(key)
            if waiters is not None:
                # Already in flight (earlier in this batch or a previous
                # still-unresolved future): the get() above counted a miss,
                # correct it to a dedup — exactly the batcher's accounting.
                self.cache.stats.misses -= 1
                self.cache.stats.batch_deduplicated += 1
                waiters.append((future, slot))
                continue
            self._waiters[key] = [(future, slot)]
            self._dispatch(key, kernel, int(site_index), action, task)
        return future

    def _dispatch(
        self,
        key: RewardKey,
        kernel: "LoopKernel",
        site_index: int,
        action: Tuple[int, ...],
        task: "OptimizationTask",
    ) -> None:
        shard = int(key.kernel_hash[:8], 16) % self.workers
        payload = None
        if key.kernel_hash not in self._shipped[shard]:
            payload = kernel_payload(kernel)
            self._shipped[shard].add(key.kernel_hash)
        # Ship the task object once per (worker, task name, instance):
        # workers then hold the exact instance this process uses, so tasks
        # registered only here (or configured differently from the registry
        # default) still evaluate correctly in the shards.  Re-shipped when
        # a *different* instance reuses the name, so a reconfigured task
        # never evaluates under a stale predecessor.  (In-place mutation of
        # a shipped task between submits is not detectable — don't.)
        task_payload = None
        if self._shipped_tasks[shard].get(task.name) != id(task):
            task_payload = task
            self._shipped_tasks[shard][task.name] = id(task)
        request_id = self._next_request_id
        self._next_request_id += 1
        self._pending[request_id] = key
        self.stats.dispatched += 1
        self.stats.per_worker_dispatched[shard] = (
            self.stats.per_worker_dispatched.get(shard, 0) + 1
        )
        self._inboxes[shard].put(
            WorkRequest(
                request_id,
                key.kernel_hash,
                payload,
                site_index,
                action,
                task.name,
                task_payload,
            )
        )

    # -- whole-kernel application fan-out -----------------------------------

    def measure_applications(self, task: "OptimizationTask", jobs, detail: bool = False):
        """Fan whole-kernel task applications out across the worker shards.

        ``jobs`` is a sequence of ``(kernel, decisions)`` pairs.  Each
        unique job (canonicalized by the application's flattened-decision
        cache key) runs ``measure_baseline`` + ``task.apply`` inside the
        worker owning the kernel's shard, against a fresh worker-local
        cache; every measurement entry the application produced is shipped
        back and merged into the shared cache.  A serial pass re-running
        the same applications afterwards is then pure lookups — which is
        how :meth:`repro.evaluation.comparison.ComparisonRunner.run`
        parallelizes per kernel while staying byte-identical to serial.

        Returns the number of jobs dispatched (0 when the service is
        serial, or every job was already fanned out by an earlier call) —
        or, with ``detail=True``, a per-job list of booleans (``True``
        when that job was dispatched to a worker) so callers can tell
        which jobs actually cost a simulation this call.
        Raises if any worker failed; failed jobs become retryable again.
        """
        if self.workers == 0 or not jobs:
            return [False] * len(jobs or []) if detail else 0
        if not self._processes:
            raise RuntimeError(
                "evaluation service is closed; create a new one to submit"
            )
        flags: List[bool] = []
        outstanding: set = set()
        for kernel, decisions in jobs:
            flattened: List[int] = []
            for site_index in sorted(decisions):
                flattened.append(int(site_index))
                flattened.extend(int(value) for value in decisions[site_index])
            key = self.cache.key_for(
                kernel,
                self.pipeline.machine,
                WHOLE_FUNCTION_APPLICATION,
                default_symbol_value=self.pipeline.default_symbol_value,
                action=tuple(flattened),
                task=task.name,
            )
            if key in self._applied:
                flags.append(False)
                continue
            self._applied.add(key)
            shard = int(key.kernel_hash[:8], 16) % self.workers
            payload = None
            if key.kernel_hash not in self._shipped[shard]:
                payload = kernel_payload(kernel)
                self._shipped[shard].add(key.kernel_hash)
            task_payload = None
            if self._shipped_tasks[shard].get(task.name) != id(task):
                task_payload = task
                self._shipped_tasks[shard][task.name] = id(task)
            request_id = self._next_request_id
            self._next_request_id += 1
            self._pending_apply[request_id] = key
            outstanding.add(request_id)
            self.stats.dispatched += 1
            self.stats.per_worker_dispatched[shard] = (
                self.stats.per_worker_dispatched.get(shard, 0) + 1
            )
            self._inboxes[shard].put(
                WorkRequest(
                    request_id,
                    key.kernel_hash,
                    payload,
                    WHOLE_FUNCTION_APPLICATION,
                    tuple(flattened),
                    task.name,
                    task_payload,
                    kind="apply",
                    decisions={
                        int(site): tuple(int(v) for v in action)
                        for site, action in decisions.items()
                    },
                )
            )
            flags.append(True)
        while any(rid in self._pending_apply for rid in outstanding):
            self._drain_one()
        if self._apply_errors:
            errors, self._apply_errors = self._apply_errors, []
            for key, _message in errors:
                self._applied.discard(key)
            raise RuntimeError(
                f"{len(errors)} application job(s) failed in workers; "
                f"first failure:\n{errors[0][1]}"
            )
        return flags if detail else sum(flags)

    # -- result collection -------------------------------------------------

    def _drain_until(self, future: EvaluationFuture) -> None:
        while not future.done():
            self._drain_one()

    def _drain_one(self) -> None:
        # ``result_timeout`` is a liveness-check interval, not a deadline: a
        # slow simulation on a healthy worker just waits another round; only
        # an actually-dead worker (whose results would never come) is fatal.
        while True:
            try:
                result = self._outbox.get(timeout=self.result_timeout)
                break
            except queue_module.Empty:
                dead = [
                    process.name
                    for process in self._processes
                    if not process.is_alive()
                ]
                if dead:
                    raise RuntimeError(
                        f"evaluation worker(s) died: {dead} "
                        f"({len(self._pending)} request(s) outstanding)"
                    )
        if result.request_id in self._pending_apply:
            key = self._pending_apply.pop(result.request_id)
            self.stats.completed += 1
            self.stats.per_worker_completed[result.worker_id] = (
                self.stats.per_worker_completed.get(result.worker_id, 0) + 1
            )
            if result.error is not None:
                self.stats.errors += 1
                self._apply_errors.append((key, result.error))
                return
            for entry_key, measurement in result.entries or []:
                # peek() not get(): merging shipped entries is plumbing,
                # not a lookup, and skipping already-present keys keeps a
                # disk-backed store from appending duplicate records.
                if self.cache.peek(entry_key) is None:
                    self.cache.put(entry_key, measurement)
            return
        key = self._pending.pop(result.request_id)
        waiters = self._waiters.pop(key, [])
        self.stats.completed += 1
        self.stats.per_worker_completed[result.worker_id] = (
            self.stats.per_worker_completed.get(result.worker_id, 0) + 1
        )
        if result.error is not None:
            self.stats.errors += 1
            for waiting_future, slot in waiters:
                waiting_future._fail(slot, result.error)
            return
        measurement = CachedMeasurement(
            cycles=result.cycles, compile_seconds=result.compile_seconds
        )
        self.cache.put(key, measurement)
        for position, (waiting_future, slot) in enumerate(waiters):
            waiting_future._fill(slot, BatchOutcome(measurement, position > 0))
