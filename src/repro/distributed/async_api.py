"""Future-based reward evaluation for rollout/inference overlap.

PPO rollout collection alternates two unrelated costs: the policy network
computing actions (pure NumPy in the training process) and the simulator
computing rewards (CPU-heavy, shardable).  :class:`AsyncEvaluator` lets the
trainer submit one chunk's reward queries and immediately start acting on
the next chunk while worker processes simulate the first — with a parallel
:class:`EvaluationService` the two genuinely overlap; without one the API
degrades to the plain synchronous path with identical results.

Generic over the environment's optimization task(s): raw policy actions are
decoded once (through each sample's own task space — a
:class:`repro.rl.env.MultiTaskEnv` routes per tag), and the decoded
task-action tuples travel through the service exactly as the serial path
would send them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.rl.env import EnvSample, StepResult, VectorizationEnv


class RewardFuture:
    """Pending rewards for one submitted chunk of ``(sample, action)`` pairs.

    ``result()`` returns :class:`StepResult` objects in submission order,
    applying the owning environment's reward rule (compile-time penalty
    included) to the raw measurements as they arrive.
    """

    def __init__(
        self,
        env: VectorizationEnv,
        requests: Sequence[Tuple[EnvSample, Tuple[int, ...]]],
        service_future=None,
        eager_results: Optional[List[Tuple[float, dict]]] = None,
    ):
        self._env = env
        self._requests = list(requests)
        self._service_future = service_future
        self._eager_results = eager_results

    def __len__(self) -> int:
        return len(self._requests)

    def done(self) -> bool:
        if self._service_future is not None:
            return self._service_future.done()
        return self._eager_results is not None

    def result(self) -> List[StepResult]:
        if self._service_future is not None:
            outcomes = self._service_future.result()
            return [
                StepResult(
                    *self._env._reward_from_measurement(
                        sample, action, outcome.measurement, outcome.was_cached
                    )
                )
                for (sample, action), outcome in zip(self._requests, outcomes)
            ]
        if self._eager_results is None:
            # No service at all: evaluate on first demand through the
            # environment's serial batched path.
            self._eager_results = self._env.evaluate_actions_batch(self._requests)
        return [
            StepResult(reward=reward, info=info)
            for reward, info in self._eager_results
        ]


class AsyncEvaluator:
    """Submit reward queries for an environment without blocking on them.

    Wraps a :class:`VectorizationEnv`; uses the environment's attached
    :class:`EvaluationService` when it has parallel workers, and falls back
    to deferred serial evaluation otherwise.  Bookkeeping (``total_steps``,
    episode state) mirrors ``VectorizationEnv.evaluate_batch`` so the two
    paths are interchangeable.
    """

    def __init__(self, env: VectorizationEnv, policy=None):
        self.env = env
        self.service = getattr(env, "evaluation_service", None)
        # With a fleet-backed service that speculates (prefetch_top_k > 0)
        # and a policy to rank actions with, warm the cache with the
        # policy's likely next actions after every submission — the fleet
        # evaluates them while the trainer is busy inferring/updating.
        self.prefetcher = None
        if (
            policy is not None
            and self.service is not None
            and int(getattr(self.service, "prefetch_top_k", 0) or 0) > 0
            and hasattr(self.service, "prefetch")
        ):
            from repro.fleet.prefetch import SpeculativePrefetcher

            self.prefetcher = SpeculativePrefetcher(env, policy, self.service)

    @property
    def overlapping(self) -> bool:
        """Whether submissions are actually evaluated in the background."""
        return self.service is not None and self.service.workers > 0

    def submit(self, pairs: Sequence[Tuple[EnvSample, object]]) -> RewardFuture:
        """Queue ``(sample, raw_action)`` pairs for evaluation.

        Decoding and service submission are delegated to the environment
        (``decode_batch``/``submit_requests``), which routes each request
        through its sample's own task — single- and multi-task envs share
        this one path.
        """
        requests = self.env.decode_batch(pairs)
        self.env.total_steps += len(pairs)
        self.env._current = None
        if self.overlapping:
            service_future = self.env.submit_requests(self.service, requests)
            if self.prefetcher is not None:
                self.prefetcher.prefetch()
            return RewardFuture(self.env, requests, service_future=service_future)
        return RewardFuture(self.env, requests)
