"""Disk persistence for reward measurements: cross-run cache reuse.

The in-memory :class:`repro.cache.RewardCache` dies with its process; this
module gives it a durable backing so a second run over the same kernels
recompiles nothing at all.

* :class:`PersistentRewardStore` — an append-only directory of JSONL
  *segment* files.  Every writer appends to its **own** segment (named with
  its pid plus a random token), so concurrent runs sharing one ``cache_dir``
  merge on load instead of clobbering each other.  Segments carry a schema
  header; loading tolerates truncated tails and corrupt lines (a crash
  mid-append loses at most the final record) and skips whole segments
  written by a newer incompatible schema.
* :class:`DiskBackedRewardCache` — a :class:`RewardCache` that preloads the
  store on construction and appends every new measurement, making the disk
  layer transparent to every existing consumer of the cache API.

Records are keyed by the same content fingerprints as the in-memory cache
(kernel source hash x machine hash x loop x factors), so a store is safely
shareable between machines as long as the simulator is deterministic.
"""

from __future__ import annotations

import io
import json
import os
import uuid
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set

from repro.cache.reward_cache import CachedMeasurement, RewardCache, RewardKey

#: Bump when the record layout changes incompatibly.  Loaders skip segments
#: whose header declares any version not in ``_COMPATIBLE_VERSIONS`` —
#: newer *or* older — so a stale store is detected and rebuilt rather than
#: silently mis-hit.  Version 2 (the task redesign) replaced the fixed
#: ``vf``/``interleave`` key columns with a task name plus a generic action
#: tuple; version-1 segments written by pre-redesign builds carry keys that
#: can no longer be attributed to a task and are skipped wholesale.
SCHEMA_NAME = "repro-reward-store"
SCHEMA_VERSION = 2
_COMPATIBLE_VERSIONS = (2,)


@dataclass
class StoreStats:
    """Load/append accounting for one :class:`PersistentRewardStore`."""

    segments_loaded: int = 0
    segments_skipped: int = 0
    records_loaded: int = 0
    corrupt_records: int = 0
    appended: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "segments_loaded": float(self.segments_loaded),
            "segments_skipped": float(self.segments_skipped),
            "records_loaded": float(self.records_loaded),
            "corrupt_records": float(self.corrupt_records),
            "appended": float(self.appended),
        }


def _encode_record(key: RewardKey, measurement: CachedMeasurement) -> str:
    return json.dumps(
        {
            "key": [
                key.kernel_hash,
                key.machine_hash,
                key.loop_index,
                key.task,
                list(key.action),
                key.default_symbol_value,
            ],
            "cycles": measurement.cycles,
            "compile_seconds": measurement.compile_seconds,
        },
        separators=(",", ":"),
    )


def _decode_record(line: str) -> Optional[tuple]:
    """Parse one record line; ``None`` means corrupt/unusable."""
    record = json.loads(line)
    raw_key = record["key"]
    if not isinstance(raw_key, list) or len(raw_key) != 6:
        return None
    if not isinstance(raw_key[4], list):
        return None
    key = RewardKey(
        kernel_hash=str(raw_key[0]),
        machine_hash=str(raw_key[1]),
        loop_index=int(raw_key[2]),
        task=str(raw_key[3]),
        action=tuple(int(value) for value in raw_key[4]),
        default_symbol_value=int(raw_key[5]),
    )
    measurement = CachedMeasurement(
        cycles=float(record["cycles"]),
        compile_seconds=float(record["compile_seconds"]),
    )
    return key, measurement


@dataclass
class CompactionPolicy:
    """When a run should compact its persistent store on close.

    Long-lived cache directories accumulate one segment per writer process;
    loading merges them all, so a heavily reused directory pays an
    ever-growing startup cost and disk footprint for records that one
    compacted segment could hold.  The policy triggers
    :meth:`PersistentRewardStore.compact` from ``NeuroVectorizer.close()``
    when the directory looks fragmented:

    * ``min_segments`` — compact when at least this many segment files
      exist (the count includes this run's own segment),
    * ``min_total_bytes`` — additionally require the segments to total at
      least this size (``None`` = size does not gate compaction).

    Compaction is offline maintenance: enable it only when the cache
    directory is private to the closing run (no concurrent writers).
    """

    enabled: bool = False
    min_segments: int = 2
    min_total_bytes: Optional[int] = None

    def should_compact(self, store: "PersistentRewardStore") -> bool:
        if not self.enabled:
            return False
        paths = store.segment_paths()
        if len(paths) < max(self.min_segments, 1):
            return False
        if self.min_total_bytes is not None:
            total = 0
            for path in paths:
                try:
                    total += os.path.getsize(path)
                except OSError:
                    continue
            if total < self.min_total_bytes:
                return False
        return True


class PersistentRewardStore:
    """Append-only, merge-on-load JSONL store of reward measurements.

    ``flush_every`` trades durability for throughput: flush the OS buffer
    after every N appended records (1 = flush each record, the default).
    """

    def __init__(self, directory: str, flush_every: int = 1):
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.directory = str(directory)
        self.flush_every = flush_every
        self.stats = StoreStats()
        os.makedirs(self.directory, exist_ok=True)
        # This writer's private segment; created lazily on first append so
        # read-only consumers never litter the directory with empty files.
        self._segment_name = f"segment-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        self._handle: Optional[io.TextIOWrapper] = None
        self._unflushed = 0

    # -- paths -------------------------------------------------------------

    @property
    def segment_path(self) -> str:
        """Where this writer's appends go (may not exist yet)."""
        return os.path.join(self.directory, self._segment_name)

    def segment_paths(self) -> List[str]:
        """Every segment currently on disk, oldest name first."""
        try:
            names = sorted(
                name
                for name in os.listdir(self.directory)
                if name.endswith(".jsonl")
            )
        except FileNotFoundError:
            return []
        return [os.path.join(self.directory, name) for name in names]

    # -- loading -----------------------------------------------------------

    def load(self) -> Dict[RewardKey, CachedMeasurement]:
        """Merge every on-disk segment into one key → measurement mapping.

        Within a segment, later records for the same key win.  Across
        segments the merge order is the (deterministic) filename sort, which
        is *not* chronological — cross-segment conflicts can only arise if
        the simulator changed between runs, and then the store should be
        compacted or cleared rather than trusted to pick a winner.
        Corrupt lines — including the truncated tail a crash mid-append
        leaves behind — are counted and skipped, never fatal.
        """
        merged: Dict[RewardKey, CachedMeasurement] = {}
        for path in self.segment_paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    lines = handle.read().splitlines()
            except OSError:
                self.stats.segments_skipped += 1
                continue
            if not self._header_compatible(lines[0] if lines else ""):
                self.stats.segments_skipped += 1
                continue
            self.stats.segments_loaded += 1
            for line in lines[1:]:
                if not line.strip():
                    continue
                try:
                    decoded = _decode_record(line)
                except (ValueError, KeyError, TypeError):
                    decoded = None
                if decoded is None:
                    self.stats.corrupt_records += 1
                    continue
                key, measurement = decoded
                merged[key] = measurement
                self.stats.records_loaded += 1
        return merged

    @staticmethod
    def _header_compatible(line: str) -> bool:
        try:
            header = json.loads(line)
        except ValueError:
            return False
        return (
            isinstance(header, dict)
            and header.get("schema") == SCHEMA_NAME
            and header.get("version") in _COMPATIBLE_VERSIONS
        )

    # -- writing -----------------------------------------------------------

    def append(self, key: RewardKey, measurement: CachedMeasurement) -> None:
        """Durably record one measurement in this writer's segment."""
        if self._handle is None:
            self._handle = open(self.segment_path, "a", encoding="utf-8")
            if self._handle.tell() == 0:
                self._handle.write(
                    json.dumps({"schema": SCHEMA_NAME, "version": SCHEMA_VERSION})
                    + "\n"
                )
        self._handle.write(_encode_record(key, measurement) + "\n")
        self.stats.appended += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._handle.flush()
            self._unflushed = 0

    def sync(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unflushed = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "PersistentRewardStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        """Merge all segments into one and delete the originals.

        Returns the number of records in the compacted segment.

        **Offline maintenance only**: run it when no other process is
        writing to this directory.  A concurrent writer whose segment
        predates the compaction would keep appending to the unlinked file
        and lose those records; segments *created after* compaction starts
        are the only ones guaranteed to survive.
        """
        self.close()
        before = self.segment_paths()
        # load() is reused for the merge but its bookkeeping describes
        # warm-starts, not maintenance — keep the stats unchanged.
        stats_snapshot = replace(self.stats)
        merged = self.load()
        self.stats = stats_snapshot
        compact_name = f"segment-compact-{os.getpid()}-{uuid.uuid4().hex[:8]}.jsonl"
        compact_path = os.path.join(self.directory, compact_name)
        temporary = compact_path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"schema": SCHEMA_NAME, "version": SCHEMA_VERSION}) + "\n"
            )
            for key, measurement in merged.items():
                handle.write(_encode_record(key, measurement) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temporary, compact_path)
        for path in before:
            if path != compact_path:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        return len(merged)


class DiskBackedRewardCache(RewardCache):
    """A :class:`RewardCache` transparently persisted to a store.

    Construction preloads every on-disk measurement; ``put`` appends new or
    changed entries to this process's segment.  Eviction (under
    ``max_entries``) only trims memory — the disk remains the superset and a
    future run reloads everything.  Keys already durable are tracked in a
    side set so re-measuring an evicted key (deterministic, same value)
    never appends a duplicate record.
    """

    def __init__(
        self,
        store: PersistentRewardStore,
        max_entries: Optional[int] = None,
        preload: bool = True,
    ):
        super().__init__(max_entries=max_entries)
        self.store = store
        self.preloaded = 0
        self._persisted: Set[RewardKey] = set()
        if preload:
            for key, measurement in store.load().items():
                RewardCache.put(self, key, measurement)
                self._persisted.add(key)
                self.preloaded += 1

    @classmethod
    def open(
        cls, directory: str, max_entries: Optional[int] = None, flush_every: int = 1
    ) -> "DiskBackedRewardCache":
        """Open (creating if needed) the store at ``directory`` and preload it."""
        return cls(
            PersistentRewardStore(directory, flush_every=flush_every),
            max_entries=max_entries,
        )

    def put(self, key: RewardKey, measurement: CachedMeasurement) -> None:
        existing = self.peek(key)
        super().put(key, measurement)
        changed = existing is not None and existing != measurement
        if key not in self._persisted or changed:
            self.store.append(key, measurement)
            self._persisted.add(key)

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "DiskBackedRewardCache":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
