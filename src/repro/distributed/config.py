"""Configuration for the distributed evaluation service."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class EvaluationServiceConfig:
    """How reward evaluation is persisted, sharded and overlapped.

    * ``workers`` — evaluation worker processes.  ``0`` (the default) keeps
      everything serial and in-process; ``>= 1`` starts that many workers,
      sharded by kernel content hash.
    * ``cache_dir`` — directory of the persistent reward store; ``None``
      keeps the cache memory-only.
    * ``flush_every`` — how many appended records may sit in the OS buffer
      before the store flushes (1 = flush every record).
    * ``max_entries`` — in-memory cache bound (FIFO eviction); the disk
      store is never trimmed by eviction.
    * ``result_timeout`` — liveness-check interval: how long to wait for a
      worker result before checking whether any worker died (only a dead
      worker is fatal; a slow-but-alive one just waits another round).
    """

    workers: int = 0
    cache_dir: Optional[str] = None
    flush_every: int = 1
    max_entries: Optional[int] = None
    result_timeout: float = 120.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.result_timeout <= 0:
            raise ValueError("result_timeout must be positive")
