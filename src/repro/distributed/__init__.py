"""Distributed evaluation: persistent reward store, sharded workers, futures.

The scaling layer over :mod:`repro.cache`:

* :class:`PersistentRewardStore` / :class:`DiskBackedRewardCache` — reuse
  measurements **across runs** via an append-only on-disk store,
* :class:`EvaluationService` — shard batched reward queries across worker
  processes (serial in-process fallback at ``workers=0``),
* :class:`AsyncEvaluator` — future-based submission so training overlaps
  simulation with policy inference.
"""

from repro.distributed.config import EvaluationServiceConfig
from repro.distributed.service import (
    EvaluationFuture,
    EvaluationService,
    ServiceStats,
)
from repro.distributed.store import (
    CompactionPolicy,
    DiskBackedRewardCache,
    PersistentRewardStore,
    StoreStats,
)

__all__ = [
    "EvaluationServiceConfig",
    "EvaluationFuture",
    "EvaluationService",
    "ServiceStats",
    "CompactionPolicy",
    "DiskBackedRewardCache",
    "PersistentRewardStore",
    "StoreStats",
]


def __getattr__(name: str):
    # AsyncEvaluator/RewardFuture pull in repro.rl lazily so importing the
    # storage layer never drags the whole RL stack along.
    if name in ("AsyncEvaluator", "RewardFuture"):
        from repro.distributed import async_api

        return getattr(async_api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
