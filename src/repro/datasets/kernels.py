"""Kernel and suite containers shared by every dataset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.frontend import ast, parse_source
from repro.ir.lowering import LoweringContext, lower_function
from repro.ir.nodes import IRFunction


@dataclass
class LoopKernel:
    """One benchmark program: C source plus everything needed to run it.

    ``bindings`` give runtime values for symbolic parameters (array extents,
    trip counts) — the analogue of the harness the paper uses to execute each
    kernel with concrete inputs.
    """

    name: str
    source: str
    function_name: str
    suite: str = "synthetic"
    bindings: Dict[str, int] = field(default_factory=dict)
    description: str = ""

    _ast_cache: Optional[ast.TranslationUnit] = field(
        default=None, repr=False, compare=False
    )
    _ir_cache: Optional[IRFunction] = field(default=None, repr=False, compare=False)

    # -- lazy compilation helpers -----------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        if self._ast_cache is None:
            # Shares the process-wide frontend memo with the pipeline (same
            # content hash and filename → the same cached AST).
            from repro.frontend.cache import frontend_cache

            self._ast_cache = frontend_cache().parse(
                self.source, filename=f"{self.name}.c"
            )
        return self._ast_cache

    def function_ast(self) -> ast.FunctionDecl:
        unit = self.parse()
        function = unit.find_function(self.function_name)
        if function is None:
            raise ValueError(
                f"kernel {self.name!r} has no function {self.function_name!r}"
            )
        return function

    def lower(self) -> IRFunction:
        if self._ir_cache is None:
            unit = self.parse()
            function = self.function_ast()
            self._ir_cache = lower_function(
                unit, function, context=LoweringContext(bindings=dict(self.bindings))
            )
        return self._ir_cache

    def invalidate(self) -> None:
        """Drop cached ASTs/IR (used after the source text is rewritten)."""
        self._ast_cache = None
        self._ir_cache = None

    def innermost_loop_count(self) -> int:
        return len(self.lower().innermost_loops())

    def with_source(self, new_source: str) -> "LoopKernel":
        """A copy of this kernel with different source text (pragma injection)."""
        return LoopKernel(
            name=self.name,
            source=new_source,
            function_name=self.function_name,
            suite=self.suite,
            bindings=dict(self.bindings),
            description=self.description,
        )


@dataclass
class KernelSuite:
    """A named collection of kernels."""

    name: str
    kernels: List[LoopKernel] = field(default_factory=list)

    def __iter__(self) -> Iterator[LoopKernel]:
        return iter(self.kernels)

    def __len__(self) -> int:
        return len(self.kernels)

    def __getitem__(self, index: int) -> LoopKernel:
        return self.kernels[index]

    def by_name(self, name: str) -> Optional[LoopKernel]:
        for kernel in self.kernels:
            if kernel.name == name:
                return kernel
        return None

    def names(self) -> List[str]:
        return [kernel.name for kernel in self.kernels]

    def add(self, kernel: LoopKernel) -> None:
        self.kernels.append(kernel)
