"""MiBench-like embedded programs for the transfer-learning study (Figure 9).

MiBench is "a set of free and commercially representative embedded
benchmarks" where "the loops constitute a minor portion of the code" and for
several programs "vectorization ... is not possible" due to memory
dependences, control flow or lack of loops (§4.1).  The programs below mirror
that profile: a modest amount of vectorizable loop work embedded in mostly
scalar code, plus programs that cannot be vectorized at all.
"""

from __future__ import annotations

from typing import List

from repro.datasets.kernels import KernelSuite, LoopKernel


def _kernel(name: str, source: str, description: str, bindings=None) -> LoopKernel:
    return LoopKernel(
        name=name,
        source=source,
        function_name="kernel",
        suite="mibench",
        bindings=dict(bindings or {}),
        description=description,
    )


def mibench_suite() -> KernelSuite:
    kernels: List[LoopKernel] = []

    kernels.append(_kernel("susan_smoothing", """
unsigned char image[65536];
unsigned char out[65536];
int lut[256];
void kernel(int width, int height, int threshold) {
    int total = width * height;
    int mask_size = 3;
    int offset = mask_size * width + mask_size;
    int area = (2 * mask_size + 1) * (2 * mask_size + 1);
    for (int i = 0; i < 256; i++) {
        lut[i] = (i > threshold ? 100 : i);
    }
    for (int i = 0; i < total; i++) {
        out[i] = (unsigned char) ((image[i] * area + offset) >> 6);
    }
}
""", "SUSAN-style image smoothing: one LUT setup loop and one pixel loop.",
        {"width": 256, "height": 256, "threshold": 20}))

    kernels.append(_kernel("crc32", """
unsigned int crc_table[256];
unsigned char buffer[32768];
unsigned int kernel(int length) {
    unsigned int crc = 0xFFFFFFFF;
    for (int i = 0; i < length; i++) {
        crc = crc_table[(crc ^ buffer[i]) & 255] ^ (crc >> 8);
    }
    return crc;
}
""", "CRC32: a serial recurrence through a lookup table (not vectorizable).",
        {"length": 32768}))

    kernels.append(_kernel("stringsearch", """
char text[65536];
char pattern[16];
int kernel(int text_length, int pattern_length) {
    int matches = 0;
    for (int i = 0; i < text_length - pattern_length; i++) {
        int ok = 1;
        for (int j = 0; j < pattern_length; j++) {
            if (text[i + j] != pattern[j]) {
                ok = 0;
            }
        }
        matches += ok;
    }
    return matches;
}
""", "Naive string search: a small inner comparison loop under an outer scan.",
        {"text_length": 65536, "pattern_length": 8}))

    kernels.append(_kernel("fir_filter", """
float signal[16384];
float coeffs[32];
float output[16384];
void kernel(int taps, int length) {
    for (int i = 32; i < length; i++) {
        float acc = 0;
        for (int j = 0; j < taps; j++) {
            acc += signal[i - j] * coeffs[j];
        }
        output[i] = acc;
    }
    float energy = 0;
    for (int i = 0; i < length; i++) {
        energy += output[i] * output[i];
    }
    output[0] = energy;
}
""", "Telecom FIR filter plus an energy reduction.",
        {"taps": 32, "length": 16384}))

    kernels.append(_kernel("adpcm_decode", """
int step_table[89];
char input[8192];
short output[8192];
void kernel(int length) {
    int predictor = 0;
    int index = 0;
    for (int i = 0; i < length; i++) {
        int delta = input[i] & 15;
        int step = step_table[index];
        predictor = predictor + ((delta * step) >> 2);
        index = index + (delta > 7 ? 2 : -1);
        index = (index < 0 ? 0 : index);
        output[i] = (short) predictor;
    }
}
""", "ADPCM decode: serial predictor recurrence, not vectorizable (the paper "
     "makes the same observation).", {"length": 8192}))

    kernels.append(_kernel("rijndael_xor", """
unsigned char state[16384];
unsigned char key_stream[16384];
unsigned char out[16384];
void kernel(int length, int rounds) {
    for (int r = 0; r < rounds; r++) {
        for (int i = 0; i < length; i++) {
            out[i] = state[i] ^ key_stream[i];
        }
    }
}
""", "Security workload: repeated XOR of a state buffer with a key stream.",
        {"length": 16384, "rounds": 4}))

    kernels.append(_kernel("basicmath_quadratic", """
double a_coef[1024], b_coef[1024], c_coef[1024], roots[1024];
void kernel() {
    for (int i = 0; i < 1024; i++) {
        double a = a_coef[i];
        double b = b_coef[i];
        double c = c_coef[i];
        double disc = b * b - 4.0 * a * c;
        roots[i] = (disc > 0 ? (-b + sqrt(disc)) / (2.0 * a) : 0.0);
    }
}
""", "Automotive basicmath: quadratic roots with a sqrt call per element."))

    kernels.append(_kernel("dijkstra_relax", """
int dist[1024];
int adj[1024][1024];
void kernel(int nodes, int source) {
    for (int i = 0; i < nodes; i++) {
        dist[i] = 1000000;
    }
    dist[source] = 0;
    for (int round = 0; round < nodes; round++) {
        for (int v = 0; v < nodes; v++) {
            int through = dist[round] + adj[round][v];
            dist[v] = (through < dist[v] ? through : dist[v]);
        }
    }
}
""", "Dijkstra-style relaxation sweeps (mostly scalar, data-dependent).",
        {"nodes": 1024, "source": 0}))

    return KernelSuite(name="mibench", kernels=kernels)
