"""Kernels modelled on the LLVM vectorizer test-suite.

The paper builds its dataset from the single-source Vectorizer unit tests and
evaluates on "twelve completely different benchmarks from the test set" that
cover "predicates, strided accesses, bitwise operations, unknown loop bounds,
if statements, unknown misalignment, multidimensional arrays, summation
reduction, type conversions, different data types" (§4).  Each kernel below
reproduces one of those behaviours.
"""

from __future__ import annotations

from typing import List

from repro.datasets.kernels import KernelSuite, LoopKernel


def _kernel(name: str, function: str, source: str, description: str,
            bindings: dict = None) -> LoopKernel:
    return LoopKernel(
        name=name,
        source=source,
        function_name=function,
        suite="llvm_suite",
        bindings=dict(bindings or {}),
        description=description,
    )


def llvm_vectorizer_suite() -> KernelSuite:
    """The full bank of vectorizer test kernels (used for Figure 2)."""
    kernels: List[LoopKernel] = []

    kernels.append(_kernel(
        "sum_reduction_int", "sum_reduction_int", """
int a[4096];
int sum_reduction_int() {
    int sum = 0;
    for (int i = 0; i < 4096; i++) {
        sum += a[i];
    }
    return sum;
}
""", "Integer summation reduction."))

    kernels.append(_kernel(
        "sum_reduction_float", "sum_reduction_float", """
float a[4096], b[4096];
float sum_reduction_float() {
    float sum = 0;
    for (int i = 0; i < 4096; i++) {
        sum += a[i] * b[i];
    }
    return sum;
}
""", "Floating-point dot-product reduction (latency bound when scalar)."))

    kernels.append(_kernel(
        "saxpy", "saxpy", """
float x[8192], y[8192];
void saxpy(float alpha) {
    for (int i = 0; i < 8192; i++) {
        y[i] = alpha * x[i] + y[i];
    }
}
""", "Streaming triad: contiguous loads and stores."))

    kernels.append(_kernel(
        "elementwise_add", "elementwise_add", """
int a[4096], b[4096], c[4096];
void elementwise_add() {
    for (int i = 0; i < 4096; i++) {
        c[i] = a[i] + b[i];
    }
}
""", "Simple element-wise add."))

    kernels.append(_kernel(
        "predicated_clip", "predicated_clip", """
void predicated_clip(int *a, int *b, int n, int MAX) {
    for (int i = 0; i < n * 2; i++) {
        int j = a[i];
        b[i] = (j > MAX ? MAX : 0);
    }
}
""", "Predicate / ternary clipping (example #3 of the paper's dataset).",
        {"n": 2048, "MAX": 255}))

    kernels.append(_kernel(
        "if_statement_guard", "if_statement_guard", """
float a[4096], b[4096];
void if_statement_guard() {
    for (int i = 0; i < 4096; i++) {
        if (a[i] > 0) {
            b[i] = a[i] * 2;
        }
    }
}
""", "If-guarded store requiring if-conversion and masked stores."))

    kernels.append(_kernel(
        "strided_complex_mul", "strided_complex_mul", """
float a[2048], b[4096], c[4096], d[2048];
void strided_complex_mul(int N) {
    for (int i = 0; i < N / 2 - 1; i++) {
        a[i] = b[2 * i + 1] * c[2 * i + 1] - b[2 * i] * c[2 * i];
        d[i] = b[2 * i] * c[2 * i + 1] + b[2 * i + 1] * c[2 * i];
    }
}
""", "Strided complex multiply (example #5 of the paper's dataset).",
        {"N": 4096}))

    kernels.append(_kernel(
        "type_convert_short_int", "type_convert_short_int", """
void type_convert_short_int(int *assign1, int *assign2, int *assign3,
                            short *short_a, short *short_b, short *short_c,
                            int N) {
    for (int i = 0; i < N - 1; i += 2) {
        assign1[i] = (int) short_a[i];
        assign1[i + 1] = (int) short_a[i + 1];
        assign2[i] = (int) short_b[i];
        assign2[i + 1] = (int) short_b[i + 1];
        assign3[i] = (int) short_c[i];
        assign3[i + 1] = (int) short_c[i + 1];
    }
}
""", "Widening type conversions with a manually unrolled-by-2 body "
     "(example #1 of the paper's dataset).", {"N": 4096}))

    kernels.append(_kernel(
        "bitwise_ops", "bitwise_ops", """
unsigned int a[4096], b[4096], c[4096];
void bitwise_ops() {
    for (int i = 0; i < 4096; i++) {
        c[i] = (a[i] & b[i]) | ((a[i] ^ b[i]) >> 3);
    }
}
""", "Bitwise and/or/xor/shift mix."))

    kernels.append(_kernel(
        "unknown_bounds", "unknown_bounds", """
void unknown_bounds(float *a, float *b, int n) {
    for (int i = 0; i < n; i++) {
        a[i] = b[i] * b[i] + 1;
    }
}
""", "Unknown loop bound: needs a runtime trip-count check and epilogue.",
        {"n": 3000}))

    kernels.append(_kernel(
        "unknown_misalignment", "unknown_misalignment", """
void unknown_misalignment(float *dst, float *src, int n, int offset) {
    for (int i = 0; i < n; i++) {
        dst[i + offset] = src[i + offset] * 0.5f;
    }
}
""", "Accesses at an unknown offset: alignment cannot be proven.",
        {"n": 4096, "offset": 3}))

    kernels.append(_kernel(
        "multidim_store", "multidim_store", """
float G[256][256];
void multidim_store(float x, int M, int N) {
    for (int i = 0; i < M; i++) {
        for (int j = 0; j < N; j++) {
            G[i][j] = x;
        }
    }
}
""", "Two-dimensional fill (example #2 of the paper's dataset).",
        {"M": 256, "N": 256}))

    kernels.append(_kernel(
        "matmul_kernel", "matmul_kernel", """
float A[128][128], B[128][128], C[128][128];
void matmul_kernel(float alpha, int M, int L, int N) {
    for (int i = 0; i < M; i++) {
        for (int j = 0; j < L; j++) {
            float sum = 0;
            for (int k = 0; k < N; k++) {
                sum += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
""", "Matrix multiply with a dot-product inner loop over a strided column "
     "(example #4 of the paper's dataset).", {"M": 128, "L": 128, "N": 128}))

    kernels.append(_kernel(
        "mixed_types_char", "mixed_types_char", """
void mixed_types_char(char *a, char *b, int n) {
    for (int i = 0; i < n; i++) {
        a[i] = (char) (b[i] + 3);
    }
}
""", "8-bit data: very wide legal VFs.", {"n": 8192}))

    kernels.append(_kernel(
        "max_reduction", "max_reduction", """
int a[4096];
int max_reduction() {
    int m = 0;
    for (int i = 0; i < 4096; i++) {
        m = (m < a[i] ? a[i] : m);
    }
    return m;
}
""", "Maximum reduction expressed with a ternary."))

    kernels.append(_kernel(
        "double_precision_scale", "double_precision_scale", """
double a[2048], b[2048];
void double_precision_scale(double alpha) {
    for (int i = 0; i < 2048; i++) {
        b[i] = alpha * a[i] + b[i] * b[i];
    }
}
""", "Double-precision arithmetic: fewer lanes per register."))

    kernels.append(_kernel(
        "gather_indexed", "gather_indexed", """
int idx[4096];
float src[8192], dst[4096];
void gather_indexed() {
    for (int i = 0; i < 4096; i++) {
        dst[i] = src[idx[i]];
    }
}
""", "Indirect gather through an index array."))

    kernels.append(_kernel(
        "carried_dependence", "carried_dependence", """
float a[4096];
void carried_dependence() {
    for (int i = 4; i < 4096; i++) {
        a[i] = a[i - 4] * 0.5f + 1.0f;
    }
}
""", "Loop-carried dependence at distance 4: VF is capped at 4."))

    kernels.append(_kernel(
        "prefix_recurrence", "prefix_recurrence", """
float a[4096], b[4096];
void prefix_recurrence() {
    float carry = 0;
    for (int i = 0; i < 4096; i++) {
        carry = a[i] - carry;
        b[i] = carry;
    }
}
""", "Non-reduction scalar recurrence: not vectorizable at all."))

    kernels.append(_kernel(
        "short_trip_loop", "short_trip_loop", """
int a[32], b[32];
void short_trip_loop() {
    for (int i = 0; i < 32; i++) {
        a[i] = a[i] + b[i];
    }
}
""", "Tiny trip count: aggressive factors leave everything in the epilogue."))

    kernels.append(_kernel(
        "stencil_1d", "stencil_1d", """
float in[8192], out[8192];
void stencil_1d() {
    for (int i = 1; i < 8191; i++) {
        out[i] = 0.25f * in[i - 1] + 0.5f * in[i] + 0.25f * in[i + 1];
    }
}
""", "Three-point stencil with overlapping reads."))

    kernels.append(_kernel(
        "division_heavy", "division_heavy", """
float a[2048], b[2048], c[2048];
void division_heavy() {
    for (int i = 0; i < 2048; i++) {
        c[i] = a[i] / (b[i] + 1.0f);
    }
}
""", "Division-bound loop: the divider is barely pipelined."))

    kernels.append(_kernel(
        "unsigned_wraparound", "unsigned_wraparound", """
unsigned short a[4096], b[4096];
void unsigned_wraparound() {
    for (int i = 0; i < 4096; i++) {
        b[i] = (unsigned short) (a[i] * 7 + 13);
    }
}
""", "16-bit unsigned arithmetic with narrowing stores."))

    kernels.append(_kernel(
        "scalar_interleaved_update", "scalar_interleaved_update", """
int hist[4096];
void scalar_interleaved_update(int *data, int n) {
    for (int i = 0; i < n; i++) {
        hist[i] = hist[i] + data[i] * data[i];
    }
}
""", "Read-modify-write with a squared term.", {"n": 4096}))

    kernels.append(_kernel(
        "nested_reduction_rows", "nested_reduction_rows", """
float M[256][256];
float row_sums[256];
void nested_reduction_rows() {
    for (int i = 0; i < 256; i++) {
        float sum = 0;
        for (int j = 0; j < 256; j++) {
            sum += M[i][j];
        }
        row_sums[i] = sum;
    }
}
""", "Row-wise reductions inside an outer loop."))

    return KernelSuite(name="llvm_vectorizer_suite", kernels=kernels)


#: The twelve kernels reported individually in Figure 7.
_TEST_BENCHMARK_NAMES = [
    "sum_reduction_float",
    "saxpy",
    "predicated_clip",
    "if_statement_guard",
    "strided_complex_mul",
    "type_convert_short_int",
    "bitwise_ops",
    "unknown_bounds",
    "multidim_store",
    "matmul_kernel",
    "max_reduction",
    "stencil_1d",
]


def test_benchmarks() -> KernelSuite:
    """The 12 held-out benchmarks used for the main comparison (Figure 7)."""
    full = llvm_vectorizer_suite()
    suite = KernelSuite(name="test_benchmarks")
    for name in _TEST_BENCHMARK_NAMES:
        kernel = full.by_name(name)
        if kernel is None:  # pragma: no cover - defensive
            raise RuntimeError(f"missing test benchmark {name}")
        suite.add(kernel)
    return suite
