"""PolyBench-like kernels for the transfer-learning study (Figure 8).

PolyBench is "benchmarks that perform matrix operations, decomposition, and
linear algebra for which Polly is optimized to run on" (§4.1).  Six kernels
are reported in Figure 8; the analogues below cover the same categories:
dense matrix multiply chains, matrix-vector products and stencils, with
iteration spaces large enough that data locality (and hence the polyhedral
pass) matters.
"""

from __future__ import annotations

from typing import List

from repro.datasets.kernels import KernelSuite, LoopKernel


def _kernel(name: str, source: str, description: str) -> LoopKernel:
    return LoopKernel(
        name=name,
        source=source,
        function_name="kernel",
        suite="polybench",
        description=description,
    )


def polybench_suite() -> KernelSuite:
    kernels: List[LoopKernel] = []

    kernels.append(_kernel("gemm", """
float A[256][256], B[256][256], C[256][256];
void kernel(float alpha, float beta) {
    for (int i = 0; i < 256; i++) {
        for (int j = 0; j < 256; j++) {
            float acc = 0;
            for (int k = 0; k < 256; k++) {
                acc += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = beta * C[i][j] + acc;
        }
    }
}
""", "General matrix-matrix multiply (large iteration space, poor B locality)."))

    kernels.append(_kernel("2mm", """
float A[128][128], B[128][128], C[128][128], D[128][128], E[128][128];
void kernel(float alpha) {
    for (int i = 0; i < 128; i++) {
        for (int j = 0; j < 128; j++) {
            float acc = 0;
            for (int k = 0; k < 128; k++) {
                acc += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = acc;
        }
    }
    for (int i = 0; i < 128; i++) {
        for (int j = 0; j < 128; j++) {
            float acc = 0;
            for (int k = 0; k < 128; k++) {
                acc += C[i][k] * D[k][j];
            }
            E[i][j] = acc;
        }
    }
}
""", "Two chained matrix multiplies."))

    kernels.append(_kernel("atax", """
float A[512][512], x[512], y[512], tmp[512];
void kernel() {
    for (int i = 0; i < 512; i++) {
        float acc = 0;
        for (int j = 0; j < 512; j++) {
            acc += A[i][j] * x[j];
        }
        tmp[i] = acc;
    }
    for (int j = 0; j < 512; j++) {
        float acc = 0;
        for (int i = 0; i < 512; i++) {
            acc += A[i][j] * tmp[i];
        }
        y[j] = acc;
    }
}
""", "A^T A x: one row-major and one column-major matrix-vector product."))

    kernels.append(_kernel("bicg", """
float A[512][512], p[512], q[512], r[512], s[512];
void kernel() {
    for (int i = 0; i < 512; i++) {
        float acc = 0;
        for (int j = 0; j < 512; j++) {
            acc += A[i][j] * p[j];
        }
        q[i] = acc;
    }
    for (int j = 0; j < 512; j++) {
        float acc = 0;
        for (int i = 0; i < 512; i++) {
            acc += r[i] * A[i][j];
        }
        s[j] = acc;
    }
}
""", "BiCG sub-kernel: paired matrix-vector products."))

    kernels.append(_kernel("mvt", """
float A[512][512], x1[512], x2[512], y1[512], y2[512];
void kernel() {
    for (int i = 0; i < 512; i++) {
        float acc = 0;
        for (int j = 0; j < 512; j++) {
            acc += A[i][j] * y1[j];
        }
        x1[i] = x1[i] + acc;
    }
    for (int i = 0; i < 512; i++) {
        float acc = 0;
        for (int j = 0; j < 512; j++) {
            acc += A[j][i] * y2[j];
        }
        x2[i] = x2[i] + acc;
    }
}
""", "Matrix-vector product and transposed product."))

    kernels.append(_kernel("jacobi_2d", """
float A[512][512], B[512][512];
void kernel() {
    for (int t = 0; t < 4; t++) {
        for (int i = 1; i < 511; i++) {
            for (int j = 1; j < 511; j++) {
                B[i][j] = 0.2f * (A[i][j] + A[i][j - 1] + A[i][j + 1]
                                  + A[i - 1][j] + A[i + 1][j]);
            }
        }
        for (int i = 1; i < 511; i++) {
            for (int j = 1; j < 511; j++) {
                A[i][j] = B[i][j];
            }
        }
    }
}
""", "Jacobi 2-D relaxation stencil over several time steps."))

    return KernelSuite(name="polybench", kernels=kernels)
