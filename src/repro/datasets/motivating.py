"""The motivating dot-product kernel of §2.1 / Figure 1."""

from __future__ import annotations

from repro.datasets.kernels import LoopKernel

_DOT_PRODUCT_SOURCE = """\
int vec[512] __attribute__((aligned(16)));

__attribute__((noinline))
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
"""


def dot_product_kernel() -> LoopKernel:
    """The exact kernel the paper sweeps over every (VF, IF) pair."""
    return LoopKernel(
        name="dot_product",
        source=_DOT_PRODUCT_SOURCE,
        function_name="example1",
        suite="motivating",
        description="Integer dot product over a 512-element aligned array "
        "(Figure 1 of the paper).",
    )
