"""Synthetic loop dataset generator (§3.2 of the paper).

The paper builds >10,000 training programs from the LLVM vectorizer tests by
varying "the names of the parameters ... the stride, the number of
iterations, the functionality, the instructions, and the number of nested
loops".  This generator does the same: a set of loop templates crossed with
pools of names, element types, trip counts, strides and operators.  Given a
seed the dataset is fully deterministic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.kernels import KernelSuite, LoopKernel

#: Name pools used to rename arrays/scalars between variants.
_ARRAY_NAMES = [
    ("a", "b", "c"),
    ("src", "dst", "tmp"),
    ("x", "y", "z"),
    ("input", "output", "scratch"),
    ("data", "result", "buffer"),
    ("p", "q", "r"),
]
_INDEX_NAMES = ["i", "j", "k", "idx", "n0"]
_SCALAR_NAMES = ["alpha", "beta", "scale", "factor", "coeff"]

_DTYPES = ["char", "short", "int", "long", "float", "double"]
_TRIP_COUNTS = [64, 128, 256, 512, 1024, 2048, 4096, 8192]
_STRIDES = [1, 2, 3, 4]
_BINARY_OPS = ["+", "-", "*", "&", "|", "^"]


@dataclass
class SyntheticDatasetConfig:
    """Controls how many kernels are generated and from which templates."""

    count: int = 1000
    seed: int = 0
    templates: Optional[Sequence[str]] = None
    min_trip_count: int = 64
    max_trip_count: int = 8192


@dataclass
class _Variant:
    """One sampled point in the template parameter space."""

    template: str
    dtype: str
    trip_count: int
    stride: int
    op: str
    names: Tuple[str, str, str]
    index: str
    scalar: str
    inner_trip: int


# ---------------------------------------------------------------------------
# Templates
# ---------------------------------------------------------------------------


def _t_elementwise(v: _Variant) -> str:
    a, b, c = v.names
    op = v.op if v.dtype not in ("float", "double") or v.op in "+-*" else "+"
    return f"""
{v.dtype} {a}[{v.trip_count}], {b}[{v.trip_count}], {c}[{v.trip_count}];
void kernel() {{
    for (int {v.index} = 0; {v.index} < {v.trip_count}; {v.index}++) {{
        {c}[{v.index}] = {a}[{v.index}] {op} {b}[{v.index}];
    }}
}}
"""


def _t_saxpy(v: _Variant) -> str:
    a, b, _ = v.names
    return f"""
{v.dtype} {a}[{v.trip_count}], {b}[{v.trip_count}];
void kernel({v.dtype} {v.scalar}) {{
    for (int {v.index} = 0; {v.index} < {v.trip_count}; {v.index}++) {{
        {b}[{v.index}] = {v.scalar} * {a}[{v.index}] + {b}[{v.index}];
    }}
}}
"""


def _t_reduction(v: _Variant) -> str:
    a, b, _ = v.names
    op = "+" if v.op not in "+*" else v.op
    return f"""
{v.dtype} {a}[{v.trip_count}], {b}[{v.trip_count}];
{v.dtype} kernel() {{
    {v.dtype} acc = 0;
    for (int {v.index} = 0; {v.index} < {v.trip_count}; {v.index}++) {{
        acc {op}= {a}[{v.index}] * {b}[{v.index}];
    }}
    return acc;
}}
"""


def _t_max_reduction(v: _Variant) -> str:
    a, _, _ = v.names
    return f"""
{v.dtype} {a}[{v.trip_count}];
{v.dtype} kernel() {{
    {v.dtype} best = 0;
    for (int {v.index} = 0; {v.index} < {v.trip_count}; {v.index}++) {{
        best = (best < {a}[{v.index}] ? {a}[{v.index}] : best);
    }}
    return best;
}}
"""


def _t_predicate(v: _Variant) -> str:
    a, b, _ = v.names
    return f"""
{v.dtype} {a}[{v.trip_count}], {b}[{v.trip_count}];
void kernel({v.dtype} limit) {{
    for (int {v.index} = 0; {v.index} < {v.trip_count}; {v.index}++) {{
        if ({a}[{v.index}] > limit) {{
            {b}[{v.index}] = {a}[{v.index}] * 2;
        }}
    }}
}}
"""


def _t_strided(v: _Variant) -> str:
    a, b, _ = v.names
    stride = max(2, v.stride)
    out_count = max(8, v.trip_count // stride)
    return f"""
{v.dtype} {a}[{out_count}], {b}[{v.trip_count}];
void kernel() {{
    for (int {v.index} = 0; {v.index} < {out_count}; {v.index}++) {{
        {a}[{v.index}] = {b}[{stride} * {v.index}] + {b}[{stride} * {v.index} + 1];
    }}
}}
"""


def _t_type_convert(v: _Variant) -> str:
    a, b, _ = v.names
    narrow = "short" if v.dtype in ("int", "long", "float", "double") else "char"
    return f"""
{narrow} {a}[{v.trip_count}];
{v.dtype} {b}[{v.trip_count}];
void kernel() {{
    for (int {v.index} = 0; {v.index} < {v.trip_count}; {v.index}++) {{
        {b}[{v.index}] = ({v.dtype}) {a}[{v.index}];
    }}
}}
"""


def _t_fill_2d(v: _Variant) -> str:
    a, _, _ = v.names
    rows = max(8, min(256, v.trip_count // 16))
    cols = max(16, min(512, v.inner_trip))
    return f"""
{v.dtype} {a}[{rows}][{cols}];
void kernel({v.dtype} value) {{
    for (int {v.index} = 0; {v.index} < {rows}; {v.index}++) {{
        for (int j2 = 0; j2 < {cols}; j2++) {{
            {a}[{v.index}][j2] = value;
        }}
    }}
}}
"""


def _t_row_reduction(v: _Variant) -> str:
    a, b, _ = v.names
    rows = max(8, min(256, v.trip_count // 16))
    cols = max(16, min(512, v.inner_trip))
    return f"""
{v.dtype} {a}[{rows}][{cols}];
{v.dtype} {b}[{rows}];
void kernel() {{
    for (int {v.index} = 0; {v.index} < {rows}; {v.index}++) {{
        {v.dtype} acc = 0;
        for (int j2 = 0; j2 < {cols}; j2++) {{
            acc += {a}[{v.index}][j2];
        }}
        {b}[{v.index}] = acc;
    }}
}}
"""


def _t_stencil(v: _Variant) -> str:
    a, b, _ = v.names
    return f"""
{v.dtype} {a}[{v.trip_count}], {b}[{v.trip_count}];
void kernel() {{
    for (int {v.index} = 1; {v.index} < {v.trip_count} - 1; {v.index}++) {{
        {b}[{v.index}] = {a}[{v.index} - 1] + {a}[{v.index}] + {a}[{v.index} + 1];
    }}
}}
"""


def _t_unrolled_pair(v: _Variant) -> str:
    a, b, _ = v.names
    return f"""
{v.dtype} {a}[{v.trip_count}], {b}[{v.trip_count}];
void kernel() {{
    for (int {v.index} = 0; {v.index} < {v.trip_count} - 1; {v.index} += 2) {{
        {a}[{v.index}] = {b}[{v.index}] * 3;
        {a}[{v.index} + 1] = {b}[{v.index} + 1] * 3;
    }}
}}
"""


def _t_unknown_bound(v: _Variant) -> str:
    a, b, _ = v.names
    return f"""
void kernel({v.dtype} *{a}, {v.dtype} *{b}, int n) {{
    for (int {v.index} = 0; {v.index} < n; {v.index}++) {{
        {a}[{v.index}] = {b}[{v.index}] * {b}[{v.index}] + 1;
    }}
}}
"""


def _t_matmul(v: _Variant) -> str:
    a, b, c = v.names
    size = max(16, min(128, v.inner_trip // 4))
    return f"""
{v.dtype} {a}[{size}][{size}], {b}[{size}][{size}], {c}[{size}][{size}];
void kernel({v.dtype} {v.scalar}) {{
    for (int {v.index} = 0; {v.index} < {size}; {v.index}++) {{
        for (int j2 = 0; j2 < {size}; j2++) {{
            {v.dtype} acc = 0;
            for (int k3 = 0; k3 < {size}; k3++) {{
                acc += {v.scalar} * {a}[{v.index}][k3] * {b}[k3][j2];
            }}
            {c}[{v.index}][j2] = acc;
        }}
    }}
}}
"""


TEMPLATES: Dict[str, Callable[[_Variant], str]] = {
    "elementwise": _t_elementwise,
    "saxpy": _t_saxpy,
    "reduction": _t_reduction,
    "max_reduction": _t_max_reduction,
    "predicate": _t_predicate,
    "strided": _t_strided,
    "type_convert": _t_type_convert,
    "fill_2d": _t_fill_2d,
    "row_reduction": _t_row_reduction,
    "stencil": _t_stencil,
    "unrolled_pair": _t_unrolled_pair,
    "unknown_bound": _t_unknown_bound,
    "matmul": _t_matmul,
}


def parameter_space_size() -> int:
    """A lower bound on how many distinct programs the generator can emit."""
    return (
        len(TEMPLATES)
        * len(_DTYPES)
        * len(_TRIP_COUNTS)
        * len(_STRIDES)
        * len(_BINARY_OPS)
        * len(_ARRAY_NAMES)
        * len(_INDEX_NAMES)
    )


def generate_variant(rng: np.random.Generator,
                     config: SyntheticDatasetConfig,
                     templates: Sequence[str]) -> _Variant:
    trip_candidates = [
        t for t in _TRIP_COUNTS
        if config.min_trip_count <= t <= config.max_trip_count
    ] or _TRIP_COUNTS
    return _Variant(
        template=str(rng.choice(templates)),
        dtype=str(rng.choice(_DTYPES)),
        trip_count=int(rng.choice(trip_candidates)),
        stride=int(rng.choice(_STRIDES)),
        op=str(rng.choice(_BINARY_OPS)),
        names=tuple(_ARRAY_NAMES[int(rng.integers(len(_ARRAY_NAMES)))]),
        index=str(rng.choice(_INDEX_NAMES)),
        scalar=str(rng.choice(_SCALAR_NAMES)),
        inner_trip=int(rng.choice(trip_candidates)),
    )


def generate_synthetic_dataset(
    config: Optional[SyntheticDatasetConfig] = None,
) -> KernelSuite:
    """Generate ``config.count`` synthetic loop kernels deterministically."""
    config = config or SyntheticDatasetConfig()
    rng = np.random.default_rng(config.seed)
    templates = list(config.templates or TEMPLATES.keys())
    suite = KernelSuite(name="synthetic")
    seen_sources = set()
    attempts = 0
    while len(suite) < config.count and attempts < config.count * 20:
        attempts += 1
        variant = generate_variant(rng, config, templates)
        source = TEMPLATES[variant.template](variant)
        if source in seen_sources:
            continue
        seen_sources.add(source)
        bindings = {"n": variant.trip_count} if variant.template == "unknown_bound" else {}
        kernel = LoopKernel(
            name=f"synthetic_{variant.template}_{len(suite):05d}",
            source=source,
            function_name="kernel",
            suite="synthetic",
            bindings=bindings,
            description=f"template={variant.template} dtype={variant.dtype} "
            f"trip={variant.trip_count}",
        )
        suite.add(kernel)
    return suite
