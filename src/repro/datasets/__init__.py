"""Benchmark kernels and the synthetic loop dataset.

The paper's experiments draw on four corpora, each reproduced here:

* the dot-product **motivating kernel** of Figure 1
  (:mod:`repro.datasets.motivating`),
* kernels modelled on the **LLVM vectorizer test-suite** (Figure 2 and the
  twelve held-out test benchmarks of Figure 7)
  (:mod:`repro.datasets.llvm_suite`),
* the **synthetic loop dataset** of §3.2 — generators that produce more than
  10,000 loop programs by varying names, strides, bounds, functionality,
  instructions and nesting (:mod:`repro.datasets.synthetic`),
* **PolyBench**-like and **MiBench**-like programs for the transfer-learning
  study of Figures 8 and 9 (:mod:`repro.datasets.polybench`,
  :mod:`repro.datasets.mibench`).
"""

from repro.datasets.kernels import KernelSuite, LoopKernel
from repro.datasets.motivating import dot_product_kernel
from repro.datasets.llvm_suite import llvm_vectorizer_suite, test_benchmarks
from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset
from repro.datasets.polybench import polybench_suite
from repro.datasets.mibench import mibench_suite

__all__ = [
    "LoopKernel",
    "KernelSuite",
    "dot_product_kernel",
    "llvm_vectorizer_suite",
    "test_benchmarks",
    "SyntheticDatasetConfig",
    "generate_synthetic_dataset",
    "polybench_suite",
    "mibench_suite",
]
