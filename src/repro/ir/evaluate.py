"""Constant evaluation of IR expressions under a set of scalar bindings.

Loop bounds frequently reference symbolic parameters (``n``, ``M``); the
simulator and trip-count computation evaluate them after binding default
values.  Anything that cannot be resolved evaluates to ``None``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Union

from repro.ir.expr import (
    BinOp,
    CallOp,
    Compare,
    Const,
    Convert,
    Expr,
    LoadOp,
    ScalarRef,
    Select,
    UnaryOpExpr,
)

Number = Union[int, float]


def evaluate_expr(
    expr: Optional[Expr], bindings: Optional[Dict[str, Number]] = None
) -> Optional[Number]:
    """Evaluate ``expr`` to a number, or ``None`` if it depends on memory or
    on scalars not present in ``bindings``."""
    if expr is None:
        return None
    bindings = bindings or {}
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, ScalarRef):
        return bindings.get(expr.name)
    if isinstance(expr, LoadOp):
        return None
    if isinstance(expr, Convert):
        inner = evaluate_expr(expr.operand, bindings)
        if inner is None:
            return None
        return int(inner) if expr.dtype.is_integer else float(inner)
    if isinstance(expr, UnaryOpExpr):
        inner = evaluate_expr(expr.operand, bindings)
        if inner is None:
            return None
        if expr.op == "-":
            return -inner
        if expr.op == "!":
            return 0 if inner else 1
        if expr.op == "~":
            return ~int(inner)
        return inner
    if isinstance(expr, (BinOp, Compare)):
        lhs = evaluate_expr(expr.lhs, bindings)
        rhs = evaluate_expr(expr.rhs, bindings)
        if lhs is None or rhs is None:
            return None
        return _apply_binary(expr.op, lhs, rhs)
    if isinstance(expr, Select):
        condition = evaluate_expr(expr.condition, bindings)
        if condition is None:
            return None
        branch = expr.true_value if condition else expr.false_value
        return evaluate_expr(branch, bindings)
    if isinstance(expr, CallOp):
        args = [evaluate_expr(argument, bindings) for argument in expr.args]
        if any(argument is None for argument in args):
            return None
        return _apply_call(expr.callee, args)
    return None


def _apply_binary(op: str, lhs: Number, rhs: Number) -> Optional[Number]:
    both_int = isinstance(lhs, int) and isinstance(rhs, int)
    try:
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                return None
            return lhs // rhs if both_int else lhs / rhs
        if op == "%":
            return lhs % rhs if rhs != 0 else None
        if op == "<<":
            return int(lhs) << int(rhs)
        if op == ">>":
            return int(lhs) >> int(rhs)
        if op == "&":
            return int(lhs) & int(rhs)
        if op == "|":
            return int(lhs) | int(rhs)
        if op == "^":
            return int(lhs) ^ int(rhs)
        if op == "<":
            return int(lhs < rhs)
        if op == ">":
            return int(lhs > rhs)
        if op == "<=":
            return int(lhs <= rhs)
        if op == ">=":
            return int(lhs >= rhs)
        if op == "==":
            return int(lhs == rhs)
        if op == "!=":
            return int(lhs != rhs)
        if op == "&&":
            return int(bool(lhs) and bool(rhs))
        if op == "||":
            return int(bool(lhs) or bool(rhs))
    except (ValueError, OverflowError):
        return None
    return None


def _apply_call(callee: str, args: list) -> Optional[Number]:
    table = {
        "sqrt": math.sqrt,
        "sqrtf": math.sqrt,
        "fabs": abs,
        "fabsf": abs,
        "abs": abs,
        "exp": math.exp,
        "expf": math.exp,
        "log": math.log,
        "floor": math.floor,
        "ceil": math.ceil,
    }
    function = table.get(callee)
    if function is None:
        return None
    try:
        return function(*args)
    except (ValueError, TypeError, OverflowError):
        return None


def trip_count_of(
    lower: Optional[Expr],
    upper: Optional[Expr],
    step: int,
    condition_op: str = "<",
    bindings: Optional[Dict[str, Number]] = None,
) -> Optional[int]:
    """Number of iterations of ``for (v = lower; v <op> upper; v += step)``."""
    if step == 0:
        return None
    low = evaluate_expr(lower, bindings)
    high = evaluate_expr(upper, bindings)
    if low is None or high is None:
        return None
    if condition_op == "<=":
        high = high + 1
    elif condition_op == ">=":
        high = high - 1
    if step > 0:
        span = high - low
    else:
        span = low - high
        step = -step
    if span <= 0:
        return 0
    return int(math.ceil(span / step))
