"""Element data types used by the IR, the vectorizer and the machine model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.ctypes import CType, FloatType, IntType, PointerType, ArrayType


@dataclass(frozen=True)
class DType:
    """A machine element type: integer or floating point of a given width.

    ``bits`` drives how many lanes of this type fit in a vector register and
    how wide memory traffic is, which is what both legality (max VF) and the
    cost model care about.
    """

    kind: str  # "int", "uint" or "float"
    bits: int

    def __post_init__(self) -> None:
        if self.kind not in ("int", "uint", "float"):
            raise ValueError(f"unknown dtype kind {self.kind!r}")
        if self.bits not in (8, 16, 32, 64):
            raise ValueError(f"unsupported dtype width {self.bits}")

    @property
    def size_bytes(self) -> int:
        return self.bits // 8

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_integer(self) -> bool:
        return self.kind in ("int", "uint")

    def __str__(self) -> str:
        prefix = {"int": "i", "uint": "u", "float": "f"}[self.kind]
        return f"{prefix}{self.bits}"


INT8 = DType("int", 8)
INT16 = DType("int", 16)
INT32 = DType("int", 32)
INT64 = DType("int", 64)
UINT8 = DType("uint", 8)
UINT16 = DType("uint", 16)
UINT32 = DType("uint", 32)
UINT64 = DType("uint", 64)
FLOAT32 = DType("float", 32)
FLOAT64 = DType("float", 64)


def dtype_from_ctype(ctype: CType) -> DType:
    """Map a frontend C type to the IR element type.

    Arrays and pointers map to the dtype of their element; anything the
    frontend could not resolve falls back to 32-bit int, matching the
    permissive behaviour of semantic analysis.
    """
    if isinstance(ctype, ArrayType):
        return dtype_from_ctype(ctype.element)
    if isinstance(ctype, PointerType):
        return dtype_from_ctype(ctype.pointee)
    if isinstance(ctype, FloatType):
        return FLOAT32 if ctype.bits == 32 else FLOAT64
    if isinstance(ctype, IntType):
        kind = "int" if ctype.signed else "uint"
        return DType(kind, max(8, min(64, ctype.bits)))
    return INT32


def promote(left: DType, right: DType) -> DType:
    """Usual arithmetic promotion between two element types."""
    if left.is_float or right.is_float:
        bits = max(left.bits if left.is_float else 32,
                   right.bits if right.is_float else 32)
        return DType("float", bits)
    bits = max(left.bits, right.bits, 32)
    kind = "int" if (left.kind == "int" and right.kind == "int") else "uint"
    return DType(kind, bits)
