"""Structured loop IR.

The middle end does not use a flat SSA CFG: the programs of interest are loop
kernels, and every consumer (dependence analysis, the vectorizer, the
polyhedral pass and the cycle simulator) wants the loop-nest structure intact.
The IR is therefore a *region tree*:

* :class:`~repro.ir.nodes.IRFunction` — one compiled function,
* :class:`~repro.ir.nodes.Loop` — a counted loop with an induction variable,
  bounds, step and a body of region nodes,
* :class:`~repro.ir.nodes.Conditional` — an if/else region,
* :class:`~repro.ir.nodes.Statement` — a store to memory or an assignment to
  a scalar, whose right-hand side is an expression DAG
  (:mod:`repro.ir.expr`).

Lowering from the frontend AST lives in :mod:`repro.ir.lowering`.
"""

from repro.ir.dtypes import DType, FLOAT32, FLOAT64, INT8, INT16, INT32, INT64
from repro.ir.expr import (
    BinOp,
    CallOp,
    Compare,
    Const,
    Convert,
    Expr,
    LoadOp,
    ScalarRef,
    Select,
    UnaryOpExpr,
)
from repro.ir.nodes import (
    ArrayInfo,
    Conditional,
    IRFunction,
    Loop,
    MemoryAccess,
    Statement,
)
from repro.ir.lowering import LoweringContext, lower_function, lower_unit
from repro.ir.printer import print_function
from repro.ir.verifier import VerificationError, verify_function

__all__ = [
    "DType",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "FLOAT32",
    "FLOAT64",
    "Expr",
    "Const",
    "ScalarRef",
    "LoadOp",
    "BinOp",
    "UnaryOpExpr",
    "Compare",
    "Select",
    "Convert",
    "CallOp",
    "ArrayInfo",
    "MemoryAccess",
    "Statement",
    "Conditional",
    "Loop",
    "IRFunction",
    "LoweringContext",
    "lower_function",
    "lower_unit",
    "print_function",
    "verify_function",
    "VerificationError",
]
