"""Lowering from the frontend AST to the structured loop IR."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.frontend import ast
from repro.frontend.ctypes import ArrayType, CType, PointerType
from repro.frontend.errors import LoweringError
from repro.frontend.sema import SemanticInfo, analyze
from repro.ir.dtypes import DType, INT32, dtype_from_ctype, promote
from repro.ir.evaluate import trip_count_of
from repro.ir.expr import (
    BinOp,
    CallOp,
    Compare,
    Const,
    Convert,
    Expr,
    LoadOp,
    ScalarRef,
    Select,
    UnaryOpExpr,
)
from repro.ir.nodes import ArrayInfo, Conditional, IRFunction, Loop, RegionNode, Statement

#: Math functions that vectorize fine and therefore do not disable the loop.
_MATH_INTRINSICS = frozenset(
    {"sqrt", "sqrtf", "fabs", "fabsf", "abs", "exp", "expf", "log", "logf",
     "pow", "powf", "sin", "cos", "sinf", "cosf", "floor", "ceil", "fmax",
     "fmin", "fmaxf", "fminf"}
)

_COMPARISON_OPS = frozenset({"<", ">", "<=", ">=", "==", "!="})


@dataclass
class LoweringContext:
    """Options controlling lowering.

    ``bindings`` supplies compile-time-constant values for named scalars
    (typically macro-defined bounds already folded by the preprocessor are
    literals, but callers may pin parameters too).  Symbols that stay unknown
    leave ``Loop.trip_count`` as ``None``.
    """

    bindings: Dict[str, int] = field(default_factory=dict)
    permissive: bool = True


class FunctionLowerer:
    """Lowers a single :class:`FunctionDecl` to an :class:`IRFunction`."""

    def __init__(
        self,
        unit: ast.TranslationUnit,
        sema: SemanticInfo,
        context: Optional[LoweringContext] = None,
    ):
        self.unit = unit
        self.sema = sema
        self.context = context or LoweringContext()

    # -- entry point -----------------------------------------------------------

    def lower(self, function: ast.FunctionDecl) -> IRFunction:
        ir_function = IRFunction(
            name=function.name,
            return_dtype=(
                dtype_from_ctype(function.return_type)
                if function.return_type is not None and not function.return_type.is_void
                else None
            ),
            source_name=self.unit.filename,
        )
        self._register_globals(ir_function)
        self._register_parameters(function, ir_function)
        self._loop_stack: List[Loop] = []
        if function.body is not None:
            ir_function.body = self._lower_block(function.body, ir_function)
        return ir_function

    # -- symbol registration ----------------------------------------------------

    def _register_globals(self, ir_function: IRFunction) -> None:
        for decl in self.unit.globals:
            ctype = decl.ctype
            if isinstance(ctype, ArrayType):
                ir_function.arrays[decl.name] = ArrayInfo(
                    name=decl.name,
                    dtype=dtype_from_ctype(ctype),
                    dims=ctype.dims,
                    alignment=decl.alignment,
                    is_global=True,
                )
            elif ctype is not None:
                ir_function.scalars[decl.name] = dtype_from_ctype(ctype)

    def _register_parameters(
        self, function: ast.FunctionDecl, ir_function: IRFunction
    ) -> None:
        for parameter in function.parameters:
            if not parameter.name:
                continue
            ctype = parameter.ctype
            dtype = dtype_from_ctype(ctype) if ctype is not None else INT32
            if isinstance(ctype, (ArrayType, PointerType)):
                dims: Tuple[Optional[int], ...]
                dims = ctype.dims if isinstance(ctype, ArrayType) else (None,)
                ir_function.arrays[parameter.name] = ArrayInfo(
                    name=parameter.name,
                    dtype=dtype,
                    dims=dims,
                    is_parameter=True,
                )
            else:
                ir_function.parameters[parameter.name] = dtype
                ir_function.scalars[parameter.name] = dtype

    def _register_local(self, decl: ast.VarDecl, ir_function: IRFunction) -> None:
        ctype = decl.ctype
        if isinstance(ctype, ArrayType):
            ir_function.arrays[decl.name] = ArrayInfo(
                name=decl.name,
                dtype=dtype_from_ctype(ctype),
                dims=ctype.dims,
                alignment=decl.alignment,
            )
        else:
            ir_function.scalars[decl.name] = (
                dtype_from_ctype(ctype) if ctype is not None else INT32
            )

    # -- statements ----------------------------------------------------------------

    def _lower_block(
        self, block: Union[ast.CompoundStmt, ast.Stmt, None], ir_function: IRFunction
    ) -> List[RegionNode]:
        if block is None:
            return []
        statements = (
            block.statements if isinstance(block, ast.CompoundStmt) else [block]
        )
        nodes: List[RegionNode] = []
        for statement in statements:
            nodes.extend(self._lower_stmt(statement, ir_function))
        return nodes

    def _lower_stmt(self, stmt: ast.Stmt, ir_function: IRFunction) -> List[RegionNode]:
        if isinstance(stmt, ast.CompoundStmt):
            return self._lower_block(stmt, ir_function)
        if isinstance(stmt, ast.DeclStmt):
            return self._lower_decl(stmt, ir_function)
        if isinstance(stmt, ast.ExprStmt):
            return self._lower_expr_stmt(stmt.expr, ir_function)
        if isinstance(stmt, ast.ForStmt):
            return [self._lower_for(stmt, ir_function)]
        if isinstance(stmt, ast.WhileStmt):
            return [self._lower_while(stmt, ir_function)]
        if isinstance(stmt, ast.DoWhileStmt):
            return [self._lower_do_while(stmt, ir_function)]
        if isinstance(stmt, ast.IfStmt):
            return [self._lower_if(stmt, ir_function)]
        if isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt, ast.ReturnStmt)):
            if isinstance(stmt, (ast.BreakStmt, ast.ReturnStmt)) and self._loop_stack:
                self._loop_stack[-1].has_early_exit = True
            if isinstance(stmt, ast.ReturnStmt) and stmt.value is not None:
                value = self._lower_expr(stmt.value, ir_function)
                return [
                    Statement(
                        kind="scalar",
                        target_scalar="__return__",
                        value=value,
                        dtype=value.dtype,
                    )
                ]
            return []
        if isinstance(stmt, ast.PragmaStmt):
            return []
        raise LoweringError(f"cannot lower statement {type(stmt).__name__}")

    def _lower_decl(
        self, stmt: ast.DeclStmt, ir_function: IRFunction
    ) -> List[RegionNode]:
        nodes: List[RegionNode] = []
        for decl in stmt.declarations:
            self._register_local(decl, ir_function)
            if decl.init is not None and not isinstance(decl.ctype, ArrayType):
                value = self._lower_expr(decl.init, ir_function)
                dtype = dtype_from_ctype(decl.ctype) if decl.ctype else value.dtype
                nodes.append(
                    Statement(
                        kind="scalar",
                        target_scalar=decl.name,
                        value=self._coerce(value, dtype),
                        dtype=dtype,
                    )
                )
        return nodes

    def _lower_expr_stmt(
        self, expr: Optional[ast.Expr], ir_function: IRFunction
    ) -> List[RegionNode]:
        if expr is None:
            return []
        if isinstance(expr, ast.Assignment):
            return [self._lower_assignment(expr, ir_function)]
        if isinstance(expr, ast.UnaryOp) and expr.op in ("++", "--"):
            return [self._lower_increment(expr, ir_function)]
        if isinstance(expr, ast.Call):
            call = self._lower_expr(expr, ir_function)
            if self._loop_stack and expr.callee not in _MATH_INTRINSICS:
                self._loop_stack[-1].has_calls = True
            return [
                Statement(
                    kind="scalar",
                    target_scalar="__void__",
                    value=call,
                    dtype=call.dtype,
                )
            ]
        # A bare expression with no side effect: keep it as a scalar statement
        # so its cost is still visible to the simulator.
        value = self._lower_expr(expr, ir_function)
        return [
            Statement(
                kind="scalar", target_scalar="__void__", value=value, dtype=value.dtype
            )
        ]

    def _lower_assignment(
        self, expr: ast.Assignment, ir_function: IRFunction
    ) -> Statement:
        value = self._lower_expr(expr.value, ir_function)
        compound_op = expr.op[:-1] if expr.op != "=" else None
        target = expr.target
        if isinstance(target, ast.ArraySubscript):
            root = target.root_array()
            if root is None:
                raise LoweringError("store target has no identifiable array")
            array_name = root.name
            self._ensure_array(array_name, target, ir_function)
            info = ir_function.arrays[array_name]
            subscripts = tuple(
                self._lower_expr(index, ir_function) for index in target.indices()
            )
            if compound_op is not None:
                load = LoadOp(dtype=info.dtype, array=array_name, subscripts=subscripts)
                value = BinOp(
                    dtype=promote(info.dtype, value.dtype),
                    op=compound_op,
                    lhs=load,
                    rhs=value,
                )
            return Statement(
                kind="store",
                target_array=array_name,
                target_subscripts=subscripts,
                value=self._coerce(value, info.dtype),
                dtype=info.dtype,
                compound_op=compound_op,
            )
        if isinstance(target, ast.Identifier):
            dtype = ir_function.scalars.get(target.name)
            if dtype is None:
                dtype = value.dtype
                ir_function.scalars[target.name] = dtype
            if compound_op is not None:
                value = BinOp(
                    dtype=promote(dtype, value.dtype),
                    op=compound_op,
                    lhs=ScalarRef(dtype=dtype, name=target.name),
                    rhs=value,
                )
            return Statement(
                kind="scalar",
                target_scalar=target.name,
                value=self._coerce(value, dtype),
                dtype=dtype,
                compound_op=compound_op,
            )
        if isinstance(target, ast.UnaryOp) and target.op == "*":
            # *p = value  — treat the pointee as a rank-1 array indexed by 0.
            pointer = target.operand
            if isinstance(pointer, ast.Identifier):
                self._ensure_array(pointer.name, None, ir_function)
                info = ir_function.arrays[pointer.name]
                return Statement(
                    kind="store",
                    target_array=pointer.name,
                    target_subscripts=(Const(dtype=INT32, value=0),),
                    value=self._coerce(value, info.dtype),
                    dtype=info.dtype,
                    compound_op=compound_op,
                )
        raise LoweringError(
            f"unsupported assignment target {type(target).__name__}"
        )

    def _lower_increment(
        self, expr: ast.UnaryOp, ir_function: IRFunction
    ) -> Statement:
        if not isinstance(expr.operand, ast.Identifier):
            raise LoweringError("++/-- is only supported on scalar variables")
        name = expr.operand.name
        dtype = ir_function.scalars.get(name, INT32)
        op = "+" if expr.op == "++" else "-"
        value = BinOp(
            dtype=dtype,
            op=op,
            lhs=ScalarRef(dtype=dtype, name=name),
            rhs=Const(dtype=INT32, value=1),
        )
        return Statement(
            kind="scalar", target_scalar=name, value=value, dtype=dtype,
            compound_op=op,
        )

    # -- loops -----------------------------------------------------------------

    def _lower_for(self, stmt: ast.ForStmt, ir_function: IRFunction) -> Loop:
        var, lower = self._induction_from_init(stmt.init, ir_function)
        upper, condition_op, cond_var = self._bound_from_condition(
            stmt.condition, ir_function
        )
        if var is None:
            var = cond_var
        step = self._step_from_increment(stmt.increment, var)
        if var is None:
            raise LoweringError("cannot identify the loop induction variable")
        ir_function.scalars.setdefault(var, INT32)
        loop = Loop(
            var=var,
            lower=lower if lower is not None else Const(dtype=INT32, value=0),
            upper=upper if upper is not None else ScalarRef(dtype=INT32, name="__unknown_bound__"),
            step=step,
            pragma=stmt.pragma,
            condition_op=condition_op,
        )
        loop.trip_count = trip_count_of(
            loop.lower, loop.upper, loop.step, loop.condition_op, self.context.bindings
        )
        self._loop_stack.append(loop)
        loop.body = self._lower_block(stmt.body, ir_function)
        self._loop_stack.pop()
        return loop

    def _lower_while(self, stmt: ast.WhileStmt, ir_function: IRFunction) -> Loop:
        upper, condition_op, var = self._bound_from_condition(
            stmt.condition, ir_function
        )
        loop = Loop(
            var=var or "__while_iv__",
            lower=Const(dtype=INT32, value=0),
            upper=upper
            if upper is not None
            else ScalarRef(dtype=INT32, name="__unknown_bound__"),
            step=1,
            pragma=stmt.pragma,
            condition_op=condition_op,
        )
        self._loop_stack.append(loop)
        loop.body = self._lower_block(stmt.body, ir_function)
        self._loop_stack.pop()
        # A while loop whose induction variable is updated by exactly one
        # statement in its body behaves like a counted loop; otherwise keep it
        # conservative (unknown trip count, treated as not vectorizable).
        updates = [
            node
            for node in loop.body
            if isinstance(node, Statement)
            and node.kind == "scalar"
            and node.target_scalar == var
        ]
        if var is None or len(updates) != 1:
            loop.has_early_exit = True
        else:
            loop.trip_count = trip_count_of(
                loop.lower, loop.upper, loop.step, loop.condition_op,
                self.context.bindings,
            )
        return loop

    def _lower_do_while(self, stmt: ast.DoWhileStmt, ir_function: IRFunction) -> Loop:
        loop = Loop(
            var="__dowhile_iv__",
            lower=Const(dtype=INT32, value=0),
            upper=ScalarRef(dtype=INT32, name="__unknown_bound__"),
            step=1,
        )
        loop.has_early_exit = True
        self._loop_stack.append(loop)
        loop.body = self._lower_block(stmt.body, ir_function)
        self._loop_stack.pop()
        return loop

    def _lower_if(self, stmt: ast.IfStmt, ir_function: IRFunction) -> Conditional:
        condition = self._lower_expr(stmt.condition, ir_function)
        conditional = Conditional(condition=condition)
        conditional.then_body = self._lower_block(stmt.then_branch, ir_function)
        conditional.else_body = self._lower_block(stmt.else_branch, ir_function)
        return conditional

    # -- loop-header pattern matching ---------------------------------------------

    def _induction_from_init(
        self, init: Optional[ast.Stmt], ir_function: IRFunction
    ) -> Tuple[Optional[str], Optional[Expr]]:
        if init is None:
            return None, None
        if isinstance(init, ast.DeclStmt) and init.declarations:
            decl = init.declarations[0]
            ir_function.scalars.setdefault(decl.name, INT32)
            lower = (
                self._lower_expr(decl.init, ir_function)
                if decl.init is not None
                else Const(dtype=INT32, value=0)
            )
            return decl.name, lower
        if isinstance(init, ast.ExprStmt) and isinstance(init.expr, ast.Assignment):
            target = init.expr.target
            if isinstance(target, ast.Identifier):
                lower = self._lower_expr(init.expr.value, ir_function)
                return target.name, lower
        return None, None

    def _bound_from_condition(
        self, condition: Optional[ast.Expr], ir_function: IRFunction
    ) -> Tuple[Optional[Expr], str, Optional[str]]:
        """Return (upper bound expression, comparison op, induction var name)."""
        if condition is None:
            return None, "<", None
        if isinstance(condition, ast.BinaryOp) and condition.op in _COMPARISON_OPS:
            left, right = condition.left, condition.right
            if isinstance(left, ast.Identifier):
                return (
                    self._lower_expr(right, ir_function),
                    condition.op,
                    left.name,
                )
            if isinstance(right, ast.Identifier):
                flipped = {"<": ">", ">": "<", "<=": ">=", ">=": "<="}.get(
                    condition.op, condition.op
                )
                return self._lower_expr(left, ir_function), flipped, right.name
        return self._lower_expr(condition, ir_function), "<", None

    def _step_from_increment(
        self, increment: Optional[ast.Expr], var: Optional[str]
    ) -> int:
        if increment is None:
            return 1
        if isinstance(increment, ast.UnaryOp) and increment.op in ("++", "--"):
            return 1 if increment.op == "++" else -1
        if isinstance(increment, ast.Assignment):
            if increment.op in ("+=", "-="):
                value = _fold_int(increment.value)
                if value is not None:
                    return value if increment.op == "+=" else -value
            if increment.op == "=" and isinstance(increment.value, ast.BinaryOp):
                binary = increment.value
                if (
                    binary.op in ("+", "-")
                    and isinstance(binary.left, ast.Identifier)
                    and var is not None
                    and binary.left.name == var
                ):
                    value = _fold_int(binary.right)
                    if value is not None:
                        return value if binary.op == "+" else -value
        return 1

    # -- expressions -----------------------------------------------------------------

    def _lower_expr(self, expr: Optional[ast.Expr], ir_function: IRFunction) -> Expr:
        if expr is None:
            return Const(dtype=INT32, value=0)
        if isinstance(expr, ast.IntLiteral):
            return Const(dtype=INT32, value=expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return Const(dtype=DType("float", 64), value=expr.value)
        if isinstance(expr, ast.CharLiteral):
            return Const(dtype=DType("int", 8), value=expr.value)
        if isinstance(expr, ast.StringLiteral):
            return Const(dtype=INT32, value=0)
        if isinstance(expr, ast.Identifier):
            dtype = ir_function.scalars.get(expr.name)
            if dtype is None and expr.name in ir_function.arrays:
                dtype = ir_function.arrays[expr.name].dtype
            return ScalarRef(dtype=dtype or INT32, name=expr.name)
        if isinstance(expr, ast.ArraySubscript):
            root = expr.root_array()
            if root is None:
                return Const(dtype=INT32, value=0)
            self._ensure_array(root.name, expr, ir_function)
            info = ir_function.arrays[root.name]
            subscripts = tuple(
                self._lower_expr(index, ir_function) for index in expr.indices()
            )
            return LoadOp(dtype=info.dtype, array=root.name, subscripts=subscripts)
        if isinstance(expr, ast.UnaryOp):
            if expr.op in ("++", "--"):
                # Value of pre/post increment inside an expression: the scalar.
                if isinstance(expr.operand, ast.Identifier):
                    dtype = ir_function.scalars.get(expr.operand.name, INT32)
                    return ScalarRef(dtype=dtype, name=expr.operand.name)
                return self._lower_expr(expr.operand, ir_function)
            if expr.op == "*" and isinstance(expr.operand, ast.Identifier):
                self._ensure_array(expr.operand.name, None, ir_function)
                info = ir_function.arrays[expr.operand.name]
                return LoadOp(
                    dtype=info.dtype,
                    array=expr.operand.name,
                    subscripts=(Const(dtype=INT32, value=0),),
                )
            operand = self._lower_expr(expr.operand, ir_function)
            if expr.op == "+":
                return operand
            if expr.op == "&":
                return operand
            return UnaryOpExpr(dtype=operand.dtype, op=expr.op, operand=operand)
        if isinstance(expr, ast.BinaryOp):
            lhs = self._lower_expr(expr.left, ir_function)
            rhs = self._lower_expr(expr.right, ir_function)
            if expr.op in _COMPARISON_OPS:
                return Compare(dtype=INT32, op=expr.op, lhs=lhs, rhs=rhs)
            if expr.op in ("&&", "||"):
                return BinOp(dtype=INT32, op=expr.op, lhs=lhs, rhs=rhs)
            if expr.op == ",":
                return rhs
            dtype = promote(lhs.dtype, rhs.dtype)
            return BinOp(dtype=dtype, op=expr.op, lhs=lhs, rhs=rhs)
        if isinstance(expr, ast.Assignment):
            # Assignment used as a value: lower the RHS only.
            return self._lower_expr(expr.value, ir_function)
        if isinstance(expr, ast.TernaryOp):
            condition = self._lower_expr(expr.condition, ir_function)
            true_value = self._lower_expr(expr.then_value, ir_function)
            false_value = self._lower_expr(expr.else_value, ir_function)
            dtype = promote(true_value.dtype, false_value.dtype)
            return Select(
                dtype=dtype,
                condition=condition,
                true_value=true_value,
                false_value=false_value,
            )
        if isinstance(expr, ast.Cast):
            operand = self._lower_expr(expr.operand, ir_function)
            target = dtype_from_ctype(expr.target_type) if expr.target_type else INT32
            if target == operand.dtype:
                return operand
            return Convert(dtype=target, operand=operand, from_dtype=operand.dtype)
        if isinstance(expr, ast.Call):
            args = tuple(self._lower_expr(argument, ir_function) for argument in expr.args)
            dtype = args[0].dtype if args else DType("float", 64)
            if self._loop_stack and expr.callee not in _MATH_INTRINSICS:
                self._loop_stack[-1].has_calls = True
            return CallOp(dtype=dtype, callee=expr.callee, args=args)
        if isinstance(expr, ast.SizeOf):
            size = (
                expr.target_type.size_bytes
                if expr.target_type is not None
                else (expr.operand.ctype.size_bytes if expr.operand is not None and expr.operand.ctype else 4)
            )
            return Const(dtype=INT32, value=size)
        raise LoweringError(f"cannot lower expression {type(expr).__name__}")

    # -- helpers -------------------------------------------------------------------

    def _ensure_array(
        self,
        name: str,
        subscript: Optional[ast.ArraySubscript],
        ir_function: IRFunction,
    ) -> None:
        """Make sure ``name`` has an :class:`ArrayInfo`; infer rank if needed."""
        if name in ir_function.arrays:
            return
        rank = len(subscript.indices()) if subscript is not None else 1
        dtype = INT32
        symbol = self.sema.symbol_for(ir_function.name, name)
        if symbol is not None:
            dtype = dtype_from_ctype(symbol.ctype)
        ir_function.arrays[name] = ArrayInfo(
            name=name, dtype=dtype, dims=tuple([None] * rank), is_parameter=True
        )

    def _coerce(self, value: Expr, dtype: DType) -> Expr:
        """Insert a Convert when storing a value into a differently-typed slot."""
        if value.dtype == dtype:
            return value
        if isinstance(value, Const):
            return Const(dtype=dtype, value=value.value)
        return Convert(dtype=dtype, operand=value, from_dtype=value.dtype)


def _fold_int(expr: Optional[ast.Expr]) -> Optional[int]:
    if isinstance(expr, ast.IntLiteral):
        return expr.value
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _fold_int(expr.operand)
        return -inner if inner is not None else None
    return None


def lower_function(
    unit: ast.TranslationUnit,
    function: ast.FunctionDecl,
    sema: Optional[SemanticInfo] = None,
    context: Optional[LoweringContext] = None,
) -> IRFunction:
    """Lower one function of a parsed translation unit to the loop IR."""
    if sema is None:
        sema = analyze(unit)
    return FunctionLowerer(unit, sema, context).lower(function)


def lower_unit(
    unit: ast.TranslationUnit,
    sema: Optional[SemanticInfo] = None,
    context: Optional[LoweringContext] = None,
) -> Dict[str, IRFunction]:
    """Lower every function in the translation unit; returns name -> IR."""
    if sema is None:
        sema = analyze(unit)
    lowerer = FunctionLowerer(unit, sema, context)
    return {function.name: lowerer.lower(function) for function in unit.functions}
