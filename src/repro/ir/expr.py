"""Expression DAG used on the right-hand side of IR statements."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.ir.dtypes import DType, INT32


@dataclass
class Expr:
    """Base class for IR expressions.

    Expressions are small immutable-by-convention trees; the simulator and
    the vectorizer walk them to count operations, classify memory accesses
    and find reductions.
    """

    dtype: DType = INT32

    def children(self) -> Iterable["Expr"]:
        return ()

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def loads(self) -> List["LoadOp"]:
        """All memory reads in this expression tree."""
        return [node for node in self.walk() if isinstance(node, LoadOp)]

    def scalar_refs(self) -> List["ScalarRef"]:
        return [node for node in self.walk() if isinstance(node, ScalarRef)]

    def op_count(self) -> int:
        """Number of arithmetic/logic operations (excludes loads and refs)."""
        return sum(
            1
            for node in self.walk()
            if isinstance(node, (BinOp, UnaryOpExpr, Compare, Select, Convert, CallOp))
        )


@dataclass
class Const(Expr):
    """A literal constant."""

    value: float = 0

    def __str__(self) -> str:
        return str(self.value)


@dataclass
class ScalarRef(Expr):
    """A reference to a scalar variable (induction variable, parameter, local)."""

    name: str = ""

    def __str__(self) -> str:
        return self.name


@dataclass
class LoadOp(Expr):
    """A read from memory: ``array[subscripts...]``.

    ``subscripts`` are IR expressions, one per array dimension, outermost
    dimension first.
    """

    array: str = ""
    subscripts: Tuple[Expr, ...] = ()

    def children(self) -> Iterable[Expr]:
        return self.subscripts

    def __str__(self) -> str:
        indices = "][".join(str(s) for s in self.subscripts)
        return f"{self.array}[{indices}]"


@dataclass
class BinOp(Expr):
    """Arithmetic/bitwise binary operation."""

    op: str = "+"
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None

    def children(self) -> Iterable[Expr]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass
class UnaryOpExpr(Expr):
    """Unary operation (negation, bitwise not, logical not)."""

    op: str = "-"
    operand: Optional[Expr] = None

    def children(self) -> Iterable[Expr]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass
class Compare(Expr):
    """Comparison producing a boolean (modelled as i32 0/1)."""

    op: str = "<"
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None

    def children(self) -> Iterable[Expr]:
        return (self.lhs, self.rhs)

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass
class Select(Expr):
    """``cond ? a : b`` — the vectorized form of an if-converted predicate."""

    condition: Optional[Expr] = None
    true_value: Optional[Expr] = None
    false_value: Optional[Expr] = None

    def children(self) -> Iterable[Expr]:
        return (self.condition, self.true_value, self.false_value)

    def __str__(self) -> str:
        return f"select({self.condition}, {self.true_value}, {self.false_value})"


@dataclass
class Convert(Expr):
    """Element type conversion (e.g. i16 -> i32, i32 -> f32)."""

    operand: Optional[Expr] = None
    from_dtype: DType = INT32

    def children(self) -> Iterable[Expr]:
        return (self.operand,)

    @property
    def is_widening(self) -> bool:
        return self.dtype.bits > self.from_dtype.bits or (
            self.dtype.is_float and self.from_dtype.is_integer
        )

    def __str__(self) -> str:
        return f"convert<{self.from_dtype}->{self.dtype}>({self.operand})"


@dataclass
class CallOp(Expr):
    """A call to a math intrinsic (sqrt, fabs, ...) inside a loop body."""

    callee: str = ""
    args: Tuple[Expr, ...] = ()

    def children(self) -> Iterable[Expr]:
        return self.args

    def __str__(self) -> str:
        return f"{self.callee}({', '.join(str(a) for a in self.args)})"
