"""Textual dump of the loop IR (for debugging, tests and documentation)."""

from __future__ import annotations

from typing import List

from repro.ir.nodes import Conditional, IRFunction, Loop, RegionNode, Statement


def print_function(function: IRFunction) -> str:
    """Render an :class:`IRFunction` as an indented text listing."""
    lines: List[str] = [f"func @{function.name} {{"]
    for name, info in sorted(function.arrays.items()):
        dims = "x".join(str(d) if d is not None else "?" for d in info.dims)
        origin = "global" if info.is_global else ("param" if info.is_parameter else "local")
        align = f", align {info.alignment}" if info.alignment else ""
        lines.append(f"  array {name} : {info.dtype}[{dims}] ({origin}{align})")
    for name, dtype in sorted(function.parameters.items()):
        lines.append(f"  param {name} : {dtype}")
    lines.extend(_print_nodes(function.body, 1))
    lines.append("}")
    return "\n".join(lines)


def _print_nodes(nodes: List[RegionNode], level: int) -> List[str]:
    pad = "  " * level
    lines: List[str] = []
    for node in nodes:
        if isinstance(node, Statement):
            lines.append(f"{pad}{node}")
        elif isinstance(node, Conditional):
            lines.append(f"{pad}if ({node.condition}) {{")
            lines.extend(_print_nodes(node.then_body, level + 1))
            if node.else_body:
                lines.append(f"{pad}}} else {{")
                lines.extend(_print_nodes(node.else_body, level + 1))
            lines.append(f"{pad}}}")
        elif isinstance(node, Loop):
            attributes = []
            if node.trip_count is not None:
                attributes.append(f"trip={node.trip_count}")
            if node.pragma is not None and not node.pragma.is_empty:
                attributes.append(f"pragma[{node.pragma}]")
            if node.has_early_exit:
                attributes.append("early-exit")
            if node.has_calls:
                attributes.append("calls")
            suffix = f"  // {' '.join(attributes)}" if attributes else ""
            lines.append(f"{pad}{node} {{{suffix}")
            lines.extend(_print_nodes(node.body, level + 1))
            lines.append(f"{pad}}}")
    return lines
