"""Region-tree nodes of the structured loop IR."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.frontend.pragmas import LoopPragma
from repro.ir.dtypes import DType, INT32
from repro.ir.expr import Expr, LoadOp


@dataclass
class ArrayInfo:
    """What the IR knows about one array (or pointer treated as an array)."""

    name: str
    dtype: DType
    dims: Tuple[Optional[int], ...] = (None,)
    alignment: Optional[int] = None
    is_global: bool = False
    is_parameter: bool = False

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def element_count(self) -> Optional[int]:
        total = 1
        for dim in self.dims:
            if dim is None:
                return None
            total *= dim
        return total


@dataclass
class MemoryAccess:
    """One read or write of an array inside a statement.

    ``subscripts`` are IR expressions (one per dimension, outermost first);
    the affine analysis in :mod:`repro.analysis.affine` interprets them as
    functions of the surrounding induction variables.
    """

    array: str
    subscripts: Tuple[Expr, ...]
    is_write: bool
    dtype: DType = INT32
    statement_id: int = -1

    def __str__(self) -> str:
        kind = "store" if self.is_write else "load"
        indices = "][".join(str(s) for s in self.subscripts)
        return f"{kind} {self.array}[{indices}]"


# A region node is a Statement, Conditional or Loop.
RegionNode = Union["Statement", "Conditional", "Loop"]

_statement_ids = itertools.count()


@dataclass
class Statement:
    """A single store or scalar assignment with an expression RHS."""

    kind: str  # "store" or "scalar"
    value: Expr
    target_array: Optional[str] = None
    target_subscripts: Tuple[Expr, ...] = ()
    target_scalar: Optional[str] = None
    dtype: DType = INT32
    compound_op: Optional[str] = None  # '+' for 'x += v', None for plain '='
    statement_id: int = field(default_factory=lambda: next(_statement_ids))

    def __post_init__(self) -> None:
        if self.kind not in ("store", "scalar"):
            raise ValueError(f"unknown statement kind {self.kind!r}")
        if self.kind == "store" and self.target_array is None:
            raise ValueError("store statement requires a target array")
        if self.kind == "scalar" and self.target_scalar is None:
            raise ValueError("scalar statement requires a target name")

    # -- access collection ---------------------------------------------------

    def reads(self) -> List[MemoryAccess]:
        """All memory reads performed by this statement (RHS + subscripts)."""
        accesses = []
        for load in self.value.loads():
            accesses.append(
                MemoryAccess(
                    array=load.array,
                    subscripts=load.subscripts,
                    is_write=False,
                    dtype=load.dtype,
                    statement_id=self.statement_id,
                )
            )
        for subscript in self.target_subscripts:
            for load in subscript.loads():
                accesses.append(
                    MemoryAccess(
                        array=load.array,
                        subscripts=load.subscripts,
                        is_write=False,
                        dtype=load.dtype,
                        statement_id=self.statement_id,
                    )
                )
        return accesses

    def writes(self) -> List[MemoryAccess]:
        """The memory write performed by this statement, if it is a store."""
        if self.kind != "store":
            return []
        return [
            MemoryAccess(
                array=self.target_array,
                subscripts=self.target_subscripts,
                is_write=True,
                dtype=self.dtype,
                statement_id=self.statement_id,
            )
        ]

    def accesses(self) -> List[MemoryAccess]:
        return self.reads() + self.writes()

    def __str__(self) -> str:
        # ``value`` always holds the complete right-hand side (compound
        # assignments are expanded during lowering), so print plain '='.
        if self.kind == "store":
            indices = "][".join(str(s) for s in self.target_subscripts)
            return f"{self.target_array}[{indices}] = {self.value}"
        return f"{self.target_scalar} = {self.value}"


@dataclass
class Conditional:
    """An if/else region.  Vectorizing across it requires if-conversion."""

    condition: Expr
    then_body: List[RegionNode] = field(default_factory=list)
    else_body: List[RegionNode] = field(default_factory=list)

    def __str__(self) -> str:
        return f"if ({self.condition})"


@dataclass
class Loop:
    """A counted loop: ``for (var = lower; var < upper; var += step)``.

    ``trip_count`` is the number of iterations when it is known statically
    (or after binding default parameter values); ``None`` means unknown at
    compile time, which forces the vectorizer to emit runtime trip-count
    checks and a scalar epilogue.
    """

    var: str
    lower: Expr
    upper: Expr
    step: int = 1
    body: List[RegionNode] = field(default_factory=list)
    pragma: Optional[LoopPragma] = None
    trip_count: Optional[int] = None
    loop_id: int = field(default_factory=lambda: next(_statement_ids))
    condition_op: str = "<"
    has_early_exit: bool = False
    has_calls: bool = False

    # -- structure queries -----------------------------------------------------

    def subloops(self) -> List["Loop"]:
        """Directly nested loops (one level down, including inside ifs)."""
        found: List[Loop] = []

        def visit(nodes: Iterable[RegionNode]) -> None:
            for node in nodes:
                if isinstance(node, Loop):
                    found.append(node)
                elif isinstance(node, Conditional):
                    visit(node.then_body)
                    visit(node.else_body)

        visit(self.body)
        return found

    def all_loops(self) -> List["Loop"]:
        """This loop and every loop nested anywhere below it (pre-order)."""
        result: List[Loop] = [self]
        for sub in self.subloops():
            result.extend(sub.all_loops())
        return result

    @property
    def is_innermost(self) -> bool:
        return not self.subloops()

    def innermost_loops(self) -> List["Loop"]:
        return [loop for loop in self.all_loops() if loop.is_innermost]

    @property
    def depth_below(self) -> int:
        """Nesting depth of the loop tree rooted at this loop (>= 1)."""
        subs = self.subloops()
        if not subs:
            return 1
        return 1 + max(sub.depth_below for sub in subs)

    def statements(self, recursive: bool = True) -> List[Statement]:
        """Statements in this loop's body (optionally including nested loops)."""
        result: List[Statement] = []

        def visit(nodes: Iterable[RegionNode]) -> None:
            for node in nodes:
                if isinstance(node, Statement):
                    result.append(node)
                elif isinstance(node, Conditional):
                    visit(node.then_body)
                    visit(node.else_body)
                elif isinstance(node, Loop) and recursive:
                    visit(node.body)

        visit(self.body)
        return result

    def conditionals(self, recursive: bool = False) -> List[Conditional]:
        result: List[Conditional] = []

        def visit(nodes: Iterable[RegionNode]) -> None:
            for node in nodes:
                if isinstance(node, Conditional):
                    result.append(node)
                    visit(node.then_body)
                    visit(node.else_body)
                elif isinstance(node, Loop) and recursive:
                    visit(node.body)

        visit(self.body)
        return result

    def accesses(self, recursive: bool = True) -> List[MemoryAccess]:
        accesses: List[MemoryAccess] = []
        for statement in self.statements(recursive=recursive):
            accesses.extend(statement.accesses())
        return accesses

    def __str__(self) -> str:
        return (
            f"for ({self.var} = {self.lower}; {self.var} {self.condition_op} "
            f"{self.upper}; {self.var} += {self.step})"
        )


@dataclass
class IRFunction:
    """One function lowered to the loop IR."""

    name: str
    body: List[RegionNode] = field(default_factory=list)
    arrays: Dict[str, ArrayInfo] = field(default_factory=dict)
    scalars: Dict[str, DType] = field(default_factory=dict)
    parameters: Dict[str, DType] = field(default_factory=dict)
    return_dtype: Optional[DType] = None
    source_name: str = "<source>"

    # -- structure queries -----------------------------------------------------

    def top_level_loops(self) -> List[Loop]:
        found: List[Loop] = []

        def visit(nodes: Iterable[RegionNode]) -> None:
            for node in nodes:
                if isinstance(node, Loop):
                    found.append(node)
                elif isinstance(node, Conditional):
                    visit(node.then_body)
                    visit(node.else_body)

        visit(self.body)
        return found

    def all_loops(self) -> List[Loop]:
        loops: List[Loop] = []
        for top in self.top_level_loops():
            loops.extend(top.all_loops())
        return loops

    def innermost_loops(self) -> List[Loop]:
        return [loop for loop in self.all_loops() if loop.is_innermost]

    def loop_by_id(self, loop_id: int) -> Optional[Loop]:
        for loop in self.all_loops():
            if loop.loop_id == loop_id:
                return loop
        return None

    def statements(self) -> List[Statement]:
        result: List[Statement] = []

        def visit(nodes: Iterable[RegionNode]) -> None:
            for node in nodes:
                if isinstance(node, Statement):
                    result.append(node)
                elif isinstance(node, Conditional):
                    visit(node.then_body)
                    visit(node.else_body)
                elif isinstance(node, Loop):
                    visit(node.body)

        visit(self.body)
        return result

    def array_info(self, name: str) -> Optional[ArrayInfo]:
        return self.arrays.get(name)

    def parent_map(self) -> Dict[int, Optional[Loop]]:
        """Map each loop's ``loop_id`` to its parent loop (None for top level)."""
        parents: Dict[int, Optional[Loop]] = {}

        def visit(nodes: Iterable[RegionNode], parent: Optional[Loop]) -> None:
            for node in nodes:
                if isinstance(node, Loop):
                    parents[node.loop_id] = parent
                    visit(node.body, node)
                elif isinstance(node, Conditional):
                    visit(node.then_body, parent)
                    visit(node.else_body, parent)

        visit(self.body, None)
        return parents

    def enclosing_loops(self, loop: Loop) -> List[Loop]:
        """Loops enclosing ``loop``, outermost first, including ``loop`` itself."""
        parents = self.parent_map()
        chain: List[Loop] = [loop]
        current = parents.get(loop.loop_id)
        while current is not None:
            chain.append(current)
            current = parents.get(current.loop_id)
        chain.reverse()
        return chain
