"""Structural well-formedness checks for the loop IR.

The verifier catches lowering bugs early: every store must target a known
array with the right number of subscripts, loop steps must be non-zero,
induction variables must be registered as scalars, and the region tree must
be acyclic (no node appears twice).
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.expr import LoadOp
from repro.ir.nodes import Conditional, IRFunction, Loop, RegionNode, Statement


class VerificationError(Exception):
    """Raised when an IR function violates a structural invariant."""

    def __init__(self, problems: List[str]):
        self.problems = problems
        super().__init__("; ".join(problems))


def verify_function(function: IRFunction, raise_on_error: bool = True) -> List[str]:
    """Check ``function`` and return the list of problems found.

    When ``raise_on_error`` is true (the default) a non-empty problem list is
    raised as :class:`VerificationError`.
    """
    problems: List[str] = []
    seen_nodes: Set[int] = set()

    def check_expr_loads(statement: Statement) -> None:
        for load in statement.value.loads():
            _check_access(load.array, len(load.subscripts), statement, problems, function)

    def _check_access(
        array: str, rank: int, statement: Statement, problems: List[str],
        function: IRFunction,
    ) -> None:
        info = function.arrays.get(array)
        if info is None:
            problems.append(
                f"statement {statement.statement_id}: unknown array {array!r}"
            )
            return
        if info.rank != rank:
            problems.append(
                f"statement {statement.statement_id}: array {array!r} has rank "
                f"{info.rank} but is accessed with {rank} subscripts"
            )

    def visit(nodes: List[RegionNode], loop_vars: Set[str]) -> None:
        for node in nodes:
            if id(node) in seen_nodes:
                problems.append(f"node {node} appears more than once in the tree")
                continue
            seen_nodes.add(id(node))
            if isinstance(node, Statement):
                if node.kind == "store":
                    _check_access(
                        node.target_array,
                        len(node.target_subscripts),
                        node,
                        problems,
                        function,
                    )
                check_expr_loads(node)
            elif isinstance(node, Conditional):
                visit(node.then_body, loop_vars)
                visit(node.else_body, loop_vars)
            elif isinstance(node, Loop):
                if node.step == 0:
                    problems.append(f"loop over {node.var!r} has step 0")
                if node.var in loop_vars:
                    problems.append(
                        f"induction variable {node.var!r} shadows an enclosing loop"
                    )
                if node.var not in function.scalars and not node.var.startswith("__"):
                    problems.append(
                        f"induction variable {node.var!r} is not a known scalar"
                    )
                if node.trip_count is not None and node.trip_count < 0:
                    problems.append(
                        f"loop over {node.var!r} has negative trip count"
                    )
                visit(node.body, loop_vars | {node.var})
            else:
                problems.append(f"unknown region node type {type(node).__name__}")

    visit(function.body, set())

    if problems and raise_on_error:
        raise VerificationError(problems)
    return problems
