"""Batched policy serving: the compile service front door.

The subsystem that turns a trained policy into a request-scale
optimization server (the ROADMAP's millions-of-users direction):

* :class:`CompileService` — admission queue, micro-batching with
  in-flight deduplication, one shared-trunk ``act_batch`` forward per
  tick, and a three-tier answer path (warm store / frontend memo / cold).
* :class:`CompileServer` / :class:`TCPClient` — a threaded
  newline-delimited-JSON TCP front end and its pipelining client.
* :class:`InProcessClient` — the zero-serialization client tests and
  benchmarks use.
* :class:`ServingStats` / :class:`ServingReport` — p50/p95/p99 latency,
  requests/s, tier hit rates; rendered by
  :func:`repro.evaluation.report.format_serving_stats_table`.
"""

from repro.serving.client import InProcessClient, TCPClient
from repro.serving.queue import AdmissionQueue, ResponseFuture
from repro.serving.schema import (
    TIER_COLD,
    TIER_FRONTEND,
    TIER_STORE,
    TIERS,
    AdmissionRejected,
    CompileRequest,
    CompileResponse,
    ServiceClosed,
    ServingError,
)
from repro.serving.server import CompileServer
from repro.serving.service import CompileService
from repro.serving.stats import ServingReport, ServingStats

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "CompileRequest",
    "CompileResponse",
    "CompileServer",
    "CompileService",
    "InProcessClient",
    "ResponseFuture",
    "ServiceClosed",
    "ServingError",
    "ServingReport",
    "ServingStats",
    "TCPClient",
    "TIER_COLD",
    "TIER_FRONTEND",
    "TIER_STORE",
    "TIERS",
]
