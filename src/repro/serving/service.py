"""The compile service: a batched policy-serving front door.

:class:`CompileService` turns a trained policy into a request-scale
optimization server.  Requests are admitted into an
:class:`~repro.serving.queue.AdmissionQueue`; a single tick worker collects
them into micro-batches (max-batch-size / max-wait-µs coalescing window),
deduplicates identical in-flight kernels by content hash (followers share
the leader's computation), runs **one** shared-trunk
:meth:`~repro.rl.policy.MultiTaskPolicy.act_batch` forward over every
decision site of every unique kernel in the tick — mixed tasks included —
and answers each request through a three-tier path:

* ``store`` — every measurement came from the warm reward cache (e.g. a
  preloaded :class:`repro.distributed.store.DiskBackedRewardCache`):
  **zero** simulator calls.
* ``frontend`` — the service's observation memo hit, skipping parse → AST →
  embedding entirely; only the measurement simulated.
* ``cold`` — full pipeline: parse, embed, decide, transform, simulate.

Shutdown is graceful by default: :meth:`CompileService.stop` closes
admission and drains every queued request before the worker exits.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.reward_cache import (
    WHOLE_FUNCTION_APPLICATION,
    RewardCache,
    resolve_cache,
)
from repro.core.loop_extractor import extract_loops
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.serving.queue import AdmissionQueue, QueuedRequest, ResponseFuture, fail_pending
from repro.serving.schema import (
    TIER_COLD,
    TIER_FRONTEND,
    TIER_STORE,
    CompileRequest,
    CompileResponse,
    ServingError,
)
from repro.serving.stats import ServingReport, ServingStats
from repro.tasks import OptimizationTask, resolve_task, resolve_tasks


class CompileService:
    """Serve optimization decisions for kernel sources from a trained policy.

    ``tasks`` lists the optimization tasks this service answers for (any
    registered task name or instance); the policy must decide each one —
    a head bank of a :class:`repro.rl.policy.MultiTaskPolicy` or a task
    embedding of a :class:`repro.rl.policy.ConditionedPolicy` — with an
    action space matching the task's menus, validated at construction,
    not on the first mismatched request.  When omitted, the policy's own
    trained tasks decide the line-up (a legacy unnamed single bank
    serves the default task).

    ``max_batch_size`` / ``max_wait_us`` tune the coalescing window,
    ``max_queue_depth`` bounds admission (load shedding), ``slo_ms`` sets
    the optional latency objective reported by :meth:`stats_report`.
    """

    def __init__(
        self,
        policy,
        embedding_model,
        tasks: Optional[Sequence] = None,
        pipeline: Optional[CompileAndMeasure] = None,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
        max_batch_size: int = 16,
        max_wait_us: int = 2000,
        max_queue_depth: Optional[int] = None,
        observation_memo_size: int = 512,
        slo_ms: Optional[float] = None,
    ):
        from repro.rl.policy import DEFAULT_HEAD

        if embedding_model is None:
            raise ValueError("the compile service needs an embedding model")
        self._policy = policy
        self._embedding_model = embedding_model
        if tasks is None:
            trained = [
                name
                for name in getattr(policy, "task_names", [])
                if name != DEFAULT_HEAD
            ]
            resolved = (
                resolve_tasks(trained) if trained else [resolve_task(None)]
            )
        else:
            resolved = resolve_tasks(tasks)
        self._tasks: "OrderedDict[str, OptimizationTask]" = OrderedDict(
            (task.name, task) for task in resolved
        )
        # Fail now, not mid-traffic: every served task needs a policy head
        # bank whose action space decodes into exactly the task's menus.
        self._spaces = {}
        for task in resolved:
            space = policy.space_for(task.name)
            if tuple(space.menus) != tuple(task.menus):
                raise ValueError(
                    f"policy head for task {task.name!r} decodes menus "
                    f"{space.menus!r} but the task defines {task.menus!r}"
                )
            self._spaces[task.name] = space
        self._pipeline = pipeline or CompileAndMeasure()
        self._reward_cache = resolve_cache(reward_cache, evaluation_service)
        if (
            evaluation_service is not None
            and evaluation_service.cache is not self._reward_cache
        ):
            raise ValueError(
                "evaluation service uses a different RewardCache than the "
                "service; share one cache (e.g. pass service.cache)"
            )
        self.evaluation_service = evaluation_service
        self._queue: AdmissionQueue = AdmissionQueue(
            max_batch_size=max_batch_size,
            max_wait_us=max_wait_us,
            max_queue_depth=max_queue_depth,
        )
        self._stats = ServingStats(slo_ms=slo_ms)
        # request fingerprint -> (kernel, [(site_index, observation), ...]):
        # a hit skips parse/AST/embedding entirely (the ``frontend`` tier).
        self._observation_memo: "OrderedDict[str, tuple]" = OrderedDict()
        self._observation_memo_size = int(observation_memo_size)
        self._thread: Optional[threading.Thread] = None

    # -- wiring ---------------------------------------------------------------

    @classmethod
    def from_framework(cls, framework, **knobs) -> "CompileService":
        """Adopt a (trained) :class:`repro.core.framework.NeuroVectorizer`.

        The service serves every task the framework was trained for and
        shares its pipeline, reward cache (so a disk-backed store warms the
        ``store`` tier), embedding model and evaluation service.
        """
        policy = getattr(framework.agent, "policy", None)
        if policy is None:
            raise ValueError(
                "the framework's agent has no policy to serve; train one "
                "(NeuroVectorizer.train) or wire a PolicyAgent"
            )
        knobs.setdefault("tasks", list(framework.tasks))
        return cls(
            policy,
            framework.embedding_model,
            pipeline=framework.pipeline,
            reward_cache=framework.reward_cache,
            evaluation_service=framework.evaluation_service,
            **knobs,
        )

    @property
    def served_tasks(self) -> List[str]:
        """Names of the tasks this service routes requests to."""
        return list(self._tasks)

    @property
    def reward_cache(self) -> RewardCache:
        return self._reward_cache

    @property
    def stats(self) -> ServingStats:
        return self._stats

    def report(self) -> ServingReport:
        return self._stats.report()

    def stats_report(self, title: str = "compile service"):
        """The p50/p95/p99 latency / throughput / tier-rate text table."""
        from repro.evaluation.report import format_serving_stats_table

        return format_serving_stats_table(self._stats.report(), title=title)

    # -- lifecycle ------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "CompileService":
        """Start the tick worker (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="compile-service", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down: close admission, then drain or fail queued requests.

        With ``drain=True`` (the default) every already-admitted request is
        still answered before the worker exits; with ``drain=False`` queued
        requests fail fast with :class:`ServingError` and only the batch
        already in flight completes.
        """
        self._queue.close()
        if not drain:
            fail_pending(
                self._queue.pop_all(), "compile service stopped without draining"
            )
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        # Late stragglers admitted between close() racing submit() cannot
        # exist (submit raises after close), but a non-draining stop may
        # leave items the worker popped nothing from.
        fail_pending(self._queue.pop_all(), "compile service stopped")

    def __enter__(self) -> "CompileService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop(drain=True)

    # -- request admission ----------------------------------------------------

    def submit(self, request: CompileRequest) -> ResponseFuture:
        """Admit one request; returns a future resolving to its response.

        Raises :class:`ServiceClosed` after shutdown and
        :class:`AdmissionRejected` when the queue is at capacity.
        Submitting before :meth:`start` is allowed — requests wait in the
        admission queue until the worker runs.
        """
        now = time.monotonic()
        item = QueuedRequest(request=request, future=ResponseFuture(), enqueued_at=now)
        self._queue.submit(item)
        self._stats.mark_arrival(now)
        return item.future

    def optimize(
        self, request: CompileRequest, timeout: Optional[float] = None
    ) -> CompileResponse:
        """Blocking single-request convenience over :meth:`submit`."""
        return self.submit(request).result(timeout)

    # -- the tick worker ------------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._queue.next_batch()
            if not batch:
                return
            self._process_batch(batch)

    def _memo_get(self, fingerprint: str):
        entry = self._observation_memo.get(fingerprint)
        if entry is not None:
            self._observation_memo.move_to_end(fingerprint)
        return entry

    def _memo_put(self, fingerprint: str, entry) -> None:
        self._observation_memo[fingerprint] = entry
        self._observation_memo.move_to_end(fingerprint)
        while len(self._observation_memo) > self._observation_memo_size:
            self._observation_memo.popitem(last=False)

    def _prepare_job(self, request: CompileRequest, task: OptimizationTask):
        """Resolve (kernel, per-site observations) for one unique request.

        Returns ``(kernel, sites, memo_hit)`` where ``sites`` is a list of
        ``(site_index, observation)`` pairs.  A memo hit skips the whole
        parse → decision-site → embedding front end.
        """
        fingerprint = request.fingerprint()
        memo = self._memo_get(fingerprint)
        if memo is not None:
            kernel, sites = memo
            return kernel, sites, True
        function_name = request.function_name
        if function_name is None:
            loops = extract_loops(request.source)
            if not loops:
                raise ServingError("no loops found in the submitted source")
            function_name = loops[0].function_name
        kernel = LoopKernel(
            name=request.name,
            source=request.source,
            function_name=function_name,
            suite="serving",
            bindings=dict(request.bindings),
        )
        sites = [
            (site.index, task.observation_features(site, self._embedding_model))
            for site in task.decision_sites(kernel)
        ]
        self._memo_put(fingerprint, (kernel, sites))
        return kernel, sites, False

    def _process_batch(self, batch: List[QueuedRequest]) -> None:
        self._stats.record_tick(len(batch))
        groups: "OrderedDict[str, List[QueuedRequest]]" = OrderedDict()
        for item in batch:
            groups.setdefault(item.request.fingerprint(), []).append(item)

        # Phase 1: front end per unique kernel (memoized), collecting every
        # decision site of the whole tick into one observation matrix.
        jobs = []
        rows: List[np.ndarray] = []
        row_tasks: List[str] = []
        for items in groups.values():
            request = items[0].request
            job = {"items": items}
            jobs.append(job)
            task = self._tasks.get(request.task)
            if task is None:
                job["error"] = ServingError(
                    f"unknown task {request.task!r}; served tasks: "
                    f"{self.served_tasks}"
                )
                continue
            job["task"] = task
            try:
                kernel, sites, memo_hit = self._prepare_job(request, task)
            except ServingError as error:
                job["error"] = error
                continue
            except Exception as error:  # frontend/semantic failures
                job["error"] = ServingError(
                    f"failed to analyze kernel {request.name!r}: {error}"
                )
                continue
            job.update(kernel=kernel, sites=sites, memo_hit=memo_hit)
            job["row_slice"] = (len(rows), len(rows) + len(sites))
            for _site_index, observation in sites:
                rows.append(observation)
                row_tasks.append(task.name)

        # Phase 2: ONE shared-trunk forward for every site of every unique
        # kernel in this tick — mixed tasks ride the same trunk matmul.
        outputs: List = []
        if rows:
            try:
                outputs = self._policy.act_batch(
                    np.stack(rows), deterministic=True, tasks=row_tasks
                )
            except Exception as error:
                for job in jobs:
                    job.setdefault(
                        "error", ServingError(f"policy forward failed: {error}")
                    )
                outputs = []

        # Phase 3a: decode every unique kernel's decisions from the shared
        # forward's outputs.
        batch_size = len(batch)
        live_jobs = []
        for job in jobs:
            if "error" in job:
                self._respond_error(job["items"], batch_size, job["error"])
                continue
            task: OptimizationTask = job["task"]
            space = self._spaces[task.name]
            start, end = job["row_slice"]
            decisions: Dict[int, Tuple[int, ...]] = {}
            for (site_index, _), output in zip(job["sites"], outputs[start:end]):
                decisions[site_index] = task.cache_key(space.decode(output.action))
            job["decisions"] = decisions
            live_jobs.append(job)

        # Phase 3b: fan the tick's *cold* applications across the attached
        # evaluation service (process pool or fleet) so one slow simulation
        # no longer serializes the whole tick — the serial measure pass
        # below then answers fanned jobs from the freshly-merged cache.
        # Jobs whose application measurement is already cached are skipped
        # (they are the warm ``store`` tier; dispatching them would both
        # waste a worker and mislabel the tier).
        self._fan_out_measurements(live_jobs)

        # Phase 3c: measure per unique kernel, then fan each result out to
        # the leader and its coalesced followers.
        for job in live_jobs:
            task = job["task"]
            decisions = job["decisions"]
            try:
                # The misses delta over the measurement phase is the exact
                # simulation count (the tick worker is the only thread
                # touching this cache while serving): zero misses == the
                # warm-store tier.
                misses_before = self._reward_cache.stats.misses
                baseline, _ = self._reward_cache.measure_baseline(
                    self._pipeline, job["kernel"]
                )
                application = task.apply(
                    self._pipeline,
                    job["kernel"],
                    decisions,
                    reward_cache=self._reward_cache,
                )
                simulated = self._reward_cache.stats.misses - misses_before
            except Exception as error:
                self._respond_error(
                    job["items"],
                    batch_size,
                    ServingError(f"measurement failed: {error}"),
                )
                continue
            if simulated == 0 and not job.get("fanned"):
                # Zero local misses AND no remote simulation this tick:
                # the genuinely warm store tier.  A fanned job also shows
                # zero local misses, but its simulations merely ran
                # elsewhere — report it by its front-end path instead.
                tier = TIER_STORE
            elif job["memo_hit"]:
                tier = TIER_FRONTEND
            else:
                tier = TIER_COLD
            self._respond(
                job["items"],
                batch_size,
                task=task.name,
                decisions=decisions,
                cycles=float(application.result.cycles),
                baseline_cycles=float(baseline.cycles),
                tier=tier,
            )

    def _fan_out_measurements(self, jobs) -> None:
        """Run the tick's cold whole-kernel applications through the
        attached evaluation service, grouped per task.

        Each dispatched job's ``fanned`` flag records that its simulation
        happened remotely (the tier report uses it).  Fan-out failures are
        non-fatal: the serial measure pass re-runs anything unfinished.
        """
        service = self.evaluation_service
        if service is None or getattr(service, "workers", 0) == 0:
            return
        by_task: "OrderedDict[str, List[dict]]" = OrderedDict()
        for job in jobs:
            key = self._reward_cache.key_for(
                job["kernel"],
                self._pipeline.machine,
                WHOLE_FUNCTION_APPLICATION,
                default_symbol_value=self._pipeline.default_symbol_value,
                action=self._flattened_decisions(job["decisions"]),
                task=job["task"].name,
            )
            if self._reward_cache.peek(key) is not None:
                continue
            by_task.setdefault(job["task"].name, []).append(job)
        for name, group in by_task.items():
            try:
                flags = service.measure_applications(
                    self._tasks[name],
                    [(job["kernel"], job["decisions"]) for job in group],
                    detail=True,
                )
            except RuntimeError:
                continue
            for job, fanned in zip(group, flags):
                job["fanned"] = bool(fanned)

    @staticmethod
    def _flattened_decisions(decisions) -> Tuple[int, ...]:
        flattened: List[int] = []
        for site_index in sorted(decisions):
            flattened.append(int(site_index))
            flattened.extend(int(value) for value in decisions[site_index])
        return tuple(flattened)

    # -- response fan-out -----------------------------------------------------

    def _respond(
        self,
        items: List[QueuedRequest],
        batch_size: int,
        task: str,
        decisions: Dict[int, Tuple[int, ...]],
        cycles: float,
        baseline_cycles: float,
        tier: str,
    ) -> None:
        now = time.monotonic()
        for position, item in enumerate(items):
            latency_ms = (now - item.enqueued_at) * 1000.0
            coalesced = position > 0
            response = CompileResponse(
                request_id=item.request.request_id,
                kernel_name=item.request.name,
                task=task,
                decisions=dict(decisions),
                cycles=cycles,
                baseline_cycles=baseline_cycles,
                tier=tier,
                coalesced=coalesced,
                latency_ms=latency_ms,
                batch_size=batch_size,
            )
            self._stats.record_response(
                tier, latency_ms, now, coalesced=coalesced, error=False
            )
            item.future.resolve(response)

    def _respond_error(
        self, items: List[QueuedRequest], batch_size: int, error: Exception
    ) -> None:
        now = time.monotonic()
        for position, item in enumerate(items):
            latency_ms = (now - item.enqueued_at) * 1000.0
            coalesced = position > 0
            response = CompileResponse(
                request_id=item.request.request_id,
                kernel_name=item.request.name,
                task=item.request.task,
                tier=TIER_COLD,
                coalesced=coalesced,
                latency_ms=latency_ms,
                batch_size=batch_size,
                error=str(error),
            )
            self._stats.record_response(
                TIER_COLD, latency_ms, now, coalesced=coalesced, error=True
            )
            item.future.resolve(response)
