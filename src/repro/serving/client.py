"""Clients for the compile service: in-process and TCP.

:class:`InProcessClient` wraps a :class:`~repro.serving.service.
CompileService` directly — the zero-serialization path tests and benchmarks
drive.  :class:`TCPClient` speaks the newline-delimited-JSON wire format of
:class:`~repro.serving.server.CompileServer` over one socket, with
pipelining: :meth:`~TCPClient.optimize_many` submits every request before
reading any response (that concurrency is what the server's admission
queue coalesces into micro-batches), then matches responses to requests by
id.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Dict, List, Optional, Sequence

from repro.serving.schema import (
    CompileRequest,
    CompileResponse,
    ServingError,
    decode_message,
    encode_message,
)


def _as_request(request) -> CompileRequest:
    if isinstance(request, CompileRequest):
        return request
    if isinstance(request, str):
        return CompileRequest(source=request)
    raise TypeError(f"expected a CompileRequest or C source text, got {type(request)!r}")


class InProcessClient:
    """Drive a (started) service without sockets or serialization."""

    def __init__(self, service):
        self.service = service

    def optimize(
        self, request, timeout: Optional[float] = None
    ) -> CompileResponse:
        """Submit one request (a :class:`CompileRequest` or raw C source)
        and block for its response."""
        return self.service.optimize(_as_request(request), timeout)

    def optimize_many(
        self, requests: Sequence, timeout: Optional[float] = None
    ) -> List[CompileResponse]:
        """Submit every request before collecting any response.

        All requests are in flight together, so identical kernels coalesce
        and the admission queue fills whole micro-batches — the concurrent
        client behaviour the service is built for.
        """
        futures = [self.service.submit(_as_request(r)) for r in requests]
        return [future.result(timeout) for future in futures]


class TCPClient:
    """One socket connection to a :class:`CompileServer`.

    Thread-compatible (a lock serializes use); requests without an id get a
    connection-unique one so pipelined responses match up even if the
    server completes them out of order.
    """

    def __init__(self, host: str, port: int, timeout: Optional[float] = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._ids = itertools.count()

    @classmethod
    def connect(cls, address, timeout: Optional[float] = 30.0) -> "TCPClient":
        """Connect to a server's ``(host, port)`` address tuple."""
        host, port = address
        return cls(host, port, timeout=timeout)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "TCPClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- requests -------------------------------------------------------------

    def _tagged(self, request) -> CompileRequest:
        request = _as_request(request)
        if request.request_id is None:
            request.request_id = f"c{next(self._ids)}"
        return request

    def _read_response(self) -> CompileResponse:
        line = self._file.readline()
        if not line:
            raise ServingError("server closed the connection")
        return CompileResponse.from_payload(decode_message(line))

    def optimize(self, request) -> CompileResponse:
        return self.optimize_many([request])[0]

    def optimize_many(self, requests: Sequence) -> List[CompileResponse]:
        """Pipelined round trip: write all requests, then read all responses.

        The burst arrives at the server as concurrent work, which is what
        makes coalescing and micro-batching kick in server-side.
        """
        with self._lock:
            tagged = [self._tagged(r) for r in requests]
            for request in tagged:
                self._file.write(encode_message(request.to_payload()))
            self._file.flush()
            by_id: Dict[str, CompileResponse] = {}
            for _ in tagged:
                response = self._read_response()
                by_id[response.request_id] = response
        missing = [r.request_id for r in tagged if r.request_id not in by_id]
        if missing:
            raise ServingError(f"server never answered request(s) {missing}")
        return [by_id[request.request_id] for request in tagged]
