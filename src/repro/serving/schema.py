"""Request/response schema of the compile service.

One optimization request is a kernel source plus the name of the registered
:class:`repro.tasks.OptimizationTask` that should decide for it; one
response carries the policy's per-site decisions, the measured cycles, the
speed-up over the compiler baseline, and serving metadata (which answer
tier served the request, whether it was coalesced with an identical
in-flight kernel, and its end-to-end latency).

Both sides serialize to plain ``dict`` payloads (``to_payload`` /
``from_payload``) so the TCP front end can speak newline-delimited JSON and
the in-process client can skip serialization entirely — the payloads are
the wire format, the dataclasses are the API.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class ServingError(Exception):
    """Base class for compile-service failures."""


class ServiceClosed(ServingError):
    """The service is shutting down (or closed) and admits no new requests."""


class AdmissionRejected(ServingError):
    """The admission queue is at capacity; the request was not enqueued."""


#: Answer tiers, from cheapest to most expensive.  ``store`` answered with
#: zero simulation (every measurement served by the warm reward store),
#: ``frontend`` skipped parse/AST/embedding (the serving observation memo
#: hit) but still simulated, ``cold`` ran the full pipeline.
TIER_STORE = "store"
TIER_FRONTEND = "frontend"
TIER_COLD = "cold"
TIERS = (TIER_STORE, TIER_FRONTEND, TIER_COLD)


@dataclass
class CompileRequest:
    """One kernel-optimization query.

    ``function_name`` may be omitted: the service resolves it to the first
    function containing a loop (the quickstart convention).  ``task`` names
    any registered optimization task; ``bindings`` fixes symbolic loop
    bounds exactly like :class:`repro.datasets.kernels.LoopKernel`.
    """

    source: str
    function_name: Optional[str] = None
    task: str = "vectorization"
    name: str = "kernel"
    bindings: Dict[str, int] = field(default_factory=dict)
    request_id: Optional[str] = None

    def fingerprint(self) -> str:
        """Content hash identical requests share (the coalescing key).

        Hashes everything that determines the *answer* — source text,
        function, bindings and task — but not the request id or display
        name, so two users submitting the same kernel share one
        computation.
        """
        digest = hashlib.sha1()
        digest.update(self.source.encode("utf-8"))
        digest.update(b"\x00")
        digest.update((self.function_name or "").encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.task.encode("utf-8"))
        for key, value in sorted(self.bindings.items()):
            digest.update(f"\x00{key}={value}".encode("utf-8"))
        return digest.hexdigest()

    def to_payload(self) -> dict:
        return {
            "id": self.request_id,
            "task": self.task,
            "kernel": {
                "name": self.name,
                "source": self.source,
                "function_name": self.function_name,
                "bindings": dict(self.bindings),
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CompileRequest":
        kernel = payload.get("kernel") or {}
        if not isinstance(kernel, dict) or "source" not in kernel:
            raise ServingError("request payload lacks kernel.source")
        return cls(
            source=kernel["source"],
            function_name=kernel.get("function_name"),
            task=payload.get("task") or "vectorization",
            name=kernel.get("name") or "kernel",
            bindings={
                str(key): int(value)
                for key, value in (kernel.get("bindings") or {}).items()
            },
            request_id=payload.get("id"),
        )


@dataclass
class CompileResponse:
    """The service's answer to one :class:`CompileRequest`.

    ``decisions`` maps site index → the task's action tuple; ``tier`` is one
    of :data:`TIERS`; ``coalesced`` marks followers that shared another
    in-flight request's computation; ``batch_size`` is the size of the
    micro-batch (tick) the request rode in.  ``error`` carries a message on
    failure (all measurement fields are zero then).
    """

    request_id: Optional[str] = None
    kernel_name: str = "kernel"
    task: str = "vectorization"
    decisions: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    cycles: float = 0.0
    baseline_cycles: float = 0.0
    tier: str = TIER_COLD
    coalesced: bool = False
    latency_ms: float = 0.0
    batch_size: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def speedup(self) -> float:
        """Speed-up of the decided program over the compiler baseline."""
        if self.cycles <= 0:
            return float("nan") if self.baseline_cycles <= 0 else float("inf")
        return self.baseline_cycles / self.cycles

    @property
    def reward(self) -> float:
        """The paper's reward (Equation 2) for the served decisions."""
        return (self.baseline_cycles - self.cycles) / max(
            self.baseline_cycles, 1e-9
        )

    def to_payload(self) -> dict:
        return {
            "id": self.request_id,
            "kernel": self.kernel_name,
            "task": self.task,
            "decisions": {
                str(site): list(action) for site, action in self.decisions.items()
            },
            "cycles": self.cycles,
            "baseline_cycles": self.baseline_cycles,
            "speedup": self.speedup,
            "tier": self.tier,
            "coalesced": self.coalesced,
            "latency_ms": self.latency_ms,
            "batch_size": self.batch_size,
            "error": self.error,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CompileResponse":
        return cls(
            request_id=payload.get("id"),
            kernel_name=payload.get("kernel", "kernel"),
            task=payload.get("task", "vectorization"),
            decisions={
                int(site): tuple(int(v) for v in action)
                for site, action in (payload.get("decisions") or {}).items()
            },
            cycles=float(payload.get("cycles", 0.0)),
            baseline_cycles=float(payload.get("baseline_cycles", 0.0)),
            tier=payload.get("tier", TIER_COLD),
            coalesced=bool(payload.get("coalesced", False)),
            latency_ms=float(payload.get("latency_ms", 0.0)),
            batch_size=int(payload.get("batch_size", 1)),
            error=payload.get("error"),
        )


# ---------------------------------------------------------------------------
# Wire format: newline-delimited JSON
# ---------------------------------------------------------------------------


def encode_message(payload: dict) -> bytes:
    """One JSON object per line — the TCP front end's wire format."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict:
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ServingError(f"malformed serving message: {error}") from error
    if not isinstance(payload, dict):
        raise ServingError("serving messages must be JSON objects")
    return payload
