"""Latency/throughput/tier accounting for the compile service.

:class:`ServingStats` is the thread-safe collector the service feeds from
its submit path and tick worker; :meth:`ServingStats.report` freezes it
into a :class:`ServingReport` — p50/p95/p99/mean latency, requests per
second, per-tier hit rates, coalescing rates and micro-batch shape — the
value :func:`repro.evaluation.report.format_serving_stats_table` renders
and ``benchmarks/serving.py`` records into ``BENCH_serving.json``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.serving.schema import TIERS


@dataclass
class ServingReport:
    """One frozen snapshot of a service's traffic statistics."""

    requests: int = 0
    errors: int = 0
    coalesced: int = 0
    tier_counts: Dict[str, int] = field(default_factory=dict)
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    requests_per_second: float = 0.0
    wall_seconds: float = 0.0
    ticks: int = 0
    mean_batch_size: float = 0.0
    max_batch_size: int = 0
    #: Optional latency objective; ``slo_attainment`` is the fraction of
    #: requests answered within it (1.0 when no SLO is configured).
    slo_ms: Optional[float] = None
    slo_attainment: float = 1.0

    @property
    def answered(self) -> int:
        """Successful responses (``requests`` minus ``errors``)."""
        return self.requests - self.errors

    def tier_rate(self, tier: str) -> float:
        """Fraction of successful responses served from ``tier``."""
        return self.tier_counts.get(tier, 0) / self.answered if self.answered else 0.0

    @property
    def coalesced_rate(self) -> float:
        """Fraction of all responses that shared another request's work."""
        return self.coalesced / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (the ``BENCH_serving.json`` entry shape)."""
        payload = {
            "requests": self.requests,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "coalesced_rate": self.coalesced_rate,
            "tiers": {tier: self.tier_counts.get(tier, 0) for tier in TIERS},
            "tier_rates": {tier: self.tier_rate(tier) for tier in TIERS},
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
                "mean": self.latency_mean_ms,
            },
            "requests_per_second": self.requests_per_second,
            "wall_seconds": self.wall_seconds,
            "ticks": self.ticks,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
        }
        if self.slo_ms is not None:
            payload["slo_ms"] = self.slo_ms
            payload["slo_attainment"] = self.slo_attainment
        return payload


class ServingStats:
    """Thread-safe traffic collector for one :class:`CompileService`.

    The submit path marks request arrival (the wall clock starts at the
    first admission); the tick worker records one sample per response
    (latency, tier, coalescing) and one per micro-batch.  ``slo_ms``
    configures an optional latency objective reported as attainment.
    """

    def __init__(self, slo_ms: Optional[float] = None):
        self.slo_ms = slo_ms
        self._lock = threading.Lock()
        self._latencies_ms: List[float] = []
        self._tier_counts: Dict[str, int] = {}
        self._coalesced = 0
        self._errors = 0
        self._batch_sizes: List[int] = []
        self._first_arrival: Optional[float] = None
        self._last_completion: Optional[float] = None

    # -- collection (service-internal) --------------------------------------

    def mark_arrival(self, timestamp: float) -> None:
        """Note one request's admission time (monotonic seconds)."""
        with self._lock:
            if self._first_arrival is None or timestamp < self._first_arrival:
                self._first_arrival = timestamp

    def record_tick(self, batch_size: int) -> None:
        """Note one micro-batch leaving the admission queue."""
        with self._lock:
            self._batch_sizes.append(int(batch_size))

    def record_response(
        self,
        tier: str,
        latency_ms: float,
        completed_at: float,
        coalesced: bool = False,
        error: bool = False,
    ) -> None:
        """Note one response leaving the service."""
        with self._lock:
            self._latencies_ms.append(float(latency_ms))
            if error:
                self._errors += 1
            else:
                self._tier_counts[tier] = self._tier_counts.get(tier, 0) + 1
            if coalesced:
                self._coalesced += 1
            if self._last_completion is None or completed_at > self._last_completion:
                self._last_completion = completed_at

    # -- reporting -----------------------------------------------------------

    def report(self) -> ServingReport:
        """Freeze the counters into a :class:`ServingReport`."""
        with self._lock:
            latencies = list(self._latencies_ms)
            tier_counts = dict(self._tier_counts)
            coalesced = self._coalesced
            errors = self._errors
            batch_sizes = list(self._batch_sizes)
            first, last = self._first_arrival, self._last_completion
        requests = len(latencies)
        wall = max(last - first, 0.0) if first is not None and last is not None else 0.0
        if latencies:
            array = np.asarray(latencies, dtype=np.float64)
            p50, p95, p99 = (
                float(np.percentile(array, q)) for q in (50.0, 95.0, 99.0)
            )
            mean = float(array.mean())
        else:
            p50 = p95 = p99 = mean = 0.0
        attainment = 1.0
        if self.slo_ms is not None and latencies:
            attainment = float(
                sum(1 for value in latencies if value <= self.slo_ms) / requests
            )
        return ServingReport(
            requests=requests,
            errors=errors,
            coalesced=coalesced,
            tier_counts=tier_counts,
            latency_p50_ms=p50,
            latency_p95_ms=p95,
            latency_p99_ms=p99,
            latency_mean_ms=mean,
            requests_per_second=requests / wall if wall > 0 else 0.0,
            wall_seconds=wall,
            ticks=len(batch_sizes),
            mean_batch_size=(
                float(np.mean(batch_sizes)) if batch_sizes else 0.0
            ),
            max_batch_size=max(batch_sizes) if batch_sizes else 0,
            slo_ms=self.slo_ms,
            slo_attainment=attainment,
        )
