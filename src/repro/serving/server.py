"""Threaded TCP front end over a :class:`CompileService`.

One accept thread, and per connection a reader thread (decode a
newline-delimited-JSON request, admit it into the service) plus a writer
thread (resolve each admitted future and write its response back, in
submission order per connection — clients match by request id, see
:class:`repro.serving.client.TCPClient`).  The reader/writer split is what
lets one connection pipeline many requests: everything a client writes in
a burst is in the admission queue together, so the service coalesces and
micro-batches it.

The server does not own the service's lifecycle beyond starting it:
``stop()`` closes the listener and connections; drain the service itself
with ``service.stop(drain=True)``.
"""

from __future__ import annotations

import queue as _queue
import socket
import threading
from typing import List, Optional, Tuple

from repro.serving.schema import (
    CompileRequest,
    CompileResponse,
    ServingError,
    decode_message,
    encode_message,
)


class CompileServer:
    """Listen for optimization requests and feed them to a service.

    ``port=0`` (the default) binds an ephemeral port; read the actual
    address from :attr:`address` after :meth:`start`.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: List[socket.socket] = []
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — valid after :meth:`start`."""
        if self._listener is None:
            raise ServingError("server is not started")
        return self._listener.getsockname()[:2]

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "CompileServer":
        if self._listener is not None:
            return self
        self.service.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(32)
        # A short accept timeout keeps the loop responsive to stop().
        listener.settimeout(0.2)
        self._listener = listener
        self._stopping.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="compile-server-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting and close every connection.

        In-flight requests already admitted to the service still resolve
        (and are written back if the connection survives until then); the
        service itself keeps running so callers control its drain.
        """
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join()
            self._accept_thread = None
        if self._listener is not None:
            self._listener.close()
            self._listener = None
        with self._lock:
            connections, self._connections = self._connections, []
            threads, self._threads = self._threads, []
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()
        for thread in threads:
            thread.join(timeout=5.0)

    def __enter__(self) -> "CompileServer":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()

    # -- connection handling --------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            connection.settimeout(None)
            # Per-connection FIFO of futures/ready responses written back in
            # submission order; ``None`` is the writer's exit sentinel.
            outbox: "_queue.Queue" = _queue.Queue()
            reader = threading.Thread(
                target=self._read_loop,
                args=(connection, outbox),
                name="compile-server-read",
                daemon=True,
            )
            writer = threading.Thread(
                target=self._write_loop,
                args=(connection, outbox),
                name="compile-server-write",
                daemon=True,
            )
            with self._lock:
                self._connections.append(connection)
                self._threads.extend((reader, writer))
            reader.start()
            writer.start()

    def _read_loop(self, connection: socket.socket, outbox: "_queue.Queue") -> None:
        stream = connection.makefile("rb")
        try:
            for line in stream:
                if not line.strip():
                    continue
                try:
                    request = CompileRequest.from_payload(decode_message(line))
                    outbox.put((request.request_id, self.service.submit(request)))
                except ServingError as error:
                    # Malformed request / closed or full service: answer on
                    # the wire instead of killing the connection.
                    outbox.put(
                        (None, CompileResponse(error=str(error)))
                    )
        except (OSError, ValueError):
            pass
        finally:
            stream.close()
            outbox.put(None)

    def _write_loop(self, connection: socket.socket, outbox: "_queue.Queue") -> None:
        try:
            while True:
                entry = outbox.get()
                if entry is None:
                    return
                request_id, pending = entry
                if isinstance(pending, CompileResponse):
                    response = pending
                    response.request_id = request_id or response.request_id
                else:
                    try:
                        response = pending.result()
                    except Exception as error:
                        response = CompileResponse(
                            request_id=request_id, error=str(error)
                        )
                connection.sendall(encode_message(response.to_payload()))
        except OSError:
            return
