"""Admission queue and response futures for the compile service.

The queue implements the service's micro-batching policy: the tick worker
blocks until at least one request is admitted, then keeps collecting until
either ``max_batch_size`` requests are waiting or ``max_wait_us``
microseconds have passed since the batch's first request arrived — the
classic max-size/max-wait coalescing window.  Admission is bounded by
``max_queue_depth`` (load shedding raises :class:`AdmissionRejected`
instead of growing the queue without bound) and closes at shutdown
(:class:`ServiceClosed`); a closed queue still hands its remaining
requests to the worker, which is what makes draining shutdown graceful.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Generic, List, Optional, TypeVar

from repro.serving.schema import (
    AdmissionRejected,
    CompileResponse,
    ServiceClosed,
    ServingError,
)

T = TypeVar("T")


class ResponseFuture:
    """A write-once slot for one request's :class:`CompileResponse`.

    The tick worker resolves (or fails) it; the submitting thread blocks in
    :meth:`result`.  Failures re-raise in the waiter.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Optional[CompileResponse] = None
        self._error: Optional[BaseException] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, response: CompileResponse) -> None:
        self._response = response
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> CompileResponse:
        if not self._event.wait(timeout):
            raise TimeoutError("timed out waiting for a compile response")
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


@dataclass
class QueuedRequest:
    """One admitted request: payload plus its future and arrival time."""

    request: object
    future: ResponseFuture
    enqueued_at: float


class AdmissionQueue(Generic[T]):
    """Bounded FIFO with a max-size/max-wait batch collection policy."""

    def __init__(
        self,
        max_batch_size: int = 16,
        max_wait_us: int = 2000,
        max_queue_depth: Optional[int] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if max_wait_us < 0:
            raise ValueError("max_wait_us must be non-negative")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive or None")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_us = int(max_wait_us)
        self.max_queue_depth = max_queue_depth
        self._items: List[T] = []
        self._closed = False
        self._condition = threading.Condition()

    def __len__(self) -> int:
        with self._condition:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    # -- producer side -------------------------------------------------------

    def submit(self, item: T) -> None:
        """Admit one request, or raise if closed / at capacity."""
        with self._condition:
            if self._closed:
                raise ServiceClosed("the compile service is shut down")
            if (
                self.max_queue_depth is not None
                and len(self._items) >= self.max_queue_depth
            ):
                raise AdmissionRejected(
                    f"admission queue is full ({self.max_queue_depth} pending)"
                )
            self._items.append(item)
            self._condition.notify_all()

    def close(self) -> None:
        """Refuse new admissions; already-queued items remain collectable."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def pop_all(self) -> List[T]:
        """Take every queued item at once (non-draining shutdown)."""
        with self._condition:
            items, self._items = self._items, []
            return items

    # -- consumer side -------------------------------------------------------

    def next_batch(self) -> List[T]:
        """Collect the next micro-batch, honouring the coalescing window.

        Blocks until a first request arrives, then waits up to
        ``max_wait_us`` after that arrival for followers, capped at
        ``max_batch_size``.  Returns an empty list only when the queue is
        closed *and* drained — the worker's exit signal.
        """
        with self._condition:
            while not self._items:
                if self._closed:
                    return []
                self._condition.wait()
            deadline = time.monotonic() + self.max_wait_us / 1e6
            while len(self._items) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(timeout=remaining)
            batch = self._items[: self.max_batch_size]
            del self._items[: self.max_batch_size]
            return batch


def fail_pending(items: List[QueuedRequest], message: str) -> None:
    """Fail every queued request's future (non-draining shutdown path)."""
    for item in items:
        if not item.future.done:
            item.future.fail(ServingError(message))
