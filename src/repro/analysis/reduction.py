"""Reduction recognition.

A reduction is a scalar updated every iteration with an associative operator
(``sum += a[i] * b[i]``, ``prod *= x``, ``m = m < a[i] ? a[i] : m``).  LLVM's
vectorizer handles these by keeping one partial accumulator per lane and
combining at the end; recognising them is what allows the dot-product
motivating example of the paper to vectorize at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ir.expr import BinOp, CallOp, Compare, Expr, ScalarRef, Select
from repro.ir.nodes import Loop, Statement

#: Operators that are associative enough for lane-wise partial accumulation.
_ASSOCIATIVE_OPS = {"+", "*", "&", "|", "^"}
_MINMAX_CALLS = {"fmax": "max", "fmin": "min", "fmaxf": "max", "fminf": "min"}


@dataclass
class ReductionInfo:
    """One recognised reduction in a loop body."""

    variable: str
    op: str  # '+', '*', '&', '|', '^', 'min', 'max'
    statement: Statement
    dtype_bits: int = 32
    is_float: bool = False

    def __str__(self) -> str:
        return f"reduction {self.variable} ({self.op})"


def find_reductions(loop: Loop) -> List[ReductionInfo]:
    """Find reduction updates among the scalar statements of ``loop``.

    A scalar qualifies when:

    * it is assigned exactly once in the loop body,
    * the right-hand side uses the scalar exactly once, and
    * that use sits on the spine of an associative operation (or a
      min/max pattern expressed with a select or fmin/fmax call).
    """
    statements = loop.statements(recursive=True)
    scalar_statements = [s for s in statements if s.kind == "scalar"]
    assignment_counts: dict = {}
    for statement in scalar_statements:
        assignment_counts[statement.target_scalar] = (
            assignment_counts.get(statement.target_scalar, 0) + 1
        )

    reductions: List[ReductionInfo] = []
    for statement in scalar_statements:
        name = statement.target_scalar
        if name in (None, "__void__", "__return__") or name == loop.var:
            continue
        if assignment_counts.get(name, 0) != 1:
            continue
        op = _reduction_op(statement.value, name)
        if op is None:
            continue
        # The reduction variable must not feed any *other* statement of the
        # loop (its value mid-loop is only meaningful to the recurrence).
        used_elsewhere = False
        for other in statements:
            if other is statement:
                continue
            names = {ref.name for ref in other.value.scalar_refs()}
            for subscript in other.target_subscripts:
                names |= {ref.name for ref in subscript.scalar_refs()}
            if name in names:
                used_elsewhere = True
                break
        if used_elsewhere:
            continue
        reductions.append(
            ReductionInfo(
                variable=name,
                op=op,
                statement=statement,
                dtype_bits=statement.dtype.bits,
                is_float=statement.dtype.is_float,
            )
        )
    return reductions


def _reduction_op(value: Expr, variable: str) -> Optional[str]:
    """If ``value`` is an associative update of ``variable``, return its op."""
    uses = [ref for ref in value.scalar_refs() if ref.name == variable]
    if len(uses) == 0:
        return None

    # min/max via select: m = (m < x) ? x : m   (or any of its variants).
    if isinstance(value, Select) and len(uses) <= 2:
        condition = value.condition
        if isinstance(condition, Compare) and condition.op in ("<", ">", "<=", ">="):
            names = {ref.name for ref in condition.scalar_refs()}
            if variable in names:
                return "max" if condition.op in ("<", "<=") else "min"
        return None

    if isinstance(value, CallOp) and value.callee in _MINMAX_CALLS:
        if len(uses) == 1:
            return _MINMAX_CALLS[value.callee]
        return None

    if len(uses) != 1:
        return None
    return _spine_op(value, variable)


def _spine_op(value: Expr, variable: str) -> Optional[str]:
    """Walk the operation spine containing the single use of ``variable``.

    ``sum + a[i]*b[i]`` reduces with '+': the multiply happens on the branch
    that does not contain the reduction variable, so only operators on the
    path from the root to the variable's use must be (the same) associative
    operator.
    """
    if isinstance(value, ScalarRef):
        return None
    if not isinstance(value, BinOp):
        return None
    if value.op not in _ASSOCIATIVE_OPS:
        return None
    op = value.op
    node: Expr = value
    while True:
        if isinstance(node, ScalarRef) and node.name == variable:
            return op
        if not isinstance(node, BinOp):
            return None
        if node.op != op:
            # '-' on the right of '+' spine (sum += a - b) is folded into the
            # non-spine operand during lowering, so a mismatch here means the
            # variable participates in a non-associative way.
            return None
        lhs_uses = sum(1 for ref in (node.lhs.scalar_refs() if node.lhs else [])
                       if ref.name == variable)
        rhs_uses = sum(1 for ref in (node.rhs.scalar_refs() if node.rhs else [])
                       if ref.name == variable)
        if lhs_uses == 1 and rhs_uses == 0:
            node = node.lhs
        elif rhs_uses == 1 and lhs_uses == 0:
            node = node.rhs
        else:
            return None
