"""Loop analyses: affine access patterns, data dependences, reductions.

These analyses sit between the IR and the vectorizer/polyhedral passes and
answer the questions LLVM's loop vectorizer asks before picking a VF/IF:

* what is the stride of every memory access with respect to the loop being
  vectorized (:mod:`repro.analysis.affine`),
* which accesses carry loop dependences and at what distance
  (:mod:`repro.analysis.dependence`),
* which scalar updates are reductions (:mod:`repro.analysis.reduction`),
* a per-loop roll-up of everything the cost models need
  (:mod:`repro.analysis.loopinfo`).
"""

from repro.analysis.affine import AffineForm, AccessPattern, affine_of, classify_access
from repro.analysis.dependence import (
    Dependence,
    DependenceGraph,
    analyze_dependences,
    max_safe_vf,
)
from repro.analysis.reduction import ReductionInfo, find_reductions
from repro.analysis.loopinfo import LoopAnalysis, LoopNestAnalysis, analyze_loop, analyze_function

__all__ = [
    "AffineForm",
    "AccessPattern",
    "affine_of",
    "classify_access",
    "Dependence",
    "DependenceGraph",
    "analyze_dependences",
    "max_safe_vf",
    "ReductionInfo",
    "find_reductions",
    "LoopAnalysis",
    "LoopNestAnalysis",
    "analyze_loop",
    "analyze_function",
]
