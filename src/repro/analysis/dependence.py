"""Data-dependence analysis for innermost loops.

The tests implemented are the classical ZIV / strong-SIV / GCD tests over the
affine forms produced by :mod:`repro.analysis.affine`.  The output feeds the
vectorizer's legality check: a loop-carried dependence at distance ``d``
limits the vectorization factor to ``d`` (and ``d == 0`` within an iteration
is harmless), while an unanalysable pair forces the conservative answer
"not vectorizable" exactly as LLVM's LoopAccessAnalysis would.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.affine import AffineForm, affine_of
from repro.ir.nodes import ArrayInfo, Loop, MemoryAccess, Statement


@dataclass
class Dependence:
    """A (possible) dependence between two memory accesses in one loop.

    ``distance`` is the dependence distance in iterations of the analysed
    loop (positive = loop-carried, 0 = intra-iteration); ``None`` means the
    tests could not bound it ("unknown", the conservative outcome).
    """

    source: MemoryAccess
    sink: MemoryAccess
    distance: Optional[int]
    kind: str  # "flow", "anti", "output"
    proven_independent: bool = False

    @property
    def is_loop_carried(self) -> bool:
        return not self.proven_independent and (
            self.distance is None or self.distance != 0
        )

    def __str__(self) -> str:
        if self.proven_independent:
            return f"independent({self.source.array})"
        distance = "?" if self.distance is None else str(self.distance)
        return f"{self.kind} dep on {self.source.array} at distance {distance}"


@dataclass
class DependenceGraph:
    """All pairwise dependences of an innermost loop plus scalar hazards."""

    loop: Loop
    dependences: List[Dependence] = field(default_factory=list)
    scalar_recurrences: List[str] = field(default_factory=list)

    @property
    def carried(self) -> List[Dependence]:
        return [d for d in self.dependences if d.is_loop_carried]

    @property
    def has_unknown_dependence(self) -> bool:
        return any(d.distance is None and not d.proven_independent
                   for d in self.dependences)

    def min_carried_distance(self) -> Optional[int]:
        """Smallest positive dependence distance (None if no carried dep)."""
        distances = [
            abs(d.distance)
            for d in self.dependences
            if not d.proven_independent and d.distance not in (None, 0)
        ]
        return min(distances) if distances else None


def analyze_dependences(
    loop: Loop,
    arrays: Optional[Dict[str, ArrayInfo]] = None,
    enclosing_vars: Optional[Iterable[str]] = None,
    reduction_vars: Optional[Iterable[str]] = None,
) -> DependenceGraph:
    """Build the dependence graph of an innermost loop.

    ``enclosing_vars`` are induction variables of outer loops (treated as
    loop-invariant symbols for this loop).  ``reduction_vars`` are scalars
    already recognised as reductions; their recurrences are not reported as
    vectorization-blocking scalar hazards.
    """
    arrays = arrays or {}
    enclosing = set(enclosing_vars or ())
    reductions = set(reduction_vars or ())
    graph = DependenceGraph(loop=loop)
    statements = loop.statements(recursive=True)

    graph.scalar_recurrences = _scalar_recurrences(loop, statements, reductions)

    accesses: List[MemoryAccess] = []
    for statement in statements:
        accesses.extend(statement.accesses())

    loop_invariants = enclosing | _invariant_scalars(loop, statements)
    all_ivs = {loop.var} | enclosing

    for i, first in enumerate(accesses):
        for second in accesses[i + 1 :]:
            if first.array != second.array:
                continue
            if not first.is_write and not second.is_write:
                continue
            dependence = _test_pair(
                first, second, loop, all_ivs, loop_invariants, arrays.get(first.array)
            )
            graph.dependences.append(dependence)

    # A store through a non-affine subscript (a scatter such as ``a[idx[i]]``)
    # may hit the same location in two different iterations, so it carries an
    # unknown output dependence with itself even when no other access aliases
    # it.  LLVM's LoopAccessAnalysis likewise refuses to vectorize these
    # without runtime conflict detection.
    for access in accesses:
        if not access.is_write:
            continue
        forms = [
            affine_of(subscript, all_ivs, loop_invariants)
            for subscript in access.subscripts
        ]
        if any(not form.is_affine for form in forms):
            graph.dependences.append(Dependence(access, access, None, "output"))
    return graph


def max_safe_vf(
    graph: DependenceGraph, hardware_max_vf: int = 64
) -> int:
    """The largest power-of-two VF that respects every dependence.

    * unknown dependence or non-reduction scalar recurrence → 1 (scalar),
    * carried dependence at distance d → largest power of two ≤ d,
    * otherwise → ``hardware_max_vf``.
    """
    if graph.scalar_recurrences:
        return 1
    if graph.has_unknown_dependence:
        return 1
    distance = graph.min_carried_distance()
    if distance is None:
        return hardware_max_vf
    if distance <= 1:
        return 1
    return min(hardware_max_vf, 2 ** int(math.floor(math.log2(distance))))


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _invariant_scalars(loop: Loop, statements: List[Statement]) -> set:
    """Scalars *not* written inside the loop: safe to treat as symbols."""
    written = {
        statement.target_scalar
        for statement in statements
        if statement.kind == "scalar" and statement.target_scalar is not None
    }
    read = set()
    for statement in statements:
        for ref in statement.value.scalar_refs():
            read.add(ref.name)
        for subscript in statement.target_subscripts:
            for ref in subscript.scalar_refs():
                read.add(ref.name)
    return (read - written) - {loop.var}


def _scalar_recurrences(
    loop: Loop, statements: List[Statement], reductions: set
) -> List[str]:
    """Scalar variables that carry a value across iterations and are not
    recognised reductions (e.g. ``x = a[i] - x``); these block vectorization.

    A scalar assigned before it is used within the same iteration (like a
    temporary ``int j = a[i]``) is not a recurrence.
    """
    hazards: List[str] = []
    scalar_statements = [s for s in statements if s.kind == "scalar"]
    assigned = [s.target_scalar for s in scalar_statements]
    for name in sorted(set(assigned)):
        if name in reductions or name in (None, "__void__", "__return__"):
            continue
        if name == loop.var:
            continue
        first_assignment = next(
            index
            for index, statement in enumerate(statements)
            if statement.kind == "scalar" and statement.target_scalar == name
        )
        used_before_assignment = False
        for statement in statements[: first_assignment + 1]:
            refs = {ref.name for ref in statement.value.scalar_refs()}
            for subscript in statement.target_subscripts:
                refs |= {ref.name for ref in subscript.scalar_refs()}
            if name in refs:
                used_before_assignment = True
                break
        if used_before_assignment:
            hazards.append(name)
    return hazards


def _test_pair(
    first: MemoryAccess,
    second: MemoryAccess,
    loop: Loop,
    induction_vars: set,
    loop_invariants: set,
    array_info: Optional[ArrayInfo],
) -> Dependence:
    kind = _dependence_kind(first, second)
    first_forms = [
        affine_of(s, induction_vars, loop_invariants) for s in first.subscripts
    ]
    second_forms = [
        affine_of(s, induction_vars, loop_invariants) for s in second.subscripts
    ]
    if len(first_forms) != len(second_forms):
        return Dependence(first, second, None, kind)
    if any(not form.is_affine for form in first_forms + second_forms):
        return Dependence(first, second, None, kind)

    distances: List[Optional[int]] = []
    for first_form, second_form in zip(first_forms, second_forms):
        result = _test_dimension(first_form, second_form, loop.var)
        if result == "independent":
            return Dependence(first, second, None, kind, proven_independent=True)
        distances.append(result)  # type: ignore[arg-type]

    # Combine per-dimension results: dimensions that do not involve the loop
    # variable must match exactly (distance 0); the loop-varying dimension
    # supplies the iteration distance.
    carried: Optional[int] = 0
    for distance in distances:
        if distance is None:
            return Dependence(first, second, None, kind)
        if distance != 0:
            if carried not in (0, distance):
                # Two dimensions demand different distances: no single
                # iteration difference satisfies both, hence independent.
                return Dependence(first, second, None, kind, proven_independent=True)
            carried = distance
    # Normalise by the loop step: distance is measured in iterations.
    if carried != 0 and loop.step != 0:
        if carried % loop.step == 0:
            carried = carried // loop.step
        else:
            return Dependence(first, second, None, kind, proven_independent=True)
    return Dependence(first, second, carried, kind)


def _test_dimension(a: AffineForm, b: AffineForm, loop_var: str):
    """Dependence test for one subscript dimension.

    Returns ``"independent"``, an integer distance (in units of the loop
    variable), or ``None`` for "unknown".
    """
    coeff_a = a.coefficient(loop_var)
    coeff_b = b.coefficient(loop_var)

    # Symbolic parts must agree for any constant-distance conclusion.
    symbols_match = a.symbols == b.symbols and {
        k: v for k, v in a.coefficients.items() if k != loop_var
    } == {k: v for k, v in b.coefficients.items() if k != loop_var}

    if coeff_a == 0 and coeff_b == 0:
        # ZIV: both invariant in this loop.
        if not symbols_match:
            return None
        return 0 if a.constant == b.constant else "independent"

    if coeff_a == coeff_b:
        # Strong SIV: a*i + c1 vs a*i + c2  → distance (c2 - c1) / a.
        if not symbols_match:
            return None
        delta = b.constant - a.constant
        if delta % coeff_a != 0:
            return "independent"
        return -(delta // coeff_a)

    # Weak/MIV cases: fall back to the GCD test for a definite "independent",
    # otherwise unknown.
    gcd = math.gcd(abs(coeff_a), abs(coeff_b))
    if gcd != 0 and symbols_match:
        delta = b.constant - a.constant
        if delta % gcd != 0:
            return "independent"
    return None


def _dependence_kind(first: MemoryAccess, second: MemoryAccess) -> str:
    if first.is_write and second.is_write:
        return "output"
    if first.is_write and not second.is_write:
        return "flow"
    return "anti"
