"""Affine analysis of subscript expressions (a small scalar-evolution pass).

Every subscript is rewritten, where possible, as::

    c0 + c1 * iv1 + c2 * iv2 + ... + (symbolic terms)

with integer coefficients over the enclosing induction variables.  The
coefficient of the loop being vectorized gives the access stride, which is
what both legality (dependence distances) and the cost model (contiguous
vs. strided vs. gather) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.ir.expr import (
    BinOp,
    Compare,
    Const,
    Convert,
    Expr,
    LoadOp,
    ScalarRef,
    Select,
    UnaryOpExpr,
)
from repro.ir.nodes import ArrayInfo, MemoryAccess


@dataclass
class AffineForm:
    """``constant + sum(coefficients[var] * var)`` plus optional symbols.

    ``is_affine`` is False when the expression involves memory reads or
    non-linear terms (e.g. ``i*i`` or ``a[b[i]]``); such accesses are treated
    as gathers/scatters.  ``symbols`` records loop-invariant named scalars
    that appear additively (their value is unknown but they do not affect the
    stride).
    """

    constant: int = 0
    coefficients: Dict[str, int] = field(default_factory=dict)
    symbols: Dict[str, int] = field(default_factory=dict)
    is_affine: bool = True

    def coefficient(self, var: str) -> int:
        return self.coefficients.get(var, 0)

    @property
    def is_constant(self) -> bool:
        return self.is_affine and not self.coefficients and not self.symbols

    def depends_on(self, var: str) -> bool:
        return self.coefficient(var) != 0

    # -- arithmetic helpers used by the analyser -------------------------------

    def add(self, other: "AffineForm", sign: int = 1) -> "AffineForm":
        if not (self.is_affine and other.is_affine):
            return AffineForm(is_affine=False)
        coefficients = dict(self.coefficients)
        for var, coefficient in other.coefficients.items():
            coefficients[var] = coefficients.get(var, 0) + sign * coefficient
        symbols = dict(self.symbols)
        for name, coefficient in other.symbols.items():
            symbols[name] = symbols.get(name, 0) + sign * coefficient
        return AffineForm(
            constant=self.constant + sign * other.constant,
            coefficients={k: v for k, v in coefficients.items() if v != 0},
            symbols={k: v for k, v in symbols.items() if v != 0},
        )

    def scale(self, factor: int) -> "AffineForm":
        if not self.is_affine:
            return AffineForm(is_affine=False)
        return AffineForm(
            constant=self.constant * factor,
            coefficients={k: v * factor for k, v in self.coefficients.items() if v * factor != 0},
            symbols={k: v * factor for k, v in self.symbols.items() if v * factor != 0},
        )

    def difference_is_constant(self, other: "AffineForm") -> Optional[int]:
        """If ``self - other`` is a plain integer, return it; else None."""
        if not (self.is_affine and other.is_affine):
            return None
        delta = self.add(other, sign=-1)
        if delta.coefficients or delta.symbols:
            return None
        return delta.constant

    def __str__(self) -> str:
        if not self.is_affine:
            return "<non-affine>"
        parts = []
        for var, coefficient in sorted(self.coefficients.items()):
            parts.append(f"{coefficient}*{var}")
        for name, coefficient in sorted(self.symbols.items()):
            parts.append(f"{coefficient}*{name}")
        parts.append(str(self.constant))
        return " + ".join(parts)


def affine_of(
    expr: Optional[Expr],
    induction_vars: Iterable[str],
    loop_invariants: Optional[Iterable[str]] = None,
) -> AffineForm:
    """Compute the affine form of ``expr`` over the given induction variables.

    Scalars that are not induction variables are treated as loop-invariant
    symbols; loads and products of two variable terms make the form
    non-affine.
    """
    iv_set = set(induction_vars)
    invariant_set = set(loop_invariants) if loop_invariants is not None else None
    return _affine(expr, iv_set, invariant_set)


def _affine(expr: Optional[Expr], ivs: set, invariants: Optional[set]) -> AffineForm:
    if expr is None:
        return AffineForm()
    if isinstance(expr, Const):
        try:
            return AffineForm(constant=int(expr.value))
        except (TypeError, ValueError):
            return AffineForm(is_affine=False)
    if isinstance(expr, ScalarRef):
        if expr.name in ivs:
            return AffineForm(coefficients={expr.name: 1})
        if invariants is not None and expr.name not in invariants:
            # A scalar assigned inside the loop body: not loop-invariant, so
            # the subscript is not a closed-form function of the IVs.
            return AffineForm(is_affine=False)
        return AffineForm(symbols={expr.name: 1})
    if isinstance(expr, Convert):
        return _affine(expr.operand, ivs, invariants)
    if isinstance(expr, UnaryOpExpr):
        inner = _affine(expr.operand, ivs, invariants)
        if expr.op == "-":
            return inner.scale(-1)
        return AffineForm(is_affine=False) if not inner.is_constant else inner
    if isinstance(expr, BinOp):
        lhs = _affine(expr.lhs, ivs, invariants)
        rhs = _affine(expr.rhs, ivs, invariants)
        if expr.op == "+":
            return lhs.add(rhs)
        if expr.op == "-":
            return lhs.add(rhs, sign=-1)
        if expr.op == "*":
            if lhs.is_constant and lhs.is_affine:
                return rhs.scale(lhs.constant)
            if rhs.is_constant and rhs.is_affine:
                return lhs.scale(rhs.constant)
            return AffineForm(is_affine=False)
        if expr.op == "<<" and rhs.is_constant and rhs.is_affine:
            return lhs.scale(2 ** rhs.constant)
        if expr.op == "/" and rhs.is_constant and rhs.is_affine and rhs.constant != 0:
            # Division only stays affine when every coefficient divides evenly.
            if (
                lhs.is_affine
                and lhs.constant % rhs.constant == 0
                and all(v % rhs.constant == 0 for v in lhs.coefficients.values())
                and all(v % rhs.constant == 0 for v in lhs.symbols.values())
            ):
                return AffineForm(
                    constant=lhs.constant // rhs.constant,
                    coefficients={k: v // rhs.constant for k, v in lhs.coefficients.items()},
                    symbols={k: v // rhs.constant for k, v in lhs.symbols.items()},
                )
            return AffineForm(is_affine=False)
        return AffineForm(is_affine=False)
    if isinstance(expr, (LoadOp, Select, Compare)):
        return AffineForm(is_affine=False)
    return AffineForm(is_affine=False)


@dataclass
class AccessPattern:
    """How one memory access behaves with respect to a particular loop."""

    access: MemoryAccess
    forms: Tuple[AffineForm, ...]
    stride_elements: Optional[int]  # None => gather/scatter (unknown stride)
    element_bytes: int
    kind: str  # "contiguous", "strided", "invariant", "gather"

    @property
    def stride_bytes(self) -> Optional[int]:
        if self.stride_elements is None:
            return None
        return self.stride_elements * self.element_bytes

    @property
    def is_contiguous(self) -> bool:
        return self.kind == "contiguous"

    @property
    def is_gather(self) -> bool:
        return self.kind == "gather"


def classify_access(
    access: MemoryAccess,
    loop_var: str,
    induction_vars: Iterable[str],
    array_info: Optional[ArrayInfo] = None,
    loop_step: int = 1,
    loop_invariants: Optional[Iterable[str]] = None,
) -> AccessPattern:
    """Classify one access relative to the loop over ``loop_var``.

    The stride is measured in *elements per iteration of the loop being
    vectorized* (taking the loop step into account) because that is the unit
    in which the vectorizer reasons: a stride of 1 packs into contiguous
    vector loads, larger constant strides need strided/shuffled loads, and a
    non-affine subscript needs a gather (or scatter for stores).
    """
    forms = tuple(
        affine_of(subscript, induction_vars, loop_invariants)
        for subscript in access.subscripts
    )
    element_bytes = access.dtype.size_bytes
    if any(not form.is_affine for form in forms):
        return AccessPattern(access, forms, None, element_bytes, "gather")

    # Linearise the subscripts: only the innermost (last) dimension is
    # contiguous in memory; outer dimensions are scaled by the inner extents.
    dims = array_info.dims if array_info is not None else tuple([None] * len(forms))
    stride = 0
    multiplier = 1
    for form, dim in zip(reversed(forms), reversed(dims)):
        stride += form.coefficient(loop_var) * multiplier
        multiplier *= dim if dim is not None else 1024  # unknown extents: assume large
    stride_per_iteration = stride * loop_step

    if stride_per_iteration == 0:
        kind = "invariant"
    elif abs(stride_per_iteration) == 1:
        kind = "contiguous"
    else:
        kind = "strided"
    return AccessPattern(access, forms, stride_per_iteration, element_bytes, kind)
