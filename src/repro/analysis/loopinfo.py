"""Per-loop roll-up of every analysis the cost models and agents consume."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.affine import AccessPattern, classify_access
from repro.analysis.dependence import DependenceGraph, analyze_dependences, max_safe_vf
from repro.analysis.reduction import ReductionInfo, find_reductions
from repro.ir.expr import BinOp, CallOp, Compare, Convert, Expr, Select, UnaryOpExpr
from repro.ir.nodes import Conditional, IRFunction, Loop, Statement


@dataclass
class OperationMix:
    """Counts of the operations executed by one iteration of a loop body."""

    int_add: int = 0
    int_mul: int = 0
    int_div: int = 0
    float_add: int = 0
    float_mul: int = 0
    float_div: int = 0
    bitwise: int = 0
    shift: int = 0
    compare: int = 0
    select: int = 0
    convert: int = 0
    widening_convert: int = 0
    math_call: int = 0
    loads: int = 0
    stores: int = 0

    @property
    def arithmetic(self) -> int:
        return (
            self.int_add + self.int_mul + self.int_div
            + self.float_add + self.float_mul + self.float_div
            + self.bitwise + self.shift
        )

    @property
    def memory(self) -> int:
        return self.loads + self.stores

    @property
    def total(self) -> int:
        return (
            self.arithmetic + self.compare + self.select + self.convert
            + self.math_call + self.memory
        )

    def as_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


@dataclass
class LoopAnalysis:
    """Everything known about one innermost loop in its nest context."""

    function: IRFunction
    loop: Loop
    enclosing_vars: List[str] = field(default_factory=list)
    reductions: List[ReductionInfo] = field(default_factory=list)
    dependence_graph: Optional[DependenceGraph] = None
    access_patterns: List[AccessPattern] = field(default_factory=list)
    operation_mix: OperationMix = field(default_factory=OperationMix)
    predicate_count: int = 0
    statement_count: int = 0

    # -- derived properties ------------------------------------------------------

    @property
    def trip_count(self) -> Optional[int]:
        return self.loop.trip_count

    @property
    def has_unknown_trip_count(self) -> bool:
        return self.loop.trip_count is None

    @property
    def has_predicates(self) -> bool:
        return self.predicate_count > 0

    @property
    def has_reduction(self) -> bool:
        return bool(self.reductions)

    @property
    def element_bits(self) -> int:
        """The widest element type touched by the loop body (drives max VF)."""
        bits = [p.access.dtype.bits for p in self.access_patterns]
        bits.extend(r.dtype_bits for r in self.reductions)
        return max(bits) if bits else 32

    @property
    def narrowest_element_bits(self) -> int:
        bits = [p.access.dtype.bits for p in self.access_patterns]
        return min(bits) if bits else 32

    @property
    def contiguous_accesses(self) -> int:
        return sum(1 for p in self.access_patterns if p.kind == "contiguous")

    @property
    def strided_accesses(self) -> int:
        return sum(1 for p in self.access_patterns if p.kind == "strided")

    @property
    def gather_accesses(self) -> int:
        return sum(1 for p in self.access_patterns if p.kind == "gather")

    @property
    def invariant_accesses(self) -> int:
        return sum(1 for p in self.access_patterns if p.kind == "invariant")

    @property
    def is_vectorizable(self) -> bool:
        """Whether *any* VF > 1 is legal for this loop."""
        if self.loop.has_early_exit or self.loop.has_calls:
            return False
        return self.max_legal_vf(64) > 1

    def max_legal_vf(self, hardware_max_vf: int = 64) -> int:
        """Largest legal VF given dependences and structural constraints."""
        if self.loop.has_early_exit or self.loop.has_calls:
            return 1
        if self.dependence_graph is None:
            return hardware_max_vf
        return max_safe_vf(self.dependence_graph, hardware_max_vf)

    def bytes_per_iteration(self) -> int:
        """Memory traffic of one scalar iteration (load + store bytes)."""
        return sum(p.element_bytes for p in self.access_patterns)

    def feature_vector(self) -> List[float]:
        """A fixed-order numeric feature summary of the loop.

        This is the hand-engineered representation the paper contrasts with
        learned embeddings; it is used by the baseline-style heuristics and
        as an auxiliary pretraining target for the embedding network.
        """
        mix = self.operation_mix
        trip = float(self.trip_count) if self.trip_count is not None else -1.0
        return [
            trip,
            float(mix.arithmetic),
            float(mix.float_add + mix.float_mul + mix.float_div),
            float(mix.int_add + mix.int_mul + mix.int_div),
            float(mix.loads),
            float(mix.stores),
            float(mix.compare),
            float(mix.select),
            float(mix.convert),
            float(mix.math_call),
            float(self.contiguous_accesses),
            float(self.strided_accesses),
            float(self.gather_accesses),
            float(self.predicate_count),
            float(len(self.reductions)),
            float(self.element_bits),
            float(self.narrowest_element_bits),
            float(len(self.enclosing_vars)),
            float(self.statement_count),
            float(self.max_legal_vf(64)),
        ]


@dataclass
class LoopNestAnalysis:
    """Analyses for every innermost loop of one function."""

    function: IRFunction
    loops: List[LoopAnalysis] = field(default_factory=list)

    def for_loop(self, loop: Loop) -> Optional[LoopAnalysis]:
        for analysis in self.loops:
            if analysis.loop.loop_id == loop.loop_id:
                return analysis
        return None


def analyze_loop(function: IRFunction, loop: Loop) -> LoopAnalysis:
    """Analyse one innermost loop of ``function``."""
    chain = function.enclosing_loops(loop)
    enclosing_vars = [outer.var for outer in chain[:-1]]
    reductions = find_reductions(loop)
    graph = analyze_dependences(
        loop,
        arrays=function.arrays,
        enclosing_vars=enclosing_vars,
        reduction_vars=[r.variable for r in reductions],
    )
    analysis = LoopAnalysis(
        function=function,
        loop=loop,
        enclosing_vars=enclosing_vars,
        reductions=reductions,
        dependence_graph=graph,
    )

    statements = loop.statements(recursive=True)
    analysis.statement_count = len(statements)
    analysis.predicate_count = len(loop.conditionals(recursive=True))

    all_ivs = set(enclosing_vars) | {loop.var}
    written_scalars = {
        s.target_scalar for s in statements if s.kind == "scalar"
    }
    invariants = None  # classify_access treats non-IV scalars as symbols

    for statement in statements:
        _count_statement(statement, analysis.operation_mix)
        for access in statement.accesses():
            pattern = classify_access(
                access,
                loop.var,
                all_ivs,
                array_info=function.arrays.get(access.array),
                loop_step=loop.step,
                loop_invariants=invariants,
            )
            # Subscripts using scalars defined in the body (e.g. j = a[i];
            # b[j] = ...) are not affine functions of the IVs: force gather.
            subscript_refs = set()
            for subscript in access.subscripts:
                subscript_refs |= {ref.name for ref in subscript.scalar_refs()}
            if subscript_refs & (written_scalars - {loop.var} - set(enclosing_vars)):
                pattern.kind = "gather"
                pattern.stride_elements = None
            analysis.access_patterns.append(pattern)
    return analysis


def analyze_function(function: IRFunction) -> LoopNestAnalysis:
    """Analyse every innermost loop of ``function``."""
    nest = LoopNestAnalysis(function=function)
    for loop in function.innermost_loops():
        nest.loops.append(analyze_loop(function, loop))
    return nest


# ---------------------------------------------------------------------------
# Operation counting
# ---------------------------------------------------------------------------


def _count_statement(statement: Statement, mix: OperationMix) -> None:
    mix.stores += 1 if statement.kind == "store" else 0
    _count_expr(statement.value, mix)
    for subscript in statement.target_subscripts:
        _count_expr(subscript, mix, counting_address=True)


def _count_expr(expr: Expr, mix: OperationMix, counting_address: bool = False) -> None:
    from repro.ir.expr import LoadOp  # local import to avoid cycle noise

    for node in expr.walk():
        if isinstance(node, LoadOp):
            mix.loads += 1
        elif isinstance(node, BinOp):
            _count_binop(node, mix)
        elif isinstance(node, UnaryOpExpr):
            if node.dtype.is_float:
                mix.float_add += 1
            else:
                mix.int_add += 1
        elif isinstance(node, Compare):
            mix.compare += 1
        elif isinstance(node, Select):
            mix.select += 1
        elif isinstance(node, Convert):
            mix.convert += 1
            if node.is_widening:
                mix.widening_convert += 1
        elif isinstance(node, CallOp):
            mix.math_call += 1


def _count_binop(node: BinOp, mix: OperationMix) -> None:
    if node.op in ("&", "|", "^", "&&", "||"):
        mix.bitwise += 1
    elif node.op in ("<<", ">>"):
        mix.shift += 1
    elif node.op in ("*",):
        if node.dtype.is_float:
            mix.float_mul += 1
        else:
            mix.int_mul += 1
    elif node.op in ("/", "%"):
        if node.dtype.is_float:
            mix.float_div += 1
        else:
            mix.int_div += 1
    else:
        if node.dtype.is_float:
            mix.float_add += 1
        else:
            mix.int_add += 1
