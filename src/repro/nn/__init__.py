"""A small reverse-mode autodiff and neural-network library on numpy.

The paper trains its policy and embedding networks with RLlib on top of
TensorFlow; offline we need the same functionality (dense layers, tanh/relu,
softmax policies, Adam) without external frameworks, so this package
implements:

* :class:`~repro.nn.tensor.Tensor` — a numpy array with a gradient and a
  recorded backward function (define-by-run reverse mode),
* :mod:`repro.nn.layers` — Dense layers, activations, an MLP container,
* :mod:`repro.nn.optim` — SGD and Adam,
* :mod:`repro.nn.losses` — MSE, cross-entropy, and the categorical/Gaussian
  log-probability helpers PPO needs.
"""

from repro.nn.tensor import Tensor, no_grad
from repro.nn import ops
from repro.nn.initializers import he_init, normal_init, xavier_init, zeros_init
from repro.nn.layers import MLP, Dense, Module, Parameter, Sequential
from repro.nn.losses import (
    categorical_entropy,
    categorical_log_prob,
    cross_entropy_loss,
    gaussian_entropy,
    gaussian_log_prob,
    mse_loss,
)
from repro.nn.optim import SGD, Adam, Optimizer

__all__ = [
    "Tensor",
    "no_grad",
    "ops",
    "he_init",
    "xavier_init",
    "normal_init",
    "zeros_init",
    "Parameter",
    "Module",
    "Dense",
    "Sequential",
    "MLP",
    "mse_loss",
    "cross_entropy_loss",
    "categorical_log_prob",
    "categorical_entropy",
    "gaussian_log_prob",
    "gaussian_entropy",
    "Optimizer",
    "SGD",
    "Adam",
]
