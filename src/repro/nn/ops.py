"""Differentiable operations on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.tensor import ArrayLike, Tensor, grad_enabled

TensorLike = Union[Tensor, ArrayLike]


def _make(data: np.ndarray, parents: Tuple[Tensor, ...], backward) -> Tensor:
    requires = grad_enabled() and any(p.requires_grad for p in parents)
    result = Tensor(data, requires_grad=requires)
    if requires:
        result._parents = tuple(p for p in parents if p.requires_grad)
        result._backward = backward
    return result


# -- elementwise arithmetic -----------------------------------------------------------


def add(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data + b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient)
        if b.requires_grad:
            b._accumulate(gradient)

    return _make(out_data, (a, b), backward)


def sub(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data - b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient)
        if b.requires_grad:
            b._accumulate(-gradient)

    return _make(out_data, (a, b), backward)


def mul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data * b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * b.data)
        if b.requires_grad:
            b._accumulate(gradient * a.data)

    return _make(out_data, (a, b), backward)


def div(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data / b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient / b.data)
        if b.requires_grad:
            b._accumulate(-gradient * a.data / (b.data ** 2))

    return _make(out_data, (a, b), backward)


def power(a: TensorLike, exponent: float) -> Tensor:
    a = Tensor.ensure(a)
    out_data = a.data ** exponent

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * exponent * a.data ** (exponent - 1))

    return _make(out_data, (a,), backward)


def exp(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.exp(a.data)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * out_data)

    return _make(out_data, (a,), backward)


def log(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.log(np.maximum(a.data, 1e-12))

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient / np.maximum(a.data, 1e-12))

    return _make(out_data, (a,), backward)


def sqrt(a: TensorLike) -> Tensor:
    return power(a, 0.5)


def clip(a: TensorLike, low: float, high: float) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.clip(a.data, low, high)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            mask = (a.data >= low) & (a.data <= high)
            a._accumulate(gradient * mask)

    return _make(out_data, (a,), backward)


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = np.minimum(a.data, b.data)

    def backward(gradient: np.ndarray) -> None:
        mask = a.data <= b.data
        if a.requires_grad:
            a._accumulate(gradient * mask)
        if b.requires_grad:
            b._accumulate(gradient * (~mask))

    return _make(out_data, (a, b), backward)


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = np.maximum(a.data, b.data)

    def backward(gradient: np.ndarray) -> None:
        mask = a.data >= b.data
        if a.requires_grad:
            a._accumulate(gradient * mask)
        if b.requires_grad:
            b._accumulate(gradient * (~mask))

    return _make(out_data, (a, b), backward)


# -- activations ---------------------------------------------------------------------


def relu(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.maximum(a.data, 0.0)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * (a.data > 0))

    return _make(out_data, (a,), backward)


def tanh(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.tanh(a.data)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * (1.0 - out_data ** 2))

    return _make(out_data, (a,), backward)


def sigmoid(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * out_data * (1.0 - out_data))

    return _make(out_data, (a,), backward)


def softmax(a: TensorLike, axis: int = -1) -> Tensor:
    a = Tensor.ensure(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            dot = (gradient * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (gradient - dot))

    return _make(out_data, (a,), backward)


def log_softmax(a: TensorLike, axis: int = -1) -> Tensor:
    a = Tensor.ensure(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            softmax_values = np.exp(out_data)
            total = gradient.sum(axis=axis, keepdims=True)
            a._accumulate(gradient - softmax_values * total)

    return _make(out_data, (a,), backward)


# -- linear algebra, shaping, reductions ------------------------------------------------


def matmul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data @ b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad_a = gradient @ np.swapaxes(b.data, -1, -2)
            a._accumulate(grad_a)
        if b.requires_grad:
            grad_b = np.swapaxes(a.data, -1, -2) @ gradient
            b._accumulate(grad_b)

    return _make(out_data, (a, b), backward)


def reshape(a: TensorLike, shape: Sequence[int]) -> Tensor:
    a = Tensor.ensure(a)
    original_shape = a.data.shape
    out_data = a.data.reshape(shape)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient.reshape(original_shape))

    return _make(out_data, (a,), backward)


def concatenate(tensors: Sequence[TensorLike], axis: int = -1) -> Tensor:
    items = [Tensor.ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in items], axis=axis)
    sizes = [t.data.shape[axis] for t in items]

    def backward(gradient: np.ndarray) -> None:
        offsets = np.cumsum([0] + sizes)
        for tensor, start, end in zip(items, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slices = [slice(None)] * gradient.ndim
                slices[axis] = slice(start, end)
                tensor._accumulate(gradient[tuple(slices)])

    return _make(out_data, tuple(items), backward)


def slice_last_axis(a: TensorLike, start: int, stop: int) -> Tensor:
    """``a[..., start:stop]`` — reads one head's columns out of a fused
    logits matrix (the batched-heads counterpart of :func:`concatenate`)."""
    a = Tensor.ensure(a)
    out_data = a.data[..., start:stop]

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = np.zeros_like(a.data)
            grad[..., start:stop] = gradient
            a._accumulate(grad)

    return _make(out_data, (a,), backward)


def broadcast_to(a: TensorLike, shape: Sequence[int]) -> Tensor:
    """Broadcast ``a`` to ``shape``; the gradient sums back over the
    broadcast axes (``_accumulate`` un-broadcasts)."""
    a = Tensor.ensure(a)
    out_data = np.broadcast_to(a.data, tuple(shape)).copy()

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient)

    return _make(out_data, (a,), backward)


def sum(a: TensorLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = Tensor.ensure(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = gradient
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            a._accumulate(np.broadcast_to(grad, a.data.shape))

    return _make(out_data, (a,), backward)


def mean(a: TensorLike, axis=None, keepdims: bool = False) -> Tensor:
    a = Tensor.ensure(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        count = a.data.shape[axis]

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = gradient / count
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            a._accumulate(np.broadcast_to(grad, a.data.shape))

    return _make(out_data, (a,), backward)


def gather_rows(a: TensorLike, indices: np.ndarray) -> Tensor:
    """Select rows of a 2-D tensor (embedding lookup): output[i] = a[idx[i]]."""
    a = Tensor.ensure(a)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = a.data[indices]

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = np.zeros_like(a.data)
            np.add.at(grad, indices, gradient)
            a._accumulate(grad)

    return _make(out_data, (a,), backward)


def take_along_last_axis(a: TensorLike, indices: np.ndarray) -> Tensor:
    """Pick one element per row along the last axis (used for log-prob of the
    chosen discrete action)."""
    a = Tensor.ensure(a)
    indices = np.asarray(indices, dtype=np.int64)
    expanded = indices.reshape(indices.shape + (1,))
    out_data = np.take_along_axis(a.data, expanded, axis=-1).squeeze(-1)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = np.zeros_like(a.data)
            np.put_along_axis(
                grad, expanded, gradient.reshape(gradient.shape + (1,)), axis=-1
            )
            a._accumulate(grad)

    return _make(out_data, (a,), backward)


# -- fused composites -----------------------------------------------------------------
#
# One graph node for an op *chain* the PPO update runs per minibatch.  The
# forward/backward helpers replicate the exact numpy call sequence (and
# gradient accumulation order) of the equivalent chain of primitive ops, so
# swapping a chain for its fused op changes no bits — only the number of
# Python-level nodes the backward pass walks.  The helpers are shared with
# the hand-written update kernel in ``repro.rl.fused_update``.


def _ppo_surrogate_forward(log_probs, old_log_probs, advantages, low, high):
    """Forward pass of exp/clip/minimum/mean PPO surrogate; returns the
    scalar loss plus the saved arrays its backward needs."""
    delta = log_probs - old_log_probs
    ratio = np.exp(delta)
    unclipped = ratio * advantages
    clipped = np.clip(ratio, low, high) * advantages
    objective = np.minimum(unclipped, clipped)
    loss = objective.mean() * -1.0
    return loss, ratio, unclipped, clipped


def _ppo_surrogate_backward(
    gradient, ratio, unclipped, clipped, advantages, low, high
):
    """Gradient of the fused surrogate w.r.t. the log-probs.

    Replicates the primitive chain's accumulation order exactly: the
    minimum node routes into the clipped branch first (mask from
    ``unclipped <= clipped``), the clip mask gates the clipped branch, and
    the unclipped branch adds on top — then the whole thing flows back
    through exp as a multiply by the ratio.
    """
    g_mean = np.broadcast_to((gradient * -1.0) / ratio.size, ratio.shape)
    mask_min = unclipped <= clipped
    g_unclipped = g_mean * mask_min
    g_clipped = g_mean * (~mask_min)
    clip_mask = (ratio >= low) & (ratio <= high)
    g_ratio = (g_clipped * advantages) * clip_mask
    g_ratio = g_ratio + g_unclipped * advantages
    return g_ratio * ratio


def ppo_surrogate(
    log_probs: TensorLike,
    old_log_probs: np.ndarray,
    advantages: np.ndarray,
    clip_low: float,
    clip_high: float,
) -> Tensor:
    """The clipped PPO policy loss as ONE graph node.

    Equivalent — bit-for-bit, forward and backward — to::

        ratio = exp(sub(log_probs, old))
        mul(mean(minimum(mul(ratio, adv),
                         mul(clip(ratio, lo, hi), adv))), -1.0)

    but builds a single node instead of seven, so the backward pass stops
    allocating per-node closures and intermediate gradients on the update
    hot path.
    """
    log_probs = Tensor.ensure(log_probs)
    old = np.asarray(old_log_probs, dtype=np.float64)
    advantages = np.asarray(advantages, dtype=np.float64)
    loss, ratio, unclipped, clipped = _ppo_surrogate_forward(
        log_probs.data, old, advantages, clip_low, clip_high
    )

    def backward(gradient: np.ndarray) -> None:
        if log_probs.requires_grad:
            log_probs._accumulate(
                _ppo_surrogate_backward(
                    gradient, ratio, unclipped, clipped, advantages, clip_low, clip_high
                )
            )

    return _make(np.asarray(loss), (log_probs,), backward)


def _entropy_forward(logits):
    """Forward pass of per-row categorical entropy from raw logits; returns
    the entropy plus the log-softmax/softmax arrays its backward needs."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_softmax_values = shifted - log_sum
    exps = np.exp(shifted)
    probs = exps / exps.sum(axis=-1, keepdims=True)
    entropy = (probs * log_softmax_values).sum(axis=-1) * -1.0
    return entropy, log_softmax_values, probs


def _entropy_backward(gradient, log_softmax_values, probs):
    """Gradient of fused entropy w.r.t. the logits.

    Replicates the primitive chain (softmax + log_softmax + mul + sum +
    mul(-1)) exactly, including its accumulation order into the logits:
    the log-softmax branch lands first, then the softmax branch — and the
    log-softmax backward recomputes its softmax as ``exp(out)``, which is
    NOT bit-identical to the softmax node's ``exps / sum`` output, so both
    variants appear below on purpose.
    """
    g_sum = gradient * -1.0
    g_product = np.broadcast_to(
        np.expand_dims(g_sum, axis=-1), log_softmax_values.shape
    )
    g_probs = g_product * log_softmax_values
    g_log_softmax = g_product * probs
    softmax_of_log = np.exp(log_softmax_values)
    total = g_log_softmax.sum(axis=-1, keepdims=True)
    g_logits = g_log_softmax - softmax_of_log * total
    dot = (g_probs * probs).sum(axis=-1, keepdims=True)
    g_logits = g_logits + probs * (g_probs - dot)
    return g_logits


def entropy_from_logits(logits: TensorLike) -> Tensor:
    """Per-row categorical entropy as ONE graph node.

    Bit-identical (values and gradients) to the five-node chain
    ``mul(sum(mul(softmax(x), log_softmax(x)), -1), -1.0)`` that
    :func:`repro.nn.losses.categorical_entropy` historically built.
    """
    logits = Tensor.ensure(logits)
    entropy, log_softmax_values, probs = _entropy_forward(logits.data)

    def backward(gradient: np.ndarray) -> None:
        if logits.requires_grad:
            logits._accumulate(
                _entropy_backward(gradient, log_softmax_values, probs)
            )

    return _make(entropy, (logits,), backward)


def weighted_sum(values: TensorLike, weights: TensorLike, axis: int = 1) -> Tensor:
    """``sum(values * weights, axis)`` — the attention aggregation primitive."""
    return sum(mul(values, weights), axis=axis)


def stack(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    items = [Tensor.ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in items], axis=axis)

    def backward(gradient: np.ndarray) -> None:
        pieces = np.split(gradient, len(items), axis=axis)
        for tensor, piece in zip(items, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return _make(out_data, tuple(items), backward)
