"""Differentiable operations on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.tensor import ArrayLike, Tensor, grad_enabled

TensorLike = Union[Tensor, ArrayLike]


def _make(data: np.ndarray, parents: Tuple[Tensor, ...], backward) -> Tensor:
    requires = grad_enabled() and any(p.requires_grad for p in parents)
    result = Tensor(data, requires_grad=requires)
    if requires:
        result._parents = tuple(p for p in parents if p.requires_grad)
        result._backward = backward
    return result


# -- elementwise arithmetic -----------------------------------------------------------


def add(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data + b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient)
        if b.requires_grad:
            b._accumulate(gradient)

    return _make(out_data, (a, b), backward)


def sub(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data - b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient)
        if b.requires_grad:
            b._accumulate(-gradient)

    return _make(out_data, (a, b), backward)


def mul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data * b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * b.data)
        if b.requires_grad:
            b._accumulate(gradient * a.data)

    return _make(out_data, (a, b), backward)


def div(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data / b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient / b.data)
        if b.requires_grad:
            b._accumulate(-gradient * a.data / (b.data ** 2))

    return _make(out_data, (a, b), backward)


def power(a: TensorLike, exponent: float) -> Tensor:
    a = Tensor.ensure(a)
    out_data = a.data ** exponent

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * exponent * a.data ** (exponent - 1))

    return _make(out_data, (a,), backward)


def exp(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.exp(a.data)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * out_data)

    return _make(out_data, (a,), backward)


def log(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.log(np.maximum(a.data, 1e-12))

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient / np.maximum(a.data, 1e-12))

    return _make(out_data, (a,), backward)


def sqrt(a: TensorLike) -> Tensor:
    return power(a, 0.5)


def clip(a: TensorLike, low: float, high: float) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.clip(a.data, low, high)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            mask = (a.data >= low) & (a.data <= high)
            a._accumulate(gradient * mask)

    return _make(out_data, (a,), backward)


def minimum(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = np.minimum(a.data, b.data)

    def backward(gradient: np.ndarray) -> None:
        mask = a.data <= b.data
        if a.requires_grad:
            a._accumulate(gradient * mask)
        if b.requires_grad:
            b._accumulate(gradient * (~mask))

    return _make(out_data, (a, b), backward)


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = np.maximum(a.data, b.data)

    def backward(gradient: np.ndarray) -> None:
        mask = a.data >= b.data
        if a.requires_grad:
            a._accumulate(gradient * mask)
        if b.requires_grad:
            b._accumulate(gradient * (~mask))

    return _make(out_data, (a, b), backward)


# -- activations ---------------------------------------------------------------------


def relu(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.maximum(a.data, 0.0)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * (a.data > 0))

    return _make(out_data, (a,), backward)


def tanh(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = np.tanh(a.data)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * (1.0 - out_data ** 2))

    return _make(out_data, (a,), backward)


def sigmoid(a: TensorLike) -> Tensor:
    a = Tensor.ensure(a)
    out_data = 1.0 / (1.0 + np.exp(-a.data))

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient * out_data * (1.0 - out_data))

    return _make(out_data, (a,), backward)


def softmax(a: TensorLike, axis: int = -1) -> Tensor:
    a = Tensor.ensure(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            dot = (gradient * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (gradient - dot))

    return _make(out_data, (a,), backward)


def log_softmax(a: TensorLike, axis: int = -1) -> Tensor:
    a = Tensor.ensure(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            softmax_values = np.exp(out_data)
            total = gradient.sum(axis=axis, keepdims=True)
            a._accumulate(gradient - softmax_values * total)

    return _make(out_data, (a,), backward)


# -- linear algebra, shaping, reductions ------------------------------------------------


def matmul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = Tensor.ensure(a), Tensor.ensure(b)
    out_data = a.data @ b.data

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad_a = gradient @ np.swapaxes(b.data, -1, -2)
            a._accumulate(grad_a)
        if b.requires_grad:
            grad_b = np.swapaxes(a.data, -1, -2) @ gradient
            b._accumulate(grad_b)

    return _make(out_data, (a, b), backward)


def reshape(a: TensorLike, shape: Sequence[int]) -> Tensor:
    a = Tensor.ensure(a)
    original_shape = a.data.shape
    out_data = a.data.reshape(shape)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient.reshape(original_shape))

    return _make(out_data, (a,), backward)


def concatenate(tensors: Sequence[TensorLike], axis: int = -1) -> Tensor:
    items = [Tensor.ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in items], axis=axis)
    sizes = [t.data.shape[axis] for t in items]

    def backward(gradient: np.ndarray) -> None:
        offsets = np.cumsum([0] + sizes)
        for tensor, start, end in zip(items, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slices = [slice(None)] * gradient.ndim
                slices[axis] = slice(start, end)
                tensor._accumulate(gradient[tuple(slices)])

    return _make(out_data, tuple(items), backward)


def slice_last_axis(a: TensorLike, start: int, stop: int) -> Tensor:
    """``a[..., start:stop]`` — reads one head's columns out of a fused
    logits matrix (the batched-heads counterpart of :func:`concatenate`)."""
    a = Tensor.ensure(a)
    out_data = a.data[..., start:stop]

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = np.zeros_like(a.data)
            grad[..., start:stop] = gradient
            a._accumulate(grad)

    return _make(out_data, (a,), backward)


def broadcast_to(a: TensorLike, shape: Sequence[int]) -> Tensor:
    """Broadcast ``a`` to ``shape``; the gradient sums back over the
    broadcast axes (``_accumulate`` un-broadcasts)."""
    a = Tensor.ensure(a)
    out_data = np.broadcast_to(a.data, tuple(shape)).copy()

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(gradient)

    return _make(out_data, (a,), backward)


def sum(a: TensorLike, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = Tensor.ensure(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = gradient
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            a._accumulate(np.broadcast_to(grad, a.data.shape))

    return _make(out_data, (a,), backward)


def mean(a: TensorLike, axis=None, keepdims: bool = False) -> Tensor:
    a = Tensor.ensure(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if axis is None:
        count = a.data.size
    else:
        count = a.data.shape[axis]

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = gradient / count
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            a._accumulate(np.broadcast_to(grad, a.data.shape))

    return _make(out_data, (a,), backward)


def gather_rows(a: TensorLike, indices: np.ndarray) -> Tensor:
    """Select rows of a 2-D tensor (embedding lookup): output[i] = a[idx[i]]."""
    a = Tensor.ensure(a)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = a.data[indices]

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = np.zeros_like(a.data)
            np.add.at(grad, indices, gradient)
            a._accumulate(grad)

    return _make(out_data, (a,), backward)


def take_along_last_axis(a: TensorLike, indices: np.ndarray) -> Tensor:
    """Pick one element per row along the last axis (used for log-prob of the
    chosen discrete action)."""
    a = Tensor.ensure(a)
    indices = np.asarray(indices, dtype=np.int64)
    expanded = indices.reshape(indices.shape + (1,))
    out_data = np.take_along_axis(a.data, expanded, axis=-1).squeeze(-1)

    def backward(gradient: np.ndarray) -> None:
        if a.requires_grad:
            grad = np.zeros_like(a.data)
            np.put_along_axis(
                grad, expanded, gradient.reshape(gradient.shape + (1,)), axis=-1
            )
            a._accumulate(grad)

    return _make(out_data, (a,), backward)


def weighted_sum(values: TensorLike, weights: TensorLike, axis: int = 1) -> Tensor:
    """``sum(values * weights, axis)`` — the attention aggregation primitive."""
    return sum(mul(values, weights), axis=axis)


def stack(tensors: Sequence[TensorLike], axis: int = 0) -> Tensor:
    items = [Tensor.ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in items], axis=axis)

    def backward(gradient: np.ndarray) -> None:
        pieces = np.split(gradient, len(items), axis=axis)
        for tensor, piece in zip(items, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return _make(out_data, tuple(items), backward)
