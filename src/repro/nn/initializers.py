"""Weight initialisers."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def xavier_init(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialisation (good default for tanh nets)."""
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_init(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """He initialisation (good default for relu nets)."""
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


def normal_init(
    rng: np.random.Generator, shape: Tuple[int, ...], scale: float = 0.01
) -> np.ndarray:
    return rng.normal(0.0, scale, size=shape)


def zeros_init(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)
