"""Gradient-descent optimisers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base class: holds the parameter list and clears gradients."""

    def __init__(self, parameters: Iterable[Parameter], learning_rate: float):
        self.parameters: List[Parameter] = list(parameters)
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            update = parameter.grad
            if self.momentum > 0:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + update
                self._velocity[id(parameter)] = velocity
                update = velocity
            parameter.data = parameter.data - self.learning_rate * update


class Adam(Optimizer):
    """Adam (the optimiser RLlib's PPO uses by default)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 5e-5,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(parameters, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step += 1
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            if first is None:
                first = np.zeros_like(parameter.data)
                second = np.zeros_like(parameter.data)
            first = self.beta1 * first + (1 - self.beta1) * parameter.grad
            second = self.beta2 * second + (1 - self.beta2) * (parameter.grad ** 2)
            self._first_moment[key] = first
            self._second_moment[key] = second
            first_hat = first / (1 - self.beta1 ** self._step)
            second_hat = second / (1 - self.beta2 ** self._step)
            parameter.data = parameter.data - self.learning_rate * first_hat / (
                np.sqrt(second_hat) + self.epsilon
            )
