"""Gradient-descent optimisers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base class: holds the parameter list and clears gradients."""

    def __init__(self, parameters: Iterable[Parameter], learning_rate: float):
        self.parameters: List[Parameter] = list(parameters)
        self.learning_rate = learning_rate

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_gradients(self, max_norm: float) -> float:
        """Global-norm gradient clipping; returns the pre-clip norm.

        The scale multiply happens in place (``grad * scale`` writes back
        into the gradient buffer — same bits, no allocation).
        """
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    np.multiply(parameter.grad, scale, out=parameter.grad)
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 1e-2,
        momentum: float = 0.0,
    ):
        super().__init__(parameters, learning_rate)
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for parameter in self.parameters:
            if parameter.grad is None:
                continue
            update = parameter.grad
            if self.momentum > 0:
                velocity = self._velocity.get(id(parameter))
                if velocity is None:
                    velocity = np.zeros_like(parameter.data)
                velocity = self.momentum * velocity + update
                self._velocity[id(parameter)] = velocity
                update = velocity
            parameter.data = parameter.data - self.learning_rate * update


class Adam(Optimizer):
    """Adam (the optimiser RLlib's PPO uses by default).

    Every step runs fully in place: the moment arrays are updated where
    they live, and two preallocated per-parameter scratch buffers carry
    the bias-corrected estimates and the final update, so a step allocates
    nothing after the first.  Each in-place expression mirrors the
    allocating formula term by term (same operations, same order), so the
    trained weights and moment state are bit-identical to the historical
    allocating implementation::

        first  = beta1 * first + (1 - beta1) * grad
        second = beta2 * second + (1 - beta2) * grad**2
        data  -= lr * (first / bias1) / (sqrt(second / bias2) + eps)

    ``parameter.data`` is updated in place as well (same bits as the
    rebinding subtract).
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        learning_rate: float = 5e-5,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(parameters, learning_rate)
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}
        self._scratch: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def step(self) -> None:
        self._step += 1
        beta1 = self.beta1
        beta2 = self.beta2
        one_minus_beta1 = 1 - beta1
        one_minus_beta2 = 1 - beta2
        bias1 = 1 - beta1 ** self._step
        bias2 = 1 - beta2 ** self._step
        learning_rate = self.learning_rate
        epsilon = self.epsilon
        for parameter in self.parameters:
            grad = parameter.grad
            if grad is None:
                continue
            key = id(parameter)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            buffers = self._scratch.get(key)
            if first is None:
                first = np.zeros_like(parameter.data)
                second = np.zeros_like(parameter.data)
                self._first_moment[key] = first
                self._second_moment[key] = second
            if buffers is None or buffers[0].shape != parameter.data.shape:
                buffers = (np.empty_like(parameter.data), np.empty_like(parameter.data))
                self._scratch[key] = buffers
            numerator, denominator = buffers
            # first = beta1 * first + (1 - beta1) * grad
            np.multiply(first, beta1, out=first)
            np.multiply(grad, one_minus_beta1, out=numerator)
            np.add(first, numerator, out=first)
            # second = beta2 * second + (1 - beta2) * grad**2
            # (numpy evaluates ``grad ** 2`` as ``grad * grad``)
            np.multiply(second, beta2, out=second)
            np.multiply(grad, grad, out=denominator)
            np.multiply(denominator, one_minus_beta2, out=denominator)
            np.add(second, denominator, out=second)
            # data -= lr * (first / bias1) / (sqrt(second / bias2) + eps)
            np.divide(first, bias1, out=numerator)
            np.multiply(numerator, learning_rate, out=numerator)
            np.divide(second, bias2, out=denominator)
            np.sqrt(denominator, out=denominator)
            np.add(denominator, epsilon, out=denominator)
            np.divide(numerator, denominator, out=numerator)
            np.subtract(parameter.data, numerator, out=parameter.data)
