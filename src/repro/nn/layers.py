"""Layers and module containers."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.nn import ops
from repro.nn.initializers import xavier_init, zeros_init
from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that an optimiser should update."""

    def __init__(self, data, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter collection and state (de)serialisation."""

    def parameters(self) -> List[Parameter]:
        found: List[Parameter] = []
        seen = set()

        def collect(obj) -> None:
            if isinstance(obj, Parameter):
                if id(obj) not in seen:
                    seen.add(id(obj))
                    found.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for item in obj:
                    collect(item)
            elif isinstance(obj, dict):
                for item in obj.values():
                    collect(item)

        collect(self)
        return found

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return sum(parameter.size for parameter in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {
            f"param_{index}": parameter.data.copy()
            for index, parameter in enumerate(self.parameters())
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        parameters = self.parameters()
        if len(state) != len(parameters):
            raise ValueError(
                f"state has {len(state)} entries but module has {len(parameters)}"
            )
        for index, parameter in enumerate(parameters):
            value = state[f"param_{index}"]
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter {index}: "
                    f"{value.shape} vs {parameter.data.shape}"
                )
            parameter.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


_ACTIVATIONS: Dict[str, Callable[[Tensor], Tensor]] = {
    "relu": ops.relu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
    "linear": lambda x: x,
}


class Dense(Module):
    """A fully connected layer ``y = activation(x @ W + b)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str = "linear",
        rng: Optional[np.random.Generator] = None,
        weight_scale: float = 1.0,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.weight = Parameter(
            xavier_init(rng, (in_features, out_features)) * weight_scale,
            name=f"dense_w_{in_features}x{out_features}",
        )
        self.bias = Parameter(zeros_init(rng, (out_features,)), name="dense_b")

    def forward(self, inputs: Tensor) -> Tensor:
        output = ops.add(ops.matmul(inputs, self.weight), self.bias)
        return _ACTIVATIONS[self.activation](output)


class Sequential(Module):
    """Applies a list of modules in order."""

    def __init__(self, layers: Sequence[Module]):
        self.layers = list(layers)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output


class MLP(Module):
    """A fully connected network described by a list of hidden sizes.

    The paper's policy network is a 64x64 tanh FCNN; ``MLP(obs, [64, 64],
    out)`` builds exactly that.
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        out_features: int,
        activation: str = "tanh",
        output_activation: str = "linear",
        rng: Optional[np.random.Generator] = None,
        output_scale: float = 0.01,
    ):
        rng = rng or np.random.default_rng(0)
        sizes = [in_features] + list(hidden_sizes)
        layers: List[Module] = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            layers.append(Dense(fan_in, fan_out, activation=activation, rng=rng))
        layers.append(
            Dense(
                sizes[-1],
                out_features,
                activation=output_activation,
                rng=rng,
                weight_scale=output_scale,
            )
        )
        self.network = Sequential(layers)
        self.in_features = in_features
        self.out_features = out_features
        self.hidden_sizes = tuple(hidden_sizes)

    def forward(self, inputs: Tensor) -> Tensor:
        return self.network(inputs)
