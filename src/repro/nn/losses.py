"""Losses and distribution helpers (categorical and diagonal Gaussian)."""

from __future__ import annotations

import numpy as np

from repro.nn import ops
from repro.nn.tensor import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    difference = ops.sub(prediction, Tensor.ensure(target))
    return ops.mean(ops.mul(difference, difference))


def cross_entropy_loss(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Softmax cross entropy with integer class labels (mean over the batch)."""
    log_probabilities = ops.log_softmax(logits, axis=-1)
    picked = ops.take_along_last_axis(log_probabilities, np.asarray(labels))
    return ops.mul(ops.mean(picked), -1.0)


def categorical_log_prob(logits: Tensor, actions: np.ndarray) -> Tensor:
    """Log-probability of the chosen discrete actions under the logits."""
    log_probabilities = ops.log_softmax(logits, axis=-1)
    return ops.take_along_last_axis(log_probabilities, np.asarray(actions))


def categorical_entropy(logits: Tensor) -> Tensor:
    """Entropy of a categorical distribution, per batch row.

    Delegates to the fused :func:`repro.nn.ops.entropy_from_logits` node —
    bit-identical (forward and backward, including the gradient
    accumulation order into ``logits``) to the historical five-node chain
    ``mul(sum(mul(softmax, log_softmax), -1), -1.0)``, but one graph node.
    """
    return ops.entropy_from_logits(logits)


def gaussian_log_prob(mean: Tensor, log_std: Tensor, actions: np.ndarray) -> Tensor:
    """Log-density of ``actions`` under a diagonal Gaussian, summed over dims."""
    actions_tensor = Tensor.ensure(np.asarray(actions, dtype=np.float64))
    variance = ops.exp(ops.mul(log_std, 2.0))
    difference = ops.sub(actions_tensor, mean)
    quadratic = ops.div(ops.mul(difference, difference), variance)
    per_dimension = ops.mul(
        ops.add(ops.add(quadratic, ops.mul(log_std, 2.0)), float(np.log(2.0 * np.pi))),
        -0.5,
    )
    if len(per_dimension.shape) == 1:
        return per_dimension
    return ops.sum(per_dimension, axis=-1)


def gaussian_entropy(log_std: Tensor) -> Tensor:
    """Entropy of a diagonal Gaussian, summed over dimensions."""
    constant = 0.5 * float(np.log(2.0 * np.pi * np.e))
    per_dimension = ops.add(log_std, constant)
    if len(per_dimension.shape) == 1:
        return ops.sum(per_dimension)
    return ops.sum(per_dimension, axis=-1)
