"""Reverse-mode automatic differentiation over numpy arrays."""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def grad_enabled() -> bool:
    return _grad_enabled


class Tensor:
    """A numpy array plus the bookkeeping needed for backpropagation.

    Operations record their inputs and a backward closure; calling
    :meth:`backward` on a scalar result walks the recorded graph in reverse
    topological order accumulating gradients into ``grad``.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "name",
        "_grad_buffer",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and grad_enabled()
        self._backward = backward
        self._parents = parents if self.requires_grad else ()
        self.name = name
        # Preallocated gradient storage: after the first backward pass this
        # holds the gradient array, and later passes write into it in place
        # instead of allocating (``zero_grad`` only drops ``grad``, keeping
        # the buffer).  For long-lived tensors — parameters — gradient
        # accumulation therefore stops allocating entirely.
        self._grad_buffer: Optional[np.ndarray] = None

    # -- construction helpers -----------------------------------------------------

    @staticmethod
    def ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # -- graph mechanics ------------------------------------------------------------

    def _accumulate(self, gradient: np.ndarray) -> None:
        gradient = _unbroadcast(gradient, self.data.shape)
        grad = self.grad
        if grad is None:
            buffer = self._grad_buffer
            if (
                buffer is not None
                and buffer.shape == gradient.shape
                and buffer.dtype == gradient.dtype
            ):
                np.copyto(buffer, gradient)
            else:
                buffer = gradient.copy()
                self._grad_buffer = buffer
            self.grad = buffer
        else:
            # ``grad`` is always privately owned (the copy above), so the
            # in-place add computes the same bits as ``grad + gradient``
            # without allocating.
            np.add(grad, gradient, out=grad)

    def backward(self, gradient: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor (defaults to d(self)/d(self) = 1)."""
        if gradient is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=np.float64)

        ordering: List[Tensor] = []
        visited: Set[int] = set()

        def topological(node: "Tensor") -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                topological(parent)
            ordering.append(node)

        topological(self)
        self._accumulate(gradient)
        for node in reversed(ordering):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- operators (thin wrappers over repro.nn.ops) -----------------------------------

    def __add__(self, other):  # noqa: D105
        from repro.nn import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __mul__(self, other):  # noqa: D105
        from repro.nn import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __sub__(self, other):  # noqa: D105
        from repro.nn import ops

        return ops.sub(self, other)

    def __rsub__(self, other):  # noqa: D105
        from repro.nn import ops

        return ops.sub(other, self)

    def __truediv__(self, other):  # noqa: D105
        from repro.nn import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):  # noqa: D105
        from repro.nn import ops

        return ops.div(other, self)

    def __neg__(self):  # noqa: D105
        from repro.nn import ops

        return ops.mul(self, -1.0)

    def __matmul__(self, other):  # noqa: D105
        from repro.nn import ops

        return ops.matmul(self, other)

    def __pow__(self, exponent: float):  # noqa: D105
        from repro.nn import ops

        return ops.power(self, exponent)

    def sum(self, axis=None, keepdims: bool = False):
        from repro.nn import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.nn import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int):
        from repro.nn import ops

        return ops.reshape(self, shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        grad = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{grad})"


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``gradient`` down to ``shape`` (reverse of numpy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Remove leading broadcast dimensions.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, dim in enumerate(shape):
        if dim == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient.reshape(shape)
