"""Iteration domains as integer polytopes.

A loop nest ``for (i = 0; i < N; i++) for (j = 0; j < M; j++)`` defines the
polytope ``{(i, j) : 0 <= i < N, 0 <= j < M}``.  The representation here is a
list of affine inequality constraints ``sum(coeff * var) + constant >= 0``
over the nest's induction variables, which is all the tiling/fusion legality
checks and the tests need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.affine import AffineForm, affine_of
from repro.ir.evaluate import evaluate_expr
from repro.ir.nodes import Loop


@dataclass
class AffineConstraint:
    """``constant + sum(coefficients[var] * var) >= 0``."""

    coefficients: Dict[str, int] = field(default_factory=dict)
    constant: int = 0

    def evaluate(self, point: Dict[str, int]) -> int:
        value = self.constant
        for var, coefficient in self.coefficients.items():
            value += coefficient * point.get(var, 0)
        return value

    def satisfied_by(self, point: Dict[str, int]) -> bool:
        return self.evaluate(point) >= 0

    def __str__(self) -> str:
        terms = [f"{c}*{v}" for v, c in sorted(self.coefficients.items())]
        terms.append(str(self.constant))
        return " + ".join(terms) + " >= 0"


@dataclass
class IterationDomain:
    """The set of integer points a loop nest iterates over."""

    variables: List[str] = field(default_factory=list)
    constraints: List[AffineConstraint] = field(default_factory=list)

    @property
    def dimensions(self) -> int:
        return len(self.variables)

    def contains(self, point: Dict[str, int]) -> bool:
        return all(constraint.satisfied_by(point) for constraint in self.constraints)

    def add_constraint(self, constraint: AffineConstraint) -> None:
        self.constraints.append(constraint)

    def bounding_box(self, default_extent: int = 1024) -> List[Tuple[int, int]]:
        """Per-variable [low, high] ranges derived from single-variable
        constraints (used for point counting and sanity checks)."""
        box: List[Tuple[int, int]] = []
        for var in self.variables:
            low, high = 0, default_extent
            for constraint in self.constraints:
                coefficients = constraint.coefficients
                if set(coefficients.keys()) != {var}:
                    continue
                coefficient = coefficients[var]
                if coefficient > 0:
                    # c*v + k >= 0  →  v >= -k / c
                    low = max(low, -(-(-constraint.constant) // coefficient))
                elif coefficient < 0:
                    # -c*v + k >= 0  →  v <= k / |c|
                    high = min(high, constraint.constant // (-coefficient))
            box.append((low, high))
        return box

    def count_points(self, limit: int = 2_000_000) -> Optional[int]:
        """Exact lattice-point count by enumeration over the bounding box.

        Returns ``None`` when the box is larger than ``limit`` points (the
        callers only count small domains in tests).
        """
        box = self.bounding_box()
        total_box = 1
        for low, high in box:
            total_box *= max(0, high - low + 1)
        if total_box > limit:
            return None
        count = 0
        def recurse(index: int, point: Dict[str, int]) -> None:
            nonlocal count
            if index == len(self.variables):
                if self.contains(point):
                    count += 1
                return
            low, high = box[index]
            var = self.variables[index]
            for value in range(low, high + 1):
                point[var] = value
                recurse(index + 1, point)
            point.pop(var, None)

        recurse(0, {})
        return count

    def __str__(self) -> str:
        vars_text = ", ".join(self.variables)
        constraints_text = "; ".join(str(c) for c in self.constraints)
        return f"{{ [{vars_text}] : {constraints_text} }}"


def constraints_from_loop(
    loop: Loop,
    enclosing: Sequence[Loop] = (),
    bindings: Optional[Dict[str, int]] = None,
) -> IterationDomain:
    """Build the iteration domain of ``loop`` inside its enclosing loops.

    Bounds that cannot be resolved to affine expressions of the enclosing
    induction variables (after substituting ``bindings``) make the domain
    unbounded in that dimension; SCoP detection treats that as non-affine.
    """
    bindings = bindings or {}
    domain = IterationDomain()
    all_loops = list(enclosing) + [loop]
    induction_vars = [l.var for l in all_loops]
    domain.variables = induction_vars

    for index, current in enumerate(all_loops):
        outer_vars = induction_vars[:index]
        lower_form = affine_of(current.lower, outer_vars)
        upper_form = affine_of(current.upper, outer_vars)
        lower_value = evaluate_expr(current.lower, bindings)
        upper_value = evaluate_expr(current.upper, bindings)

        # var - lower >= 0
        lower_constraint = AffineConstraint({current.var: 1})
        if lower_form.is_affine and not lower_form.symbols:
            lower_constraint.constant = -lower_form.constant
            for var, coefficient in lower_form.coefficients.items():
                lower_constraint.coefficients[var] = -coefficient
        elif lower_value is not None:
            lower_constraint.constant = -int(lower_value)
        domain.add_constraint(lower_constraint)

        # upper - var - 1 >= 0   (for '<'; '<=' keeps the full bound)
        adjust = -1 if current.condition_op == "<" else 0
        upper_constraint = AffineConstraint({current.var: -1}, adjust)
        if upper_form.is_affine and not upper_form.symbols:
            upper_constraint.constant += upper_form.constant
            for var, coefficient in upper_form.coefficients.items():
                upper_constraint.coefficients[var] = (
                    upper_constraint.coefficients.get(var, 0) + coefficient
                )
        elif upper_value is not None:
            upper_constraint.constant += int(upper_value)
        domain.add_constraint(upper_constraint)
    return domain
