"""The Polly driver: SCoP detection, tiling and fusion over a whole function."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.nodes import IRFunction, Loop, RegionNode
from repro.polly.scop import ScopInfo, detect_scop
from repro.polly.transforms import clone_function, fuse_adjacent_loops, tile_loop_nest


@dataclass
class PollyConfig:
    """Tunables of the polyhedral pass (Polly's own defaults use 32x32 tiles)."""

    tile_size: int = 32
    min_trip_count_for_tiling: int = 128
    enable_tiling: bool = True
    enable_fusion: bool = True
    #: Only tile nests at least this deep; tiling a lone streaming loop only
    #: adds loop overhead, and Polly's first-level tiling targets nests too.
    min_nest_depth_for_tiling: int = 2
    #: Only tile innermost loops whose working set spills out of L1.
    locality_threshold_bytes: float = 32 * 1024


@dataclass
class PollyReport:
    """What the pass did to one function (for logging and tests)."""

    scops: List[ScopInfo] = field(default_factory=list)
    tiled_nests: int = 0
    fused_loops: int = 0

    @property
    def scop_count(self) -> int:
        return sum(1 for scop in self.scops if scop.is_scop)


class PollyOptimizer:
    """Applies Polly-style transformations and reports what it changed."""

    def __init__(self, config: Optional[PollyConfig] = None):
        self.config = config or PollyConfig()
        self.last_report: Optional[PollyReport] = None

    def optimize(self, function: IRFunction) -> IRFunction:
        """Return a transformed copy of ``function`` (the input is untouched)."""
        config = self.config
        report = PollyReport()
        transformed = clone_function(function)

        if config.enable_fusion:
            before = len(transformed.all_loops())
            transformed.body = fuse_adjacent_loops(transformed.body)
            after = len(transformed.all_loops())
            report.fused_loops = max(0, before - after)

        if config.enable_tiling:
            new_body: List[RegionNode] = []
            for node in transformed.body:
                if isinstance(node, Loop):
                    scop = detect_scop(transformed, node)
                    report.scops.append(scop)
                    if scop.is_scop and node.depth_below >= config.min_nest_depth_for_tiling:
                        new_body.append(
                            tile_loop_nest(
                                transformed,
                                node,
                                tile_size=config.tile_size,
                                min_trip_count=config.min_trip_count_for_tiling,
                                min_working_set_bytes=config.locality_threshold_bytes,
                            )
                        )
                        report.tiled_nests += 1
                        continue
                new_body.append(node)
            transformed.body = new_body

        self.last_report = report
        return transformed
