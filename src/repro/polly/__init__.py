"""Polly-like polyhedral loop optimizer.

Polly (Grosser et al.) models affine loop nests ("SCoPs") as integer
polytopes and applies classical loop transformations — "especially tiling and
loop fusion to improve data-locality" — before the vectorizer runs.  The
paper compares against Polly on every benchmark suite and combines it with
the RL vectorizer on PolyBench.

This package provides the pieces the experiments need:

* :mod:`repro.polly.polytope` — iteration domains as systems of affine
  inequalities, with point counting and membership tests,
* :mod:`repro.polly.scop` — SCoP detection (affine bounds and subscripts, no
  early exits or opaque calls),
* :mod:`repro.polly.transforms` — strip-mining/tiling and fusion on the loop
  IR,
* :mod:`repro.polly.optimizer` — the driver that mirrors `-O3 -polly`:
  detect SCoPs, tile for locality, fuse compatible neighbours, then hand the
  code to the ordinary vectorizer.
"""

from repro.polly.polytope import IterationDomain, constraints_from_loop
from repro.polly.scop import ScopInfo, detect_scop, function_scops
from repro.polly.transforms import fuse_adjacent_loops, strip_mine, tile_loop_nest
from repro.polly.optimizer import PollyConfig, PollyOptimizer

__all__ = [
    "IterationDomain",
    "constraints_from_loop",
    "ScopInfo",
    "detect_scop",
    "function_scops",
    "strip_mine",
    "tile_loop_nest",
    "fuse_adjacent_loops",
    "PollyConfig",
    "PollyOptimizer",
]
