"""SCoP (static control part) detection."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.affine import affine_of
from repro.ir.evaluate import evaluate_expr
from repro.ir.nodes import Conditional, IRFunction, Loop


@dataclass
class ScopInfo:
    """Whether a loop nest is a static control part Polly can model."""

    root: Loop
    is_scop: bool = True
    reasons: List[str] = field(default_factory=list)
    depth: int = 1
    statement_count: int = 0

    def reject(self, reason: str) -> None:
        self.is_scop = False
        self.reasons.append(reason)


def detect_scop(function: IRFunction, root: Loop) -> ScopInfo:
    """Check whether the nest rooted at ``root`` is a SCoP.

    Requirements (a practical subset of Polly's):

    * every loop in the nest is a counted loop without early exits or calls,
    * loop bounds evaluate to constants or affine forms of outer induction
      variables,
    * every memory subscript is an affine function of the induction
      variables.
    """
    info = ScopInfo(root=root, depth=root.depth_below)
    loops = root.all_loops()
    induction_vars = [loop.var for loop in loops]

    for loop in loops:
        info.statement_count += len(loop.statements(recursive=False))
        if loop.has_early_exit:
            info.reject(f"loop over {loop.var!r} has an early exit")
        if loop.has_calls:
            info.reject(f"loop over {loop.var!r} calls an opaque function")
        outer_vars = [l.var for l in function.enclosing_loops(loop)[:-1]]
        for bound_name, bound in (("lower", loop.lower), ("upper", loop.upper)):
            value = evaluate_expr(bound, {})
            form = affine_of(bound, outer_vars)
            if value is None and not form.is_affine:
                info.reject(
                    f"{bound_name} bound of loop {loop.var!r} is not affine"
                )

    for statement in root.statements(recursive=True):
        for access in statement.accesses():
            for subscript in access.subscripts:
                form = affine_of(subscript, induction_vars)
                if not form.is_affine:
                    info.reject(
                        f"subscript of {access.array!r} is not affine"
                    )
                    break
    return info


def function_scops(function: IRFunction) -> List[ScopInfo]:
    """SCoP info for every top-level loop nest of the function."""
    return [detect_scop(function, loop) for loop in function.top_level_loops()]
