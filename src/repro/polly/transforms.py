"""Polyhedral loop transformations on the structured IR: tiling and fusion."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.dtypes import INT32
from repro.ir.evaluate import evaluate_expr, trip_count_of
from repro.ir.expr import BinOp, Const, ScalarRef
from repro.ir.nodes import Conditional, IRFunction, Loop, RegionNode, Statement


# ---------------------------------------------------------------------------
# Cloning (transformations never mutate the input function)
# ---------------------------------------------------------------------------


def clone_region(nodes: Sequence[RegionNode]) -> List[RegionNode]:
    """Structurally clone loops/conditionals; statements are shared.

    Statements and their expression DAGs are immutable in practice, so they
    can be shared between the original and the transformed tree; only the
    region skeleton (which tiling rewrites) is copied.
    """
    cloned: List[RegionNode] = []
    for node in nodes:
        if isinstance(node, Loop):
            cloned.append(clone_loop(node))
        elif isinstance(node, Conditional):
            copy = Conditional(condition=node.condition)
            copy.then_body = clone_region(node.then_body)
            copy.else_body = clone_region(node.else_body)
            cloned.append(copy)
        else:
            cloned.append(node)
    return cloned


def clone_loop(loop: Loop) -> Loop:
    copy = Loop(
        var=loop.var,
        lower=loop.lower,
        upper=loop.upper,
        step=loop.step,
        pragma=loop.pragma,
        trip_count=loop.trip_count,
        condition_op=loop.condition_op,
        has_early_exit=loop.has_early_exit,
        has_calls=loop.has_calls,
    )
    copy.body = clone_region(loop.body)
    return copy


def clone_function(function: IRFunction) -> IRFunction:
    copy = IRFunction(
        name=function.name,
        arrays=dict(function.arrays),
        scalars=dict(function.scalars),
        parameters=dict(function.parameters),
        return_dtype=function.return_dtype,
        source_name=function.source_name,
    )
    copy.body = clone_region(function.body)
    return copy


# ---------------------------------------------------------------------------
# Strip-mining / tiling
# ---------------------------------------------------------------------------


def strip_mine(loop: Loop, tile_size: int, function: Optional[IRFunction] = None) -> Loop:
    """Split ``loop`` into a tile loop and a point loop of ``tile_size``.

    ``for (v = L; v < U; v += s)`` becomes::

        for (v_tile = L; v_tile < U; v_tile += s*T)
            for (v = v_tile; v < v_tile + s*T; v += s)
                <original body>

    The point loop keeps the original body and pragma; the tile loop gets the
    derived trip count.  (The remainder tile is folded into the last full
    tile, a simplification that only matters when the trip count is not a
    multiple of the tile size.)
    """
    if tile_size <= 1:
        return clone_loop(loop)
    tile_var = f"{loop.var}_tile"
    stride = loop.step * tile_size

    point_loop = Loop(
        var=loop.var,
        lower=ScalarRef(dtype=INT32, name=tile_var),
        upper=BinOp(
            dtype=INT32,
            op="+",
            lhs=ScalarRef(dtype=INT32, name=tile_var),
            rhs=Const(dtype=INT32, value=stride),
        ),
        step=loop.step,
        pragma=loop.pragma,
        trip_count=tile_size,
        condition_op="<",
    )
    point_loop.body = clone_region(loop.body)

    tile_loop = Loop(
        var=tile_var,
        lower=loop.lower,
        upper=loop.upper,
        step=stride,
        condition_op=loop.condition_op,
        trip_count=(
            math.ceil(loop.trip_count / tile_size)
            if loop.trip_count is not None
            else None
        ),
    )
    tile_loop.body = [point_loop]
    if function is not None:
        function.scalars.setdefault(tile_var, INT32)
    return tile_loop


def tile_loop_nest(
    function: IRFunction,
    root: Loop,
    tile_size: int = 32,
    min_trip_count: int = 128,
    min_working_set_bytes: float = 32 * 1024,
) -> Loop:
    """Tile every innermost loop of a nest whose trip count is large enough.

    Tiling only the point loops is what shrinks each innermost traversal's
    working set into a nearer cache level, which is where Polly's locality
    win shows up in the simulator (and on real hardware for the PolyBench
    kernels the paper evaluates).  Loops whose working set already fits in
    L1 (``min_working_set_bytes``) are left alone — tiling them would only
    add loop overhead.
    """
    from repro.analysis.loopinfo import analyze_loop
    from repro.simulator.cost import estimate_working_set

    def rewrite(loop: Loop) -> Loop:
        if loop.is_innermost:
            trip = loop.trip_count if loop.trip_count is not None else 0
            working_set = 0.0
            if trip > 0:
                try:
                    working_set = estimate_working_set(
                        analyze_loop(function, loop), trip
                    )
                except Exception:
                    working_set = float("inf")
            if (
                trip >= min_trip_count
                and trip > tile_size
                and working_set > min_working_set_bytes
            ):
                return strip_mine(loop, tile_size, function)
            return clone_loop(loop)
        copy = clone_loop(loop)
        copy.body = [
            rewrite(node) if isinstance(node, Loop) else node for node in copy.body
        ]
        return copy

    return rewrite(root)


# ---------------------------------------------------------------------------
# Loop fusion
# ---------------------------------------------------------------------------


def _loops_fusible(first: Loop, second: Loop) -> bool:
    """Conservative fusion legality: identical iteration ranges and no
    producer/consumer relationship through memory."""
    if first.step != second.step or first.condition_op != second.condition_op:
        return False
    if first.trip_count is None or first.trip_count != second.trip_count:
        return False
    lower_first = evaluate_expr(first.lower, {})
    lower_second = evaluate_expr(second.lower, {})
    if lower_first is None or lower_first != lower_second:
        return False
    written_by_first = {
        access.array for access in first.accesses(recursive=True) if access.is_write
    }
    touched_by_second = {access.array for access in second.accesses(recursive=True)}
    return not (written_by_first & touched_by_second)


def fuse_adjacent_loops(nodes: Sequence[RegionNode]) -> List[RegionNode]:
    """Fuse neighbouring innermost loops with identical domains.

    Returns a new node list; the bodies of fused loops are concatenated and
    the second loop's induction variable is assumed to be renameable to the
    first's (our kernels always use fresh index variables per loop, and the
    shared-statement representation keys accesses by variable *name*, so the
    rename is performed by rewriting the loop header only when names match;
    otherwise fusion is skipped).
    """
    result: List[RegionNode] = []
    index = 0
    nodes = list(nodes)
    while index < len(nodes):
        node = nodes[index]
        if (
            isinstance(node, Loop)
            and node.is_innermost
            and index + 1 < len(nodes)
            and isinstance(nodes[index + 1], Loop)
            and nodes[index + 1].is_innermost
            and node.var == nodes[index + 1].var
            and _loops_fusible(node, nodes[index + 1])
        ):
            fused = clone_loop(node)
            fused.body = clone_region(node.body) + clone_region(nodes[index + 1].body)
            result.append(fused)
            index += 2
            continue
        if isinstance(node, Loop):
            copy = clone_loop(node)
            copy.body = fuse_adjacent_loops(copy.body)
            result.append(copy)
        else:
            result.append(node)
        index += 1
    return result
