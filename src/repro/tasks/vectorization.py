"""The paper's task: per-loop (VF, IF) vectorization-pragma decisions."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.tasks.base import (
    Action,
    DecisionSite,
    OptimizationTask,
    TaskApplication,
    innermost_loop_sites,
    measure_annotated_source,
    snap_to_menus,
)

if TYPE_CHECKING:
    from repro.core.pipeline import CompilationResult, CompileAndMeasure
    from repro.datasets.kernels import LoopKernel


class VectorizationTask(OptimizationTask):
    """Decide a (vectorization width, interleave count) pair per innermost loop.

    This is the hard-wired behaviour of the original reproduction, extracted
    behind the task API: decision sites are the innermost loops the
    extractor finds, the observation is the code2vec embedding of the
    enclosing nest, single-site evaluation goes through
    ``pipeline.measure_with_factors`` and full application injects
    ``#pragma clang loop`` hints into the source text.
    """

    name = "vectorization"
    action_labels = ("vf", "interleave")

    def __init__(
        self,
        vf_values: Optional[Sequence[int]] = None,
        if_values: Optional[Sequence[int]] = None,
    ):
        # Imported lazily: the canonical menus live in repro.rl.spaces, and
        # importing them at module level would cycle through repro.rl.env
        # (which imports this package) during ``import repro.tasks``.
        from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES

        self.menus: Tuple[Tuple[int, ...], ...] = (
            tuple(vf_values) if vf_values is not None else DEFAULT_VF_VALUES,
            tuple(if_values) if if_values is not None else DEFAULT_IF_VALUES,
        )

    def default_action(self) -> Action:
        return (1, 1)

    def baseline_action(
        self, pipeline: "CompileAndMeasure", kernel: "LoopKernel", site_index: int
    ) -> Action:
        """The baseline cost model's own (VF, IF) pick for one loop."""
        ir_function = pipeline.lower_kernel(kernel)
        loops = ir_function.innermost_loops()
        if site_index >= len(loops):
            return self.default_action()
        decision = pipeline.baseline_model.decide_loop(ir_function, loops[site_index])
        return snap_to_menus(self.menus, (decision.vf, decision.interleave))

    # -- decision sites -----------------------------------------------------

    def decision_sites(self, kernel: "LoopKernel") -> List[DecisionSite]:
        return innermost_loop_sites(kernel)

    # -- measurement --------------------------------------------------------

    def evaluate(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        site_index: int,
        action: Action,
    ) -> "CompilationResult":
        vf, interleave = self.cache_key(action)
        return pipeline.measure_with_factors(
            kernel, {int(site_index): (vf, interleave)}
        )

    def apply(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        decisions: Dict[int, Action],
        reward_cache=None,
    ) -> TaskApplication:
        from repro.core.pragma_injector import inject_pragmas

        factor_map = {
            int(index): self.cache_key(action) for index, action in decisions.items()
        }
        vectorized_source = inject_pragmas(
            kernel.source, factor_map, function_name=kernel.function_name
        )
        # Keyed by the effective (pragma-annotated) source — the same
        # entries vectorize_kernel uses, so either path warms the other.
        result = measure_annotated_source(
            pipeline, kernel, vectorized_source, reward_cache
        )
        return TaskApplication(
            kernel_name=kernel.name,
            decisions=factor_map,
            result=result,
            transformed_source=vectorized_source,
            description=f"injected pragmas into {len(factor_map)} loop(s)",
        )
