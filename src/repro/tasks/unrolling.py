"""Loop unrolling as an optimization task: per-loop unroll-factor decisions.

The third end-to-end scenario the framework hosts, and the first the
ROADMAP's "more tasks (unroll factors, ...)" item asked for.  Per innermost
loop the agent picks an unroll factor from a small power-of-two menu; the
decision is realised exactly like the paper realises vectorization factors
(Figure 4): a ``#pragma clang loop unroll_count(U)`` line is injected
immediately before the loop and the annotated source is compiled and
measured.

**Cost semantics.**  Interleaving *is* unroll-and-jam of the (vector) loop,
so the simulator's interleave model — loop-overhead amortisation, latency
hiding for reductions and recurrences, register-pressure/spill growth at
extreme factors — is the unrolling cost model: ``unroll_count(U)`` pins the
loop's unroll/interleave factor to ``U`` while the vector width stays with
the baseline cost model (``unroll_count(1)`` disables unrolling, as in
clang).  The menu stays within ``MachineDescription.max_interleave`` so the
planner never has to clamp a requested factor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.tasks.base import (
    Action,
    DecisionSite,
    OptimizationTask,
    TaskApplication,
    innermost_loop_sites,
    measure_annotated_source,
    snap_to_menus,
)

if TYPE_CHECKING:
    from repro.core.pipeline import CompilationResult, CompileAndMeasure
    from repro.datasets.kernels import LoopKernel

#: Unroll-factor menu: 1 means "do not unroll"; powers of two within the
#: default machine's ``max_interleave`` so requests are applied verbatim.
DEFAULT_UNROLL_FACTORS: Tuple[int, ...] = (1, 2, 4, 8, 16)


class UnrollingTask(OptimizationTask):
    """Decide an unroll factor per innermost loop, applied via pragmas."""

    name = "unrolling"
    action_labels = ("unroll",)

    def __init__(self, unroll_factors: Sequence[int] = DEFAULT_UNROLL_FACTORS):
        self.menus = (tuple(unroll_factors),)

    def default_action(self) -> Action:
        return (1,)

    def baseline_action(
        self, pipeline: "CompileAndMeasure", kernel: "LoopKernel", site_index: int
    ) -> Action:
        """The baseline cost model's own interleave pick for one loop.

        The model's interleave *is* its unroll decision, so reproducing it
        per site makes the all-baseline decision map measure exactly the
        ``measure_baseline`` cycles (the x=1.0 row of every comparison).
        """
        ir_function = pipeline.lower_kernel(kernel)
        loops = ir_function.innermost_loops()
        if site_index >= len(loops):
            return self.default_action()
        decision = pipeline.baseline_model.decide_loop(ir_function, loops[site_index])
        return snap_to_menus(self.menus, (decision.interleave,))

    # -- decision sites -----------------------------------------------------

    def decision_sites(self, kernel: "LoopKernel") -> List[DecisionSite]:
        """One site per innermost loop — the same sites vectorization uses.

        The shared enumeration walks conditionals exactly like lowering
        does, so site index ``i`` addresses the ``i``-th entry of the
        lowered IR's ``innermost_loops()`` even when a nest sits inside an
        ``if`` region (the PR-3 Polly bug class; regression-tested for
        this task too).
        """
        return innermost_loop_sites(kernel)

    # -- measurement --------------------------------------------------------

    def _factors_for(
        self, pipeline: "CompileAndMeasure", kernel: "LoopKernel",
        decisions: Dict[int, Action],
    ) -> Dict[int, Tuple[int, int]]:
        """Effective (VF, IF) per decided loop: baseline width x unroll."""
        ir_function = pipeline.lower_kernel(kernel)
        loops = ir_function.innermost_loops()
        factors: Dict[int, Tuple[int, int]] = {}
        for site_index, action in decisions.items():
            if not 0 <= site_index < len(loops):
                continue
            decision = pipeline.baseline_model.decide_loop(
                ir_function, loops[site_index]
            )
            factors[site_index] = (decision.vf, int(action[0]))
        return factors

    def evaluate(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        site_index: int,
        action: Action,
    ) -> "CompilationResult":
        action = self.cache_key(action)
        factors = self._factors_for(pipeline, kernel, {int(site_index): action})
        return pipeline.measure_with_factors(kernel, factors)

    def apply(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        decisions: Dict[int, Action],
        reward_cache=None,
    ) -> TaskApplication:
        """Inject ``unroll_count`` pragmas and measure the annotated source.

        The pragma path keeps evaluate/apply consistent: the frontend
        attaches each ``unroll_count`` to its loop and the pipeline turns it
        into the same (baseline VF, U) factors :meth:`evaluate` requests
        explicitly, so a full application measures what the per-site rewards
        predicted.
        """
        from repro.core.pragma_injector import inject_loop_pragmas
        from repro.frontend.pragmas import LoopPragma

        normalized = {
            int(index): self.cache_key(action) for index, action in decisions.items()
        }
        annotated = inject_loop_pragmas(
            kernel.source,
            {
                index: LoopPragma(unroll_count=action[0])
                for index, action in normalized.items()
            },
            function_name=kernel.function_name,
        )
        result = measure_annotated_source(pipeline, kernel, annotated, reward_cache)
        return TaskApplication(
            kernel_name=kernel.name,
            decisions=normalized,
            result=result,
            transformed_source=annotated,
            description=f"injected unroll pragmas into {len(normalized)} loop(s)",
        )
