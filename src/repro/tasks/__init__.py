"""Pluggable optimization tasks: what decision the RL pipeline is making.

The decision layer (environment, agents, reward cache, distributed workers)
is generic over an :class:`OptimizationTask`; three tasks ship in-tree:

* ``"vectorization"`` — the paper's per-loop (VF, IF) pragma decision
  (:class:`VectorizationTask`, the default everywhere),
* ``"polly-tiling"`` — per-nest polyhedral tile-size/fusion decisions
  driving :mod:`repro.polly` (:class:`PollyTilingTask`),
* ``"unrolling"`` — per-loop unroll factors applied through
  ``#pragma clang loop unroll_count`` injection (:class:`UnrollingTask`).

Add a task by subclassing :class:`OptimizationTask` and registering a
factory::

    from repro.tasks import OptimizationTask, register_task

    class PhaseOrderTask(OptimizationTask):
        name = "phase-order"
        ...

    register_task("phase-order", PhaseOrderTask)

after which ``TrainingConfig(task="phase-order")``, ``--task phase-order``
and the distributed workers all resolve it by name.
"""

from repro.tasks.base import (
    Action,
    DecisionSite,
    OptimizationTask,
    TaskApplication,
    available_tasks,
    get_task,
    register_task,
    resolve_task,
    resolve_tasks,
    snap_to_menus,
)
from repro.tasks.polly_tiling import DEFAULT_TILE_SIZES, PollyTilingTask
from repro.tasks.unrolling import DEFAULT_UNROLL_FACTORS, UnrollingTask
from repro.tasks.vectorization import VectorizationTask

register_task("vectorization", VectorizationTask, overwrite=True)
register_task("polly-tiling", PollyTilingTask, overwrite=True)
register_task("unrolling", UnrollingTask, overwrite=True)

__all__ = [
    "Action",
    "DecisionSite",
    "OptimizationTask",
    "TaskApplication",
    "VectorizationTask",
    "PollyTilingTask",
    "UnrollingTask",
    "DEFAULT_TILE_SIZES",
    "DEFAULT_UNROLL_FACTORS",
    "available_tasks",
    "get_task",
    "register_task",
    "resolve_task",
    "resolve_tasks",
    "snap_to_menus",
]
