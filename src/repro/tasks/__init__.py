"""Pluggable optimization tasks: what decision the RL pipeline is making.

The decision layer (environment, agents, reward cache, distributed workers)
is generic over an :class:`OptimizationTask`; two tasks ship in-tree:

* ``"vectorization"`` — the paper's per-loop (VF, IF) pragma decision
  (:class:`VectorizationTask`, the default everywhere),
* ``"polly-tiling"`` — per-nest polyhedral tile-size/fusion decisions
  driving :mod:`repro.polly` (:class:`PollyTilingTask`).

Add a task by subclassing :class:`OptimizationTask` and registering a
factory::

    from repro.tasks import OptimizationTask, register_task

    class UnrollTask(OptimizationTask):
        name = "unroll"
        ...

    register_task("unroll", UnrollTask)

after which ``TrainingConfig(task="unroll")``, ``--task unroll`` and the
distributed workers all resolve it by name.
"""

from repro.tasks.base import (
    Action,
    DecisionSite,
    OptimizationTask,
    TaskApplication,
    available_tasks,
    get_task,
    register_task,
    resolve_task,
)
from repro.tasks.polly_tiling import DEFAULT_TILE_SIZES, PollyTilingTask
from repro.tasks.vectorization import VectorizationTask

register_task("vectorization", VectorizationTask, overwrite=True)
register_task("polly-tiling", PollyTilingTask, overwrite=True)

__all__ = [
    "Action",
    "DecisionSite",
    "OptimizationTask",
    "TaskApplication",
    "VectorizationTask",
    "PollyTilingTask",
    "DEFAULT_TILE_SIZES",
    "available_tasks",
    "get_task",
    "register_task",
    "resolve_task",
]
