"""Polly tiling as an optimization task: per-nest tile-size/fusion decisions.

The second end-to-end scenario the framework hosts (§4.1/§5 of the paper
observe that Polly's tiling and the learned vectorization factors compose).
Instead of a fixed :class:`repro.polly.optimizer.PollyConfig`, the *agent*
decides per top-level loop nest:

* **tile size** — strip-mine every SCoP innermost loop of the nest with the
  chosen size (``1`` = leave the nest untiled),
* **fuse** — whether to run the adjacency fusion pass after tiling.

Decisions are applied on the lowered IR through the existing
:mod:`repro.polly` transforms and measured with
``pipeline.measure_function`` (the baseline cost model still picks the
vectorization factors of the transformed code, exactly as the Figure-8
"polly" configuration does).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.tasks.base import Action, DecisionSite, OptimizationTask, TaskApplication

if TYPE_CHECKING:
    from repro.core.pipeline import CompilationResult, CompileAndMeasure
    from repro.datasets.kernels import LoopKernel
    from repro.ir.nodes import IRFunction

#: Tile-size menu: 1 means "do not tile this nest"; the rest bracket Polly's
#: own 32x32 default.
DEFAULT_TILE_SIZES: Tuple[int, ...] = (1, 8, 16, 32, 64, 128)
#: Fusion flag menu: run the adjacency fusion pass or not.
FUSION_CHOICES: Tuple[int, ...] = (0, 1)


class PollyTilingTask(OptimizationTask):
    """Decide a (tile size, fuse flag) pair per top-level loop nest."""

    name = "polly-tiling"
    action_labels = ("tile", "fuse")

    def __init__(self, tile_sizes: Sequence[int] = DEFAULT_TILE_SIZES):
        self.menus = (tuple(tile_sizes), FUSION_CHOICES)

    def default_action(self) -> Action:
        return (1, 0)

    # -- decision sites -----------------------------------------------------

    def decision_sites(self, kernel: "LoopKernel") -> List[DecisionSite]:
        """One site per outermost loop nest, in source order.

        The extractor reports innermost loops; distinct nest roots, in
        first-seen order, are exactly the function's outermost nests — the
        same order lowering emits them (loops not enclosed by another loop,
        including nests inside ``if`` regions), so site index ``i``
        addresses the ``i``-th outermost IR loop ``_transform`` visits.
        """
        from repro.core.loop_extractor import extract_loops

        loops = extract_loops(kernel.source, function_name=kernel.function_name)
        sites: List[DecisionSite] = []
        seen_roots: set = set()
        for loop in loops:
            if id(loop.nest_root) in seen_roots:
                continue
            seen_roots.add(id(loop.nest_root))
            sites.append(
                DecisionSite(
                    index=len(sites),
                    ast_node=loop.nest_root,
                    source_line=loop.source_line,
                    description=f"loop nest #{len(sites)} of {loop.function_name}",
                    payload=loop,
                )
            )
        return sites

    # -- transformation -----------------------------------------------------

    def _transform(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        decisions: Dict[int, Action],
    ) -> Tuple["IRFunction", int, int]:
        """Tile per-nest, then optionally fuse; returns (ir, tiled, fused).

        Nests are visited in the same order :meth:`decision_sites` numbers
        them: every loop not enclosed by another loop, in region order,
        *including* nests sitting inside conditionals (an ``if``-wrapped
        nest is its own decision site, so the walk recurses through
        :class:`Conditional` regions — counting only direct body children
        would mis-attribute every decision after the conditional).  Tiling
        runs first so those indices stay stable; fusion — a whole-body
        pass, as in :class:`repro.polly.optimizer.PollyConfig` — runs last
        when any decided site asked for it.
        """
        from repro.ir.nodes import Conditional, Loop
        from repro.polly.scop import detect_scop
        from repro.polly.transforms import (
            clone_function,
            fuse_adjacent_loops,
            tile_loop_nest,
        )

        transformed = clone_function(pipeline.lower_kernel(kernel))
        tiled = 0
        cursor = {"nest_index": 0}

        def rewrite_region(nodes):
            nonlocal tiled
            new_nodes = []
            for node in nodes:
                if isinstance(node, Loop):
                    decision = decisions.get(cursor["nest_index"])
                    cursor["nest_index"] += 1
                    if decision is not None and decision[0] > 1:
                        scop = detect_scop(transformed, node)
                        if scop.is_scop:
                            tile_size = int(decision[0])
                            node = tile_loop_nest(
                                transformed,
                                node,
                                tile_size=tile_size,
                                # The agent's choice is authoritative: tile
                                # whenever a tile actually fits the trip count.
                                min_trip_count=tile_size + 1,
                                min_working_set_bytes=0.0,
                            )
                            tiled += 1
                elif isinstance(node, Conditional):
                    node.then_body = rewrite_region(node.then_body)
                    node.else_body = rewrite_region(node.else_body)
                new_nodes.append(node)
            return new_nodes

        transformed.body = rewrite_region(transformed.body)
        fused = 0
        if any(decision[1] for decision in decisions.values()):
            before = len(transformed.all_loops())
            transformed.body = fuse_adjacent_loops(transformed.body)
            fused = max(0, before - len(transformed.all_loops()))
        return transformed, tiled, fused

    # -- measurement --------------------------------------------------------

    def evaluate(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        site_index: int,
        action: Action,
    ) -> "CompilationResult":
        action = self.cache_key(action)
        transformed, _, _ = self._transform(
            pipeline, kernel, {int(site_index): action}
        )
        return pipeline.measure_function(kernel, transformed)

    def apply(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        decisions: Dict[int, Action],
        reward_cache=None,
    ) -> TaskApplication:
        normalized = {
            int(index): self.cache_key(action) for index, action in decisions.items()
        }
        transformed, tiled, fused = self._transform(pipeline, kernel, normalized)
        if reward_cache is not None:
            result, _ = reward_cache.measure_application(
                pipeline,
                self,
                kernel,
                normalized,
                lambda: pipeline.measure_function(kernel, transformed),
            )
        else:
            result = pipeline.measure_function(kernel, transformed)
        return TaskApplication(
            kernel_name=kernel.name,
            decisions=normalized,
            result=result,
            description=f"tiled {tiled} nest(s), fused {fused} loop(s)",
        )
