"""The pluggable optimization-task API and its registry.

The paper's pipeline (code2vec embedding → PPO agent → code transform →
measure) is generic over *what* decision is being made per loop: the
vectorization reproduction decides ``(VF, IF)`` pairs, a polyhedral task
decides tile sizes and fusion, future tasks may decide unroll factors or
phase orders.  :class:`OptimizationTask` is the seam: it owns the action
menus, maps kernels to decision sites, embeds each site for the agent, and
turns a chosen action back into a measured program.

Everything downstream — :class:`repro.rl.env.VectorizationEnv`, the agents,
the :class:`repro.cache.RewardCache` key schema, the distributed evaluation
workers — talks to the task through this interface and never mentions VF or
IF by name.

Tasks register by name (:func:`register_task`) so that config files, CLI
flags (``--task polly-tiling``) and worker processes can all resolve the
same task object; :func:`resolve_task` is the single front door accepting a
name, an instance, or ``None`` (the vectorization default).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # imported lazily to avoid package import cycles
    from repro.core.pipeline import CompilationResult, CompileAndMeasure
    from repro.datasets.kernels import LoopKernel
    from repro.rl.spaces import ActionSpace

#: A concrete task action: one integer per decision dimension.
Action = Tuple[int, ...]


def snap_to_menus(menus: Tuple[Tuple[int, ...], ...], values) -> Action:
    """Round each component to the nearest entry of its menu.

    Ties resolve toward the smaller value (the pinned tie-break of
    :mod:`repro.rl.spaces`), so a baseline decision that falls outside a
    custom menu still maps to a legal, deterministic action.
    """
    return tuple(
        min(menu, key=lambda entry: (abs(entry - int(value)), entry))
        for menu, value in zip(menus, values)
    )


def innermost_loop_sites(kernel: "LoopKernel") -> List[DecisionSite]:
    """One :class:`DecisionSite` per innermost loop, in extractor order.

    The shared site enumeration for per-loop tasks (vectorization,
    unrolling): site index ``i`` addresses the ``i``-th entry of the
    lowered IR's ``innermost_loops()``, including loops wrapped in
    conditionals, so any indexing fix lands in every per-loop task at once.
    """
    from repro.core.loop_extractor import extract_loops

    loops = extract_loops(kernel.source, function_name=kernel.function_name)
    return [
        DecisionSite(
            index=loop.loop_index,
            ast_node=loop.nest_root,
            source_line=loop.source_line,
            description=f"innermost loop #{loop.loop_index} "
            f"of {loop.function_name}",
            payload=loop,
        )
        for loop in loops
    ]


def measure_annotated_source(
    pipeline: "CompileAndMeasure",
    kernel: "LoopKernel",
    source: str,
    reward_cache=None,
):
    """Measure a pragma-annotated rewrite of ``kernel``, cache-aware.

    The shared tail of every pragma-injecting task's ``apply``: with a
    reward cache the measurement is keyed by the annotated source (so any
    consumer measuring the same pragma assignment shares the entry), and
    served from it on warm reruns.
    """
    if reward_cache is not None:
        result, _ = reward_cache.measure_pragmas(pipeline, kernel, source=source)
        return result
    return pipeline.measure_with_pragmas(kernel, source=source)


@dataclass
class DecisionSite:
    """One unit of a kernel the task makes a decision for.

    ``index`` is the task-level site index — the same integer that keys the
    reward cache and the per-site decision maps.  ``ast_node`` is the source
    AST subtree the embedding generator reads for this site (the paper found
    feeding the whole nest performs better than the innermost loop alone).
    ``payload`` carries task-specific context, e.g. the full
    :class:`repro.core.loop_extractor.ExtractedLoop` for vectorization.
    """

    index: int
    ast_node: object
    source_line: int = 0
    description: str = ""
    payload: object = None


@dataclass
class TaskApplication:
    """Outcome of applying a full decision map to one kernel.

    ``result`` is any object with ``cycles`` and ``compile_seconds`` — a
    fresh :class:`CompilationResult`, or the cached measurement when the
    application was answered by the reward cache.
    """

    kernel_name: str
    decisions: Dict[int, Action] = field(default_factory=dict)
    result: Optional[object] = None
    #: The rewritten source text, for tasks that transform at source level
    #: (pragma injection); ``None`` for IR-level tasks (tiling).
    transformed_source: Optional[str] = None
    description: str = ""


class OptimizationTask:
    """Protocol every optimization task implements.

    Subclasses set :attr:`name` (the registry key), :attr:`action_labels`
    (one short label per decision dimension, used in info dicts and
    reports) and :attr:`menus` (the legal values per dimension), and
    implement :meth:`decision_sites`, :meth:`evaluate` and :meth:`apply`.
    """

    name: str = "task"
    #: One human-readable label per action dimension (e.g. ("vf", "interleave")).
    action_labels: Tuple[str, ...] = ()
    #: One menu of legal integer values per action dimension.
    menus: Tuple[Tuple[int, ...], ...] = ()

    # -- action space -------------------------------------------------------

    def action_space(self, kind: str = "discrete") -> "ActionSpace":
        """One of the three Figure-6 encodings over this task's menus."""
        from repro.rl.spaces import make_action_space

        return make_action_space(kind, self.menus)

    def default_action(self) -> Action:
        """The "leave it to the compiler" action (reward ~0 by construction)."""
        return tuple(menu[0] for menu in self.menus)

    def baseline_action(
        self, pipeline: "CompileAndMeasure", kernel: "LoopKernel", site_index: int
    ) -> Action:
        """The action that reproduces the compiler's own choice for one site.

        This is the x=1.0 reference of every comparison figure: applying the
        baseline action to every site must measure the same cycles as
        ``pipeline.measure_baseline``.  Tasks whose default action *is* the
        identity transform (tiling, fusion) inherit this; tasks whose menus
        overlap a decision the baseline cost model already makes
        (vectorization factors, unroll counts) override it to return the
        model's pick.
        """
        return self.default_action()

    def cache_key(self, action) -> Action:
        """Normalise an action to the canonical tuple used in cache keys.

        Every component must come from its dimension's menu: accepting
        out-of-menu values would let two inputs that transform identically
        (e.g. any truthy fuse flag) occupy distinct cache/store entries.
        """
        if not isinstance(action, (tuple, list, np.ndarray)):
            action = (action,)
        normalized = tuple(int(value) for value in action)
        if len(normalized) != len(self.menus):
            raise ValueError(
                f"task {self.name!r} actions have {len(self.menus)} "
                f"dimension(s), got {normalized!r}"
            )
        for dimension, (menu, value) in enumerate(zip(self.menus, normalized)):
            if value not in menu:
                label = (
                    self.action_labels[dimension]
                    if dimension < len(self.action_labels)
                    else f"dimension {dimension}"
                )
                raise ValueError(
                    f"task {self.name!r}: {value!r} is not in the {label} "
                    f"menu {menu!r}"
                )
        return normalized

    def info_dict(self, action: Action) -> Dict[str, float]:
        """Per-dimension labels for step-info dicts and reports."""
        return {
            label: float(value)
            for label, value in zip(self.action_labels, action)
        }

    # -- decision sites / observations -------------------------------------

    def decision_sites(self, kernel: "LoopKernel") -> List[DecisionSite]:
        """The units of ``kernel`` this task decides for, in index order."""
        raise NotImplementedError

    def observation_features(
        self, site: DecisionSite, embedding_model, max_contexts: int = 200
    ) -> np.ndarray:
        """The embedding the agent observes for one decision site."""
        from repro.embedding.ast_paths import extract_path_contexts
        from repro.embedding.vocab import normalize_identifiers

        rename_map = normalize_identifiers(site.ast_node)
        contexts = extract_path_contexts(
            site.ast_node, max_contexts=max_contexts, rename_map=rename_map
        )
        return embedding_model.embed(contexts)

    # -- measurement --------------------------------------------------------

    def evaluate(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        site_index: int,
        action: Action,
    ) -> "CompilationResult":
        """Measure ``kernel`` with ``action`` applied to one site only.

        Sites without a decision stay at the compiler default, mirroring how
        the paper evaluates one loop's factors at a time.  This is the
        reward query the cache and the distributed workers execute; it must
        be deterministic for a given (kernel content, machine, action).
        """
        raise NotImplementedError

    def apply(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        decisions: Dict[int, Action],
        reward_cache=None,
    ) -> TaskApplication:
        """Apply a full per-site decision map and measure the result.

        ``reward_cache`` (a :class:`repro.cache.RewardCache`) lets the
        measurement be served from — and recorded into — the run-wide
        cache, so warm reruns of the end-to-end path simulate nothing.
        """
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: "OrderedDict[str, Callable[[], OptimizationTask]]" = OrderedDict()

#: The task every compatibility shim resolves to.
DEFAULT_TASK_NAME = "vectorization"


def register_task(
    name: str, factory: Callable[[], OptimizationTask], overwrite: bool = False
) -> None:
    """Register a task factory under ``name`` (see ``repro.tasks``)."""
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"optimization task {name!r} is already registered")
    _REGISTRY[name] = factory


def available_tasks() -> List[str]:
    """Names of every registered task, in registration order."""
    return list(_REGISTRY)


def get_task(name: str) -> OptimizationTask:
    """Instantiate the registered task called ``name``."""
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(repr(task) for task in available_tasks()) or "none"
        raise ValueError(
            f"unknown optimization task {name!r}; registered tasks: {known}"
        )
    return factory()


def resolve_task(task=None) -> OptimizationTask:
    """The single front door: ``None`` (default), a name, or an instance."""
    if task is None:
        return get_task(DEFAULT_TASK_NAME)
    if isinstance(task, str):
        return get_task(task)
    if isinstance(task, OptimizationTask):
        return task
    raise TypeError(
        f"expected a task name, an OptimizationTask or None, got {type(task)!r}"
    )


def resolve_tasks(entries) -> List[OptimizationTask]:
    """Resolve a sequence of task names/instances, rejecting duplicates.

    The multi-task counterpart of :func:`resolve_task`, shared by every
    joint-training surface (``TrainingConfig.tasks``, ``NeuroVectorizer``,
    ``MultiTaskEnv``) so task-identity rules live in one place.
    """
    resolved = [resolve_task(entry) for entry in entries]
    names = [task.name for task in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate tasks: {names}")
    return resolved
