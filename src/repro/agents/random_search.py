"""Uniform random action selection (the paper's random-search comparator)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.cache.reward_cache import (
    RewardCache,
    evaluate_requests,
    kernel_fingerprint,
    resolve_cache,
)
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.tasks import OptimizationTask, resolve_task


class RandomSearchAgent(VectorizationAgent):
    """Picks each action component uniformly at random from its legal menu.

    The paper uses this to show that the RL agent's gains come from learned
    structure and not from the action space itself: "Random search performed
    much worse than the baseline" (§4).

    With ``candidates > 1`` (and a pipeline) the agent becomes best-of-N
    random search: it draws N candidate actions and keeps the fastest, with
    every measurement routed through the shared :class:`RewardCache` (or
    the sharded ``evaluation_service`` when one is attached) so repeated
    draws cost a lookup instead of a compile.

    **Determinism.** Queries that carry a kernel derive their random stream
    from ``(seed, kernel content hash, site_index)``, so the decision for a
    given site depends only on the agent's seed — never on how many other
    sites were queried first.  Cache hits, shared caches, or a service
    reordering evaluation therefore cannot change the outcome of a seeded
    run.  Embedding-only queries (no kernel) keep a per-agent stream.
    """

    name = "random"
    uses_observation = False

    def __init__(
        self,
        vf_values: Optional[Sequence[int]] = None,
        if_values: Optional[Sequence[int]] = None,
        seed: int = 0,
        candidates: int = 1,
        pipeline: Optional[CompileAndMeasure] = None,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
        task: Optional[OptimizationTask] = None,
    ):
        if candidates < 1:
            raise ValueError("candidates must be at least 1")
        self.task = resolve_task(task)
        menus = list(self.task.menus)
        # Legacy menu overrides for the two-dimensional vectorization task.
        if vf_values is not None:
            menus[0] = tuple(vf_values)
        if if_values is not None:
            menus[1] = tuple(if_values)
        self.menus: Tuple[Tuple[int, ...], ...] = tuple(tuple(m) for m in menus)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self.candidates = candidates
        self.pipeline = pipeline
        self.evaluation_service = evaluation_service
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)

    @property
    def vf_values(self) -> Tuple[int, ...]:
        """Legacy alias for the first menu."""
        return self.menus[0]

    @property
    def if_values(self) -> Tuple[int, ...]:
        """Legacy alias for the second menu."""
        return self.menus[1]

    def _rng_for(self, kernel: Optional[LoopKernel], loop_index: int):
        """The random stream for one query — content-derived when possible."""
        if kernel is None:
            return self.rng
        digest = kernel_fingerprint(kernel)
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, int(digest[:16], 16), int(loop_index)])
        )

    def _draw(self, rng) -> Tuple[int, ...]:
        return tuple(int(rng.choice(menu)) for menu in self.menus)

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        rng = self._rng_for(kernel, loop_index)
        draws = [self._draw(rng)]
        if self.candidates == 1 or kernel is None or (
            self.pipeline is None and self.evaluation_service is None
        ):
            return AgentDecision(action=draws[0])
        for _ in range(self.candidates - 1):
            draws.append(self._draw(rng))
        outcomes = evaluate_requests(
            self.pipeline,
            self.reward_cache,
            [(kernel, loop_index, candidate) for candidate in draws],
            service=self.evaluation_service,
            task=self.task,
        )
        best_action = draws[0]
        best_cycles = float("inf")
        for action, outcome in zip(draws, outcomes):
            if outcome.measurement.cycles < best_cycles:
                best_cycles = outcome.measurement.cycles
                best_action = action
        return AgentDecision(action=best_action)
