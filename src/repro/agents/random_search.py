"""Uniform random factor selection (the paper's random-search comparator)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.cache.reward_cache import EvaluationBatcher, RewardCache
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES


class RandomSearchAgent(VectorizationAgent):
    """Picks VF and IF uniformly at random from the legal menus.

    The paper uses this to show that the RL agent's gains come from learned
    structure and not from the action space itself: "Random search performed
    much worse than the baseline" (§4).

    With ``candidates > 1`` (and a pipeline) the agent becomes best-of-N
    random search: it draws N candidate pairs and keeps the fastest, with
    every measurement routed through the shared :class:`RewardCache` so
    repeated draws cost a lookup instead of a compile.
    """

    name = "random"

    def __init__(
        self,
        vf_values: Sequence[int] = DEFAULT_VF_VALUES,
        if_values: Sequence[int] = DEFAULT_IF_VALUES,
        seed: int = 0,
        candidates: int = 1,
        pipeline: Optional[CompileAndMeasure] = None,
        reward_cache: Optional[RewardCache] = None,
    ):
        if candidates < 1:
            raise ValueError("candidates must be at least 1")
        self.vf_values = tuple(vf_values)
        self.if_values = tuple(if_values)
        self.rng = np.random.default_rng(seed)
        self.candidates = candidates
        self.pipeline = pipeline
        self.reward_cache = RewardCache() if reward_cache is None else reward_cache

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        vf = int(self.rng.choice(self.vf_values))
        interleave = int(self.rng.choice(self.if_values))
        if self.candidates == 1 or kernel is None or self.pipeline is None:
            return AgentDecision(vf, interleave)
        draws = [(vf, interleave)]
        for _ in range(self.candidates - 1):
            draws.append(
                (int(self.rng.choice(self.vf_values)), int(self.rng.choice(self.if_values)))
            )
        batcher = EvaluationBatcher(self.pipeline, self.reward_cache)
        for candidate_vf, candidate_if in draws:
            batcher.add(kernel, loop_index, candidate_vf, candidate_if)
        best_factors = draws[0]
        best_cycles = float("inf")
        for factors, outcome in zip(draws, batcher.flush()):
            if outcome.measurement.cycles < best_cycles:
                best_cycles = outcome.measurement.cycles
                best_factors = factors
        return AgentDecision(*best_factors)
