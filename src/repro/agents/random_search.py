"""Uniform random factor selection (the paper's random-search comparator)."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.datasets.kernels import LoopKernel
from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES


class RandomSearchAgent(VectorizationAgent):
    """Picks VF and IF uniformly at random from the legal menus.

    The paper uses this to show that the RL agent's gains come from learned
    structure and not from the action space itself: "Random search performed
    much worse than the baseline" (§4).
    """

    name = "random"

    def __init__(
        self,
        vf_values: Sequence[int] = DEFAULT_VF_VALUES,
        if_values: Sequence[int] = DEFAULT_IF_VALUES,
        seed: int = 0,
    ):
        self.vf_values = tuple(vf_values)
        self.if_values = tuple(if_values)
        self.rng = np.random.default_rng(seed)

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        vf = int(self.rng.choice(self.vf_values))
        interleave = int(self.rng.choice(self.if_values))
        return AgentDecision(vf, interleave)
