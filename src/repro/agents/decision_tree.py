"""A CART decision tree over loop embeddings (§3.5).

scikit-learn is not available offline, so the tree (Gini-impurity CART with
axis-aligned splits) is implemented from scratch.  The tree classifies the
flattened (VF, IF) pair index; labels come from the brute-force search on the
training set, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.datasets.kernels import LoopKernel


@dataclass
class _TreeNode:
    """One node of the CART tree."""

    prediction: int
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions ** 2))


class DecisionTree:
    """Gini CART classifier with axis-aligned splits."""

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 4,
        min_samples_leaf: int = 1,
        max_thresholds_per_feature: int = 16,
        seed: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds_per_feature = max_thresholds_per_feature
        self.rng = np.random.default_rng(seed)
        self.root: Optional[_TreeNode] = None
        self.n_classes = 0

    # -- fitting ------------------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTree":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.shape[0] != labels.shape[0]:
            raise ValueError("features and labels must have the same length")
        self.n_classes = int(labels.max()) + 1 if labels.size else 1
        self.root = self._build(features, labels, depth=0)
        return self

    def _majority(self, labels: np.ndarray) -> int:
        counts = np.bincount(labels, minlength=self.n_classes)
        return int(np.argmax(counts))

    def _build(self, features: np.ndarray, labels: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(prediction=self._majority(labels))
        if (
            depth >= self.max_depth
            or labels.shape[0] < self.min_samples_split
            or np.unique(labels).size <= 1
        ):
            return node
        split = self._best_split(features, labels)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(features[mask], labels[mask], depth + 1)
        node.right = self._build(features[~mask], labels[~mask], depth + 1)
        return node

    def _best_split(
        self, features: np.ndarray, labels: np.ndarray
    ) -> Optional[Tuple[int, float]]:
        best_feature: Optional[int] = None
        best_threshold = 0.0
        parent_counts = np.bincount(labels, minlength=self.n_classes)
        best_impurity = _gini(parent_counts)
        total = labels.shape[0]
        improved = False
        for feature in range(features.shape[1]):
            column = features[:, feature]
            unique_values = np.unique(column)
            if unique_values.size <= 1:
                continue
            if unique_values.size > self.max_thresholds_per_feature:
                quantiles = np.linspace(0.05, 0.95, self.max_thresholds_per_feature)
                candidates = np.unique(np.quantile(column, quantiles))
            else:
                candidates = (unique_values[:-1] + unique_values[1:]) / 2.0
            for threshold in candidates:
                mask = column <= threshold
                left_count = int(mask.sum())
                if left_count == 0 or left_count == total:
                    continue
                left_counts = np.bincount(labels[mask], minlength=self.n_classes)
                right_counts = parent_counts - left_counts
                impurity = (
                    left_count * _gini(left_counts)
                    + (total - left_count) * _gini(right_counts)
                ) / total
                if impurity < best_impurity - 1e-12:
                    best_impurity = impurity
                    best_feature = feature
                    best_threshold = float(threshold)
                    improved = True
        if not improved or best_feature is None:
            return None
        return best_feature, best_threshold

    # -- inference ------------------------------------------------------------------

    def predict_one(self, features: np.ndarray) -> int:
        if self.root is None:
            raise RuntimeError("DecisionTree.fit() has not been called")
        node = self.root
        while not node.is_leaf:
            if features[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node.prediction

    def predict(self, features: np.ndarray) -> np.ndarray:
        features = np.asarray(features, dtype=np.float64)
        if features.ndim == 1:
            features = features.reshape(1, -1)
        return np.array([self.predict_one(row) for row in features], dtype=np.int64)

    def depth(self) -> int:
        def _depth(node: Optional[_TreeNode]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root)

    def node_count(self) -> int:
        def _count(node: Optional[_TreeNode]) -> int:
            if node is None:
                return 0
            return 1 + _count(node.left) + _count(node.right)

        return _count(self.root)


class DecisionTreeAgent(VectorizationAgent):
    """Predicts task actions with a decision tree over the learned embedding.

    The tree classifies the flattened action index over the task's menus
    (the (VF, IF) grid by default); labels come from the brute-force search
    on the training set, exactly as in the paper.
    """

    name = "decision_tree"

    def __init__(
        self,
        vf_values: Optional[Sequence[int]] = None,
        if_values: Optional[Sequence[int]] = None,
        max_depth: int = 8,
        seed: int = 0,
        task=None,
    ):
        from repro.rl.spaces import DiscreteFactorSpace
        from repro.tasks import resolve_task

        self.task = resolve_task(task)
        menus = list(self.task.menus)
        if vf_values is not None:
            menus[0] = tuple(vf_values)
        if if_values is not None:
            menus[1] = tuple(if_values)
        self.menus: Tuple[Tuple[int, ...], ...] = tuple(tuple(m) for m in menus)
        # The space owns the (tested, tie-break-pinned) flatten/unflatten
        # between action tuples and the tree's class labels.
        self._space = DiscreteFactorSpace(menus=self.menus)
        self.tree = DecisionTree(max_depth=max_depth, seed=seed)
        self._fitted = False

    @property
    def vf_values(self) -> Tuple[int, ...]:
        """Legacy alias for the first menu."""
        return self.menus[0]

    @property
    def if_values(self) -> Tuple[int, ...]:
        """Legacy alias for the second menu."""
        return self.menus[1]

    def _label_of(self, *action) -> int:
        return self._space.flatten_action(*action)

    def _factors_of(self, label: int) -> Tuple[int, ...]:
        return self._space.unflatten_action(label)

    def fit(
        self, embeddings: np.ndarray, labels: Sequence[Tuple[int, ...]]
    ) -> "DecisionTreeAgent":
        encoded = np.array(
            [self._label_of(tuple(label)) for label in labels], dtype=np.int64
        )
        self.tree.n_classes = self._space.num_actions
        features = np.asarray(embeddings, dtype=np.float64)
        self.tree.root = self.tree._build(features, encoded, depth=0)
        self._fitted = True
        return self

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        if not self._fitted:
            raise RuntimeError("DecisionTreeAgent.fit() has not been called")
        label = self.tree.predict_one(np.asarray(observation, dtype=np.float64))
        return AgentDecision(action=self._factors_of(label))
