"""The agent interface shared by RL, supervised and search-based methods."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.kernels import LoopKernel


class AgentDecision:
    """An agent's chosen action for one decision site.

    ``action`` is the task-defined tuple; the legacy two-argument
    constructor ``AgentDecision(vf, interleave)`` and the ``.vf`` /
    ``.interleave`` accessors keep working for two-dimensional tasks (they
    alias the first and second components).
    """

    __slots__ = ("action",)

    def __init__(
        self,
        vf: Optional[int] = None,
        interleave: Optional[int] = None,
        action: Optional[Tuple[int, ...]] = None,
    ):
        if action is None:
            if vf is None or interleave is None:
                raise TypeError(
                    "AgentDecision needs either action=(...) or vf/interleave"
                )
            action = (int(vf), int(interleave))
        elif vf is not None or interleave is not None:
            raise TypeError("pass either action or vf/interleave, not both")
        self.action: Tuple[int, ...] = tuple(int(value) for value in action)

    @property
    def vf(self) -> int:
        """Legacy alias for the first action component."""
        return self.action[0]

    @property
    def interleave(self) -> int:
        """Legacy alias for the second action component."""
        return self.action[1]

    def as_tuple(self) -> Tuple[int, ...]:
        return self.action

    def __eq__(self, other) -> bool:
        if isinstance(other, AgentDecision):
            return self.action == other.action
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.action)

    def __repr__(self) -> str:
        return f"AgentDecision(action={self.action!r})"


class VectorizationAgent:
    """Base class: map a site observation to a task-action decision.

    ``observation`` is the code2vec embedding of the decision site (for the
    default task, the loop nest).  Agents that do not use the embedding
    (baseline, brute force) may instead use the ``kernel``/``loop_index``
    context passed alongside it and set :attr:`uses_observation` to False,
    letting embedding-free harnesses (e.g. a ``ComparisonRunner`` without
    an embedding model) know a placeholder observation is acceptable.  The
    name predates the task redesign — any registered
    :class:`repro.tasks.OptimizationTask` plugs in.
    """

    name: str = "agent"
    #: Whether select_factors reads the observation vector (embedding).
    uses_observation: bool = True

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
