"""The agent interface shared by RL, supervised and search-based methods."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.datasets.kernels import LoopKernel


@dataclass
class AgentDecision:
    """An agent's chosen factors for one loop."""

    vf: int
    interleave: int

    def as_tuple(self) -> Tuple[int, int]:
        return (self.vf, self.interleave)


class VectorizationAgent:
    """Base class: map a loop observation to a (VF, IF) decision.

    ``observation`` is the code2vec embedding of the loop nest.  Agents that
    do not use the embedding (baseline, brute force) may instead use the
    ``kernel``/``loop_index`` context passed alongside it.
    """

    name: str = "agent"

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
