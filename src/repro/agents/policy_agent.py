"""Adapter exposing a trained RL policy through the agent interface."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.datasets.kernels import LoopKernel
from repro.rl.policy import Policy


class PolicyAgent(VectorizationAgent):
    """Greedy (argmax) inference with a trained policy network.

    "Once the model is trained it can be plugged in as is for inference
    without further retraining" (§3) — this class is that plug.

    ``task`` selects which head of a jointly-trained policy this agent
    decides with (and which space decodes its actions) — a head *bank* of
    a :class:`repro.rl.policy.MultiTaskPolicy` or the task embedding of a
    :class:`repro.rl.policy.ConditionedPolicy`; one joint policy yields
    one task-pinned agent per task via :meth:`for_task`.  Single-task
    policies need no task: the agent routes to the only head.
    """

    name = "rl"

    def __init__(self, policy: Policy, deterministic: bool = True, task=None):
        from repro.tasks import resolve_task

        self.policy = policy
        self.deterministic = deterministic
        self.task = resolve_task(task) if task is not None else None
        # Fail at construction, not mid-comparison: a requested task the
        # policy was never trained for, or a multi-bank policy with no
        # task to route by, would otherwise only blow up on the first
        # select_factors call.
        if self.task is not None and hasattr(policy, "heads_for"):
            policy.heads_for(self.task.name)
        elif self.task is None and len(getattr(policy, "task_names", ())) > 1:
            raise ValueError(
                "a jointly-trained policy needs task=<name> (or "
                f"for_task()) to decide with; trained heads: "
                f"{policy.task_names}"
            )

    def for_task(self, task) -> "PolicyAgent":
        """This policy pinned to one of its tasks (joint-training helper)."""
        return PolicyAgent(self.policy, deterministic=self.deterministic, task=task)

    def _space(self, task_name: Optional[str]):
        if hasattr(self.policy, "space_for"):
            return self.policy.space_for(task_name)
        return self.policy.space

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        task_name = self.task.name if self.task is not None else None
        output = self.policy.act(
            np.asarray(observation, dtype=np.float64),
            deterministic=self.deterministic,
            task=task_name,
        )
        return AgentDecision(action=self._space(task_name).decode(output.action))
