"""Adapter exposing a trained RL policy through the agent interface."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.datasets.kernels import LoopKernel
from repro.rl.policy import Policy


class PolicyAgent(VectorizationAgent):
    """Greedy (argmax) inference with a trained policy network.

    "Once the model is trained it can be plugged in as is for inference
    without further retraining" (§3) — this class is that plug.
    """

    name = "rl"

    def __init__(self, policy: Policy, deterministic: bool = True):
        self.policy = policy
        self.deterministic = deterministic

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        output = self.policy.act(
            np.asarray(observation, dtype=np.float64),
            deterministic=self.deterministic,
        )
        return AgentDecision(action=self.policy.space.decode(output.action))
