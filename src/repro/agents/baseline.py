"""An agent that defers every decision to the compiler's own cost model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.tasks import OptimizationTask, resolve_task


class BaselineAgent(VectorizationAgent):
    """Chooses whatever the compiler would do on its own.

    Delegates to :meth:`repro.tasks.OptimizationTask.baseline_action`: the
    LLVM-like cost model's per-loop (VF, IF) choice for vectorization, its
    interleave pick for the unrolling task, and the identity transform for
    tasks whose default action already leaves the code alone (tiling).
    Useful as the x=1.0 reference in every comparison figure.
    """

    name = "baseline"
    uses_observation = False

    def __init__(
        self,
        pipeline: Optional[CompileAndMeasure] = None,
        task: Optional[OptimizationTask] = None,
    ):
        self.pipeline = pipeline or CompileAndMeasure()
        self.task = resolve_task(task)

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        if kernel is None:
            return AgentDecision(action=self.task.default_action())
        return AgentDecision(
            action=self.task.baseline_action(self.pipeline, kernel, loop_index)
        )
