"""An agent that defers every decision to the compiler's own cost model."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.tasks import OptimizationTask, resolve_task


class BaselineAgent(VectorizationAgent):
    """Chooses whatever the compiler would do on its own.

    For the vectorization task that is the LLVM-like baseline cost model's
    per-loop (VF, IF) choice; for other tasks it is the task's default
    ("leave the code alone") action.  Useful as the x=1.0 reference in
    every comparison figure.
    """

    name = "baseline"

    def __init__(
        self,
        pipeline: Optional[CompileAndMeasure] = None,
        task: Optional[OptimizationTask] = None,
    ):
        self.pipeline = pipeline or CompileAndMeasure()
        self.task = resolve_task(task)

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        if self.task.name != "vectorization":
            return AgentDecision(action=self.task.default_action())
        if kernel is None:
            return AgentDecision(1, 1)
        ir_function = self.pipeline.lower_kernel(kernel)
        loops = ir_function.innermost_loops()
        if loop_index >= len(loops):
            return AgentDecision(1, 1)
        decision = self.pipeline.baseline_model.decide_loop(
            ir_function, loops[loop_index]
        )
        return AgentDecision(decision.vf, decision.interleave)
