"""Nearest-neighbour search over loop embeddings (§3.5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.datasets.kernels import LoopKernel


class NearestNeighborAgent(VectorizationAgent):
    """k-NN over the code2vec embedding space with brute-force labels.

    After end-to-end RL training produces a useful embedding, the RL agent
    can be replaced with NNS: store (embedding, best action) pairs obtained
    from the brute-force search on the training set and answer queries with
    the (majority-vote) action of the closest stored sites.  Labels are
    task-action tuples of any arity — (VF, IF) pairs for the default task,
    (tile, fuse) pairs for Polly tiling — so the agent is task-generic
    without configuration.
    """

    name = "nns"

    def __init__(self, k: int = 1, normalize: bool = True):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.normalize = normalize
        self._embeddings: Optional[np.ndarray] = None
        self._labels: List[Tuple[int, ...]] = []

    # -- training -----------------------------------------------------------------

    def fit(
        self, embeddings: np.ndarray, labels: Sequence[Tuple[int, ...]]
    ) -> "NearestNeighborAgent":
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2:
            raise ValueError("embeddings must be a 2-D array (samples x features)")
        if embeddings.shape[0] != len(labels):
            raise ValueError("one label per embedding is required")
        self._embeddings = self._prepare(embeddings)
        self._labels = [tuple(label) for label in labels]
        return self

    def _prepare(self, embeddings: np.ndarray) -> np.ndarray:
        if not self.normalize:
            return embeddings
        norms = np.linalg.norm(embeddings, axis=1, keepdims=True)
        return embeddings / np.maximum(norms, 1e-12)

    @property
    def is_fitted(self) -> bool:
        return self._embeddings is not None and len(self._labels) > 0

    # -- inference ------------------------------------------------------------------

    def neighbors(self, observation: np.ndarray, k: Optional[int] = None) -> List[int]:
        """Indices of the k nearest stored embeddings."""
        if not self.is_fitted:
            raise RuntimeError("NearestNeighborAgent.fit() has not been called")
        k = k or self.k
        query = np.asarray(observation, dtype=np.float64).reshape(1, -1)
        query = self._prepare(query)
        distances = np.linalg.norm(self._embeddings - query, axis=1)
        order = np.argsort(distances)
        return list(order[:k])

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        nearest = self.neighbors(observation)
        votes: dict = {}
        for index in nearest:
            label = self._labels[index]
            votes[label] = votes.get(label, 0) + 1
        best = max(votes.items(), key=lambda item: (item[1], -item[0][0]))[0]
        return AgentDecision(action=best)
