"""The brute-force oracle exposed through the agent interface."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.cache.reward_cache import RewardCache, evaluate_requests, resolve_cache
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES


class BruteForceAgent(VectorizationAgent):
    """Exhaustively tries every (VF, IF) pair for the requested loop.

    This is the upper bound the paper reports RL to be "only 3% worse than";
    it needs the kernel itself (not just the embedding) and ~35 compilations
    per loop, which is exactly why the paper trains a policy instead of
    shipping this.

    All measurements go through a shared :class:`RewardCache` (pass the
    run's instance to share work with the environment and other agents), so
    repeat queries — and pairs the RL env already evaluated — cost a lookup
    instead of a compile.  With an ``evaluation_service`` the grid's unique
    misses are evaluated by its sharded worker pool instead of in-process.
    """

    name = "brute_force"

    def __init__(
        self,
        pipeline: Optional[CompileAndMeasure] = None,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
    ):
        self.pipeline = pipeline or CompileAndMeasure()
        self.evaluation_service = evaluation_service
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        if kernel is None:
            raise ValueError("BruteForceAgent needs the kernel to search")
        grid = [
            (vf, interleave)
            for vf in DEFAULT_VF_VALUES
            for interleave in DEFAULT_IF_VALUES
        ]
        outcomes = evaluate_requests(
            self.pipeline,
            self.reward_cache,
            [(kernel, loop_index, vf, interleave) for vf, interleave in grid],
            service=self.evaluation_service,
        )
        best_factors: Tuple[int, int] = (1, 1)
        best_cycles = float("inf")
        for (vf, interleave), outcome in zip(grid, outcomes):
            if outcome.measurement.cycles < best_cycles:
                best_cycles = outcome.measurement.cycles
                best_factors = (vf, interleave)
        return AgentDecision(*best_factors)
