"""The brute-force oracle exposed through the agent interface."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.cache.reward_cache import RewardCache, evaluate_requests, resolve_cache
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.tasks import OptimizationTask, resolve_task


class BruteForceAgent(VectorizationAgent):
    """Exhaustively tries every task action for the requested site.

    This is the upper bound the paper reports RL to be "only 3% worse than";
    it needs the kernel itself (not just the embedding) and one compilation
    per menu combination (35 for the (VF, IF) default), which is exactly why
    the paper trains a policy instead of shipping this.

    All measurements go through a shared :class:`RewardCache` (pass the
    run's instance to share work with the environment and other agents), so
    repeat queries — and actions the RL env already evaluated — cost a
    lookup instead of a compile.  With an ``evaluation_service`` the grid's
    unique misses are evaluated by its sharded worker pool instead of
    in-process.
    """

    name = "brute_force"
    uses_observation = False

    def __init__(
        self,
        pipeline: Optional[CompileAndMeasure] = None,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
        task: Optional[OptimizationTask] = None,
    ):
        self.pipeline = pipeline or CompileAndMeasure()
        self.evaluation_service = evaluation_service
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)
        self.task = resolve_task(task)

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        if kernel is None:
            raise ValueError("BruteForceAgent needs the kernel to search")
        grid = self.task.action_space("discrete").all_actions()
        outcomes = evaluate_requests(
            self.pipeline,
            self.reward_cache,
            [(kernel, loop_index, action) for action in grid],
            service=self.evaluation_service,
            task=self.task,
        )
        best_action: Tuple[int, ...] = self.task.default_action()
        best_cycles = float("inf")
        for action, outcome in zip(grid, outcomes):
            if outcome.measurement.cycles < best_cycles:
                best_cycles = outcome.measurement.cycles
                best_action = action
        return AgentDecision(action=best_action)
