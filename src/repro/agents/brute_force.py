"""The brute-force oracle exposed through the agent interface."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.core.pipeline import CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.rl.spaces import DEFAULT_IF_VALUES, DEFAULT_VF_VALUES


class BruteForceAgent(VectorizationAgent):
    """Exhaustively tries every (VF, IF) pair for the requested loop.

    This is the upper bound the paper reports RL to be "only 3% worse than";
    it needs the kernel itself (not just the embedding) and ~35 compilations
    per loop, which is exactly why the paper trains a policy instead of
    shipping this.
    """

    name = "brute_force"

    def __init__(self, pipeline: Optional[CompileAndMeasure] = None):
        self.pipeline = pipeline or CompileAndMeasure()
        self._cache: Dict[Tuple[str, int], AgentDecision] = {}

    def select_factors(
        self,
        observation: np.ndarray,
        kernel: Optional[LoopKernel] = None,
        loop_index: int = 0,
    ) -> AgentDecision:
        if kernel is None:
            raise ValueError("BruteForceAgent needs the kernel to search")
        key = (kernel.name, loop_index)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        best_factors: Tuple[int, int] = (1, 1)
        best_cycles = float("inf")
        for vf in DEFAULT_VF_VALUES:
            for interleave in DEFAULT_IF_VALUES:
                result = self.pipeline.measure_with_factors(
                    kernel, {loop_index: (vf, interleave)}
                )
                if result.cycles < best_cycles:
                    best_cycles = result.cycles
                    best_factors = (vf, interleave)
        decision = AgentDecision(*best_factors)
        self._cache[key] = decision
        return decision
