"""Alternative prediction methods layered on the learned embedding.

§3.5 of the paper: once end-to-end RL training has produced a good embedding,
the RL agent can be swapped for other predictors.  The framework here supports
the same set:

* :class:`~repro.agents.random_search.RandomSearchAgent` — uniform random
  factors (the paper's sanity check; it lands *below* the baseline),
* :class:`~repro.agents.nns.NearestNeighborAgent` — k-NN over embeddings with
  brute-force labels,
* :class:`~repro.agents.decision_tree.DecisionTreeAgent` — a CART decision
  tree trained on the same labels,
* :class:`~repro.agents.brute_force.BruteForceAgent` — the oracle,
* :class:`~repro.agents.policy_agent.PolicyAgent` — a trained RL policy,
* :class:`~repro.agents.baseline.BaselineAgent` — defer to the compiler's
  cost model (i.e. do nothing).
"""

from repro.agents.base import AgentDecision, VectorizationAgent
from repro.agents.baseline import BaselineAgent
from repro.agents.brute_force import BruteForceAgent
from repro.agents.decision_tree import DecisionTree, DecisionTreeAgent
from repro.agents.nns import NearestNeighborAgent
from repro.agents.policy_agent import PolicyAgent
from repro.agents.random_search import RandomSearchAgent

__all__ = [
    "AgentDecision",
    "VectorizationAgent",
    "BaselineAgent",
    "RandomSearchAgent",
    "NearestNeighborAgent",
    "DecisionTree",
    "DecisionTreeAgent",
    "BruteForceAgent",
    "PolicyAgent",
]
