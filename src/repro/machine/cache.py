"""Cache hierarchy parameters and effective memory-cost estimation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class CacheLevel:
    """One level of the data cache hierarchy."""

    name: str
    size_bytes: int
    latency_cycles: float
    bandwidth_bytes_per_cycle: float
    line_bytes: int = 64


@dataclass
class CacheHierarchy:
    """An ordered list of cache levels plus main memory.

    ``effective_load_latency`` and ``effective_bandwidth`` pick the level
    that a working set of a given size predominantly hits, which is the
    granularity the loop simulator needs: per-loop working sets decide
    whether the loop streams from L1, L2, LLC or DRAM.  Polly-style tiling
    pays off exactly by shrinking the per-tile working set into a faster
    level.
    """

    levels: List[CacheLevel] = field(default_factory=list)
    memory_latency_cycles: float = 200.0
    memory_bandwidth_bytes_per_cycle: float = 8.0

    @staticmethod
    def skylake_like() -> "CacheHierarchy":
        """A hierarchy shaped like the paper's i7-8559U (Coffee Lake-U)."""
        return CacheHierarchy(
            levels=[
                CacheLevel("L1D", 32 * 1024, 4.0, 64.0),
                CacheLevel("L2", 256 * 1024, 12.0, 32.0),
                CacheLevel("LLC", 8 * 1024 * 1024, 40.0, 16.0),
            ],
            memory_latency_cycles=180.0,
            memory_bandwidth_bytes_per_cycle=8.0,
        )

    def level_for_working_set(self, working_set_bytes: float) -> Optional[CacheLevel]:
        """The innermost level that can hold a working set of this size."""
        for level in self.levels:
            if working_set_bytes <= level.size_bytes:
                return level
        return None

    def effective_load_latency(self, working_set_bytes: float) -> float:
        level = self.level_for_working_set(working_set_bytes)
        if level is not None:
            return level.latency_cycles
        return self.memory_latency_cycles

    def effective_bandwidth(self, working_set_bytes: float) -> float:
        """Sustainable bytes/cycle when streaming over this working set."""
        level = self.level_for_working_set(working_set_bytes)
        if level is not None:
            return level.bandwidth_bytes_per_cycle
        return self.memory_bandwidth_bytes_per_cycle

    def blended_load_latency(
        self, working_set_bytes: float, line_reuse_fraction: float = 0.9
    ) -> float:
        """Average latency assuming ``line_reuse_fraction`` of loads hit L1.

        Streaming loops with unit stride hit L1 for every element in a line
        after the first miss; this blends the miss latency of the level that
        actually holds the data with L1 hits for the rest.
        """
        if not self.levels:
            return self.memory_latency_cycles
        l1 = self.levels[0]
        miss_latency = self.effective_load_latency(working_set_bytes)
        return line_reuse_fraction * l1.latency_cycles + (
            1.0 - line_reuse_fraction
        ) * miss_latency

    @property
    def line_bytes(self) -> int:
        return self.levels[0].line_bytes if self.levels else 64
