"""Machine descriptions: ports, latencies, vector parameters, presets."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.machine.cache import CacheHierarchy


class OpClass(enum.Enum):
    """Operation classes with distinct latency/throughput characteristics."""

    INT_ADD = "int_add"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FLOAT_ADD = "float_add"
    FLOAT_MUL = "float_mul"
    FLOAT_DIV = "float_div"
    BITWISE = "bitwise"
    SHIFT = "shift"
    COMPARE = "compare"
    SELECT = "select"
    CONVERT = "convert"
    MATH_CALL = "math_call"
    LOAD = "load"
    STORE = "store"
    SHUFFLE = "shuffle"


@dataclass(frozen=True)
class OpCost:
    """Latency and reciprocal throughput (uops issued per port per cycle)."""

    latency: float
    recip_throughput: float


#: Latencies/throughputs loosely modelled on Intel client cores (Agner Fog
#: tables); they only need to be *relatively* right for the experiments.
_DEFAULT_OP_COSTS: Dict[OpClass, OpCost] = {
    OpClass.INT_ADD: OpCost(1.0, 0.33),
    OpClass.INT_MUL: OpCost(3.0, 1.0),
    OpClass.INT_DIV: OpCost(24.0, 12.0),
    OpClass.FLOAT_ADD: OpCost(4.0, 0.5),
    OpClass.FLOAT_MUL: OpCost(4.0, 0.5),
    OpClass.FLOAT_DIV: OpCost(13.0, 5.0),
    OpClass.BITWISE: OpCost(1.0, 0.33),
    OpClass.SHIFT: OpCost(1.0, 0.5),
    OpClass.COMPARE: OpCost(1.0, 0.5),
    OpClass.SELECT: OpCost(1.0, 0.5),
    OpClass.CONVERT: OpCost(3.0, 1.0),
    OpClass.MATH_CALL: OpCost(18.0, 10.0),
    OpClass.LOAD: OpCost(4.0, 0.5),
    OpClass.STORE: OpCost(4.0, 1.0),
    OpClass.SHUFFLE: OpCost(1.0, 1.0),
}


@dataclass
class MachineDescription:
    """Everything the simulator and the vectorizer need to know about a CPU.

    The defaults describe an AVX2 client core similar to the i7-8559U the
    paper used: 256-bit vectors, 2 vector ALU ports, 2 load ports, 1 store
    port, 4-wide issue, 16 architectural vector registers.
    """

    name: str = "avx2"
    vector_bits: int = 256
    max_vectorize_width: int = 64
    max_interleave: int = 16
    vector_alu_ports: int = 2
    load_ports: int = 2
    store_ports: int = 1
    issue_width: int = 4
    vector_registers: int = 16
    frequency_ghz: float = 2.7
    op_costs: Dict[OpClass, OpCost] = field(
        default_factory=lambda: dict(_DEFAULT_OP_COSTS)
    )
    cache: CacheHierarchy = field(default_factory=CacheHierarchy.skylake_like)
    #: Extra uops per element for gathers/scatters (no fast gather hardware).
    gather_cost_per_element: float = 1.5
    scatter_cost_per_element: float = 2.0
    #: Extra uops per vector access with a constant non-unit stride.
    strided_cost_per_element: float = 0.6
    #: Penalty factor applied to unaligned vector memory accesses.
    misalignment_penalty: float = 0.15
    #: Fixed cycles for entering a vectorized loop (runtime trip-count and
    #: alias checks) when the trip count or aliasing is unknown statically.
    runtime_check_cycles: float = 24.0
    #: Cycles per scalar iteration of loop control (increment+compare+branch).
    loop_overhead_cycles: float = 1.0
    #: Cost of combining VF partial results of a reduction at loop exit.
    reduction_combine_cost_per_step: float = 1.0
    #: Cycles per vector register spilled/reloaded per loop iteration.
    spill_cost_cycles: float = 6.0

    # -- derived helpers ---------------------------------------------------------

    def lanes_for(self, element_bits: int) -> int:
        """How many elements of this width fit in one physical register."""
        return max(1, self.vector_bits // max(1, element_bits))

    def physical_parts(self, vf: int, element_bits: int) -> int:
        """Number of physical vector registers one logical <VF x ty> occupies."""
        lanes = self.lanes_for(element_bits)
        return max(1, -(-vf // lanes))  # ceil division

    def cost(self, op_class: OpClass) -> OpCost:
        return self.op_costs[op_class]

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / (self.frequency_ghz * 1e9)

    def vf_candidates(self) -> Tuple[int, ...]:
        """Powers of two up to the maximum supported vectorization width."""
        values = []
        vf = 1
        while vf <= self.max_vectorize_width:
            values.append(vf)
            vf *= 2
        return tuple(values)

    def if_candidates(self) -> Tuple[int, ...]:
        values = []
        interleave = 1
        while interleave <= self.max_interleave:
            values.append(interleave)
            interleave *= 2
        return tuple(values)


def avx2_machine() -> MachineDescription:
    """256-bit AVX2 machine fashioned after the paper's i7-8559U."""
    return MachineDescription()


def avx512_machine() -> MachineDescription:
    """A wider machine (AVX-512-like) used in ablation benches."""
    machine = MachineDescription(name="avx512", vector_bits=512, vector_registers=32)
    return machine


def scalar_machine() -> MachineDescription:
    """A machine without SIMD (every vector op is scalarised)."""
    return MachineDescription(name="scalar", vector_bits=64, max_vectorize_width=1,
                              max_interleave=4)


#: The machine every experiment uses unless stated otherwise.
DEFAULT_MACHINE = avx2_machine()
