"""Parametric SIMD machine descriptions.

The paper measures wall-clock time on an Intel i7-8559U with AVX.  This
reproduction replaces the physical CPU with a deterministic machine model:
issue ports, operation latencies/throughputs, vector width, register file
size and a cache hierarchy.  The simulator in :mod:`repro.simulator` turns a
(possibly vectorized) loop nest plus one of these descriptions into a cycle
estimate.
"""

from repro.machine.cache import CacheHierarchy, CacheLevel
from repro.machine.description import (
    MachineDescription,
    OpClass,
    avx2_machine,
    avx512_machine,
    scalar_machine,
    DEFAULT_MACHINE,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "MachineDescription",
    "OpClass",
    "avx2_machine",
    "avx512_machine",
    "scalar_machine",
    "DEFAULT_MACHINE",
]
