"""Content-keyed reward caching and batched evaluation for training loops."""

from repro.cache.reward_cache import (
    CachedMeasurement,
    CacheStats,
    EvaluationBatcher,
    RewardCache,
    RewardKey,
    kernel_fingerprint,
    machine_fingerprint,
)

__all__ = [
    "CachedMeasurement",
    "CacheStats",
    "EvaluationBatcher",
    "RewardCache",
    "RewardKey",
    "kernel_fingerprint",
    "machine_fingerprint",
]
