"""Content-keyed reward caching and batched evaluation for training loops."""

from repro.cache.reward_cache import (
    WHOLE_FUNCTION_BASELINE,
    WHOLE_FUNCTION_PRAGMAS,
    CachedMeasurement,
    CacheStats,
    EvaluationBatcher,
    RewardCache,
    RewardKey,
    evaluate_requests,
    kernel_fingerprint,
    machine_fingerprint,
    normalize_requests,
    resolve_cache,
)

__all__ = [
    "evaluate_requests",
    "normalize_requests",
    "resolve_cache",
    "CachedMeasurement",
    "CacheStats",
    "EvaluationBatcher",
    "RewardCache",
    "RewardKey",
    "WHOLE_FUNCTION_BASELINE",
    "WHOLE_FUNCTION_PRAGMAS",
    "kernel_fingerprint",
    "machine_fingerprint",
]
