"""Shared reward/measurement cache for the RL and search hot paths.

The paper (§3.4) notes that training is only tractable because rewards for
already-seen ``(program, action)`` pairs are precomputed and looked up
instead of recompiled.  This module is that subsystem for the reproduction:

* :class:`RewardCache` — a content-keyed store of simulator measurements.
  Keys hash the kernel *source text* (plus function name and bindings) and
  the machine description, so two kernels with identical code share entries
  and editing a kernel or changing the machine model invalidates nothing it
  shouldn't.  Every agent and environment in a run can share one instance.
* :class:`EvaluationBatcher` — collects pending ``(kernel, site, action)``
  requests, deduplicates them against each other and against the cache, and
  evaluates only the unique misses in one pass.  Rollout collection and
  brute-force sweeps submit whole batches instead of compiling per step.

Since the task redesign a key's action part is a *generic tuple* tagged
with the owning :class:`repro.tasks.OptimizationTask` name — ``(vf, if)``
for vectorization, ``(tile, fuse)`` for Polly tiling — so one cache (and
one persistent store) serves every registered task without collisions.
The legacy two-int API (``measure(pipeline, kernel, loop, vf, interleave)``,
``key_for(..., vf, interleave)``) is kept as a shim over the vectorization
task.

Rewards themselves are *derived* from cached measurements by each consumer
(the environment applies its own compile-time penalty rule), so one cache
serves environments with different penalty settings without cross-talk.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # imported lazily to avoid package import cycles
    from repro.core.pipeline import CompileAndMeasure
    from repro.datasets.kernels import LoopKernel
    from repro.machine.description import MachineDescription
    from repro.tasks.base import OptimizationTask


# ---------------------------------------------------------------------------
# Content fingerprints
# ---------------------------------------------------------------------------

#: Sentinel ``loop_index`` values for whole-function measurements, so the
#: end-to-end paths (``measure_baseline`` / ``measure_with_pragmas``) share
#: the same content-keyed store as per-loop factor queries.  The source text
#: is part of the kernel fingerprint, so a pragma-annotated variant never
#: collides with the plain kernel.
WHOLE_FUNCTION_BASELINE = -1
WHOLE_FUNCTION_PRAGMAS = -2
#: Sentinel for a task's full-application measurement (every site decided at
#: once); the key's action part flattens the whole decision map.
WHOLE_FUNCTION_APPLICATION = -3

#: Task tag for legacy (VF, IF) keys — the vectorization task's name.
VECTORIZATION_TASK = "vectorization"
#: Task tag for whole-function measurements, which are task-independent
#: (the same ``clang -O3`` baseline serves every task on a kernel).
WHOLE_FUNCTION_TASK = "function"


def kernel_fingerprint(kernel: "LoopKernel") -> str:
    """Digest of everything that determines a kernel's measured behaviour."""
    digest = hashlib.sha1()
    digest.update(kernel.source.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(kernel.function_name.encode("utf-8"))
    for name, value in sorted(kernel.bindings.items()):
        digest.update(f"\x00{name}={value}".encode("utf-8"))
    return digest.hexdigest()


def machine_fingerprint(machine: "MachineDescription") -> str:
    """Digest of the machine model (dataclass repr covers every cost knob)."""
    return hashlib.sha1(repr(machine).encode("utf-8")).hexdigest()


def _resolve_default_task() -> "OptimizationTask":
    """The vectorization task the legacy two-int API resolves to."""
    from repro.tasks import resolve_task

    return resolve_task(None)


@dataclass(frozen=True, init=False)
class RewardKey:
    """Identity of one measurement: kernel content x machine x task action.

    ``action`` is the task-defined decision tuple and ``task`` names the
    owning optimization task, so different tasks' decisions for the same
    site never collide.  ``default_symbol_value`` is part of the identity
    because the simulator falls back to it for symbolic loop bounds missing
    from the bindings — pipelines configured differently must not share
    entries.

    The legacy constructor shape ``RewardKey(kh, mh, loop, vf, interleave)``
    (positional or by ``vf=``/``interleave=`` keyword) still works and tags
    the key with the vectorization task.
    """

    kernel_hash: str
    machine_hash: str
    loop_index: int
    action: Tuple[int, ...]
    task: str
    default_symbol_value: int

    def __init__(
        self,
        kernel_hash: str,
        machine_hash: str,
        loop_index: int,
        vf: Optional[int] = None,
        interleave: Optional[int] = None,
        default_symbol_value: int = 256,
        action: Optional[Tuple[int, ...]] = None,
        task: str = VECTORIZATION_TASK,
    ):
        if action is None:
            if vf is None or interleave is None:
                raise TypeError(
                    "RewardKey needs either action=(...) or vf/interleave"
                )
            action = (int(vf), int(interleave))
        elif vf is not None or interleave is not None:
            raise TypeError("pass either action or vf/interleave, not both")
        object.__setattr__(self, "kernel_hash", kernel_hash)
        object.__setattr__(self, "machine_hash", machine_hash)
        object.__setattr__(self, "loop_index", int(loop_index))
        object.__setattr__(self, "action", tuple(int(v) for v in action))
        object.__setattr__(self, "task", str(task))
        object.__setattr__(self, "default_symbol_value", int(default_symbol_value))

    @property
    def vf(self) -> int:
        """Legacy alias for the first action component."""
        return self.action[0]

    @property
    def interleave(self) -> int:
        """Legacy alias for the second action component."""
        return self.action[1]


@dataclass
class CachedMeasurement:
    """The simulator outputs a reward is derived from."""

    cycles: float
    compile_seconds: float


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`RewardCache`."""

    hits: int = 0
    misses: int = 0
    batch_deduplicated: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def compiles_avoided(self) -> int:
        """Pipeline evaluations saved by cache hits and in-batch dedup."""
        return self.hits + self.batch_deduplicated

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": float(self.hits),
            "misses": float(self.misses),
            "batch_deduplicated": float(self.batch_deduplicated),
            "evictions": float(self.evictions),
            "hit_rate": self.hit_rate,
            "compiles_avoided": float(self.compiles_avoided),
        }


class RewardCache:
    """Content-keyed store of ``(kernel, machine, task, action)`` measurements.

    ``max_entries`` bounds memory with FIFO eviction; the default (unbounded)
    is right for training runs, where the number of unique pairs is
    ``sites x actions`` and small compared to the number of steps.
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[RewardKey, CachedMeasurement]" = OrderedDict()
        # Fingerprints are memoised per object identity.  The memo stores the
        # object itself so the id() keys cannot be recycled by a later
        # allocation, and identity is re-checked on every lookup (a kernel
        # whose ``source`` was reassigned in place re-hashes).
        self._kernel_fingerprints: Dict[int, Tuple["LoopKernel", str, str]] = {}
        self._machine_fingerprints: Dict[int, Tuple["MachineDescription", str]] = {}

    #: Entry cap for the fingerprint memos (they pin their objects alive).
    MAX_FINGERPRINT_MEMO = 4096

    def __len__(self) -> int:
        return len(self._entries)

    # -- keys ---------------------------------------------------------------

    def _fingerprints(
        self, kernel: "LoopKernel", machine: "MachineDescription"
    ) -> Tuple[str, str]:
        kernel_memo = self._kernel_fingerprints.get(id(kernel))
        if (
            kernel_memo is not None
            and kernel_memo[0] is kernel
            and kernel_memo[1] == kernel.source
        ):
            kernel_hash = kernel_memo[2]
        else:
            kernel_hash = kernel_fingerprint(kernel)
            if len(self._kernel_fingerprints) >= self.MAX_FINGERPRINT_MEMO:
                self._kernel_fingerprints.clear()
            self._kernel_fingerprints[id(kernel)] = (kernel, kernel.source, kernel_hash)
        machine_memo = self._machine_fingerprints.get(id(machine))
        if machine_memo is not None and machine_memo[0] is machine:
            machine_hash = machine_memo[1]
        else:
            machine_hash = machine_fingerprint(machine)
            if len(self._machine_fingerprints) >= self.MAX_FINGERPRINT_MEMO:
                self._machine_fingerprints.clear()
            self._machine_fingerprints[id(machine)] = (machine, machine_hash)
        return kernel_hash, machine_hash

    def key_for(
        self,
        kernel: "LoopKernel",
        machine: "MachineDescription",
        loop_index: int,
        vf=None,
        interleave: Optional[int] = None,
        default_symbol_value: int = 256,
        action: Optional[Tuple[int, ...]] = None,
        task: str = VECTORIZATION_TASK,
    ) -> RewardKey:
        """Build the cache key for one measurement.

        Either pass ``action=(...)`` (plus ``task=``) or the legacy
        ``vf, interleave`` pair, which is shorthand for the vectorization
        task's two-dimensional action.
        """
        kernel_hash, machine_hash = self._fingerprints(kernel, machine)
        if action is None and interleave is None and isinstance(vf, (tuple, list)):
            action, vf = tuple(vf), None
        return RewardKey(
            kernel_hash,
            machine_hash,
            int(loop_index),
            vf=vf,
            interleave=interleave,
            default_symbol_value=int(default_symbol_value),
            action=action,
            task=task,
        )

    # -- lookups ------------------------------------------------------------

    def get(self, key: RewardKey) -> Optional[CachedMeasurement]:
        """Stats-counting lookup."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return entry

    def peek(self, key: RewardKey) -> Optional[CachedMeasurement]:
        """Lookup without touching the hit/miss counters."""
        return self._entries.get(key)

    def put(self, key: RewardKey, measurement: CachedMeasurement) -> None:
        if key not in self._entries and self.max_entries is not None:
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        self._entries[key] = measurement

    def items(self) -> List[Tuple[RewardKey, CachedMeasurement]]:
        """Snapshot of every ``(key, measurement)`` entry, insertion-ordered.

        The shipping surface of the distributed apply fan-out: a worker
        runs an application against a fresh local cache and sends exactly
        these entries back to the parent.
        """
        return list(self._entries.items())

    def clear(self) -> None:
        self._entries.clear()
        self._kernel_fingerprints.clear()
        self._machine_fingerprints.clear()

    # -- measurement --------------------------------------------------------

    def _measure_cached(self, key: RewardKey, compute) -> Tuple[CachedMeasurement, bool]:
        """Shared lookup-or-compute step; returns (measurement, was_hit)."""
        entry = self.get(key)
        if entry is not None:
            return entry, True
        result = compute()
        entry = CachedMeasurement(
            cycles=result.cycles, compile_seconds=result.compile_seconds
        )
        self.put(key, entry)
        return entry, False

    def measure(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        loop_index: int,
        vf: int,
        interleave: int,
    ) -> Tuple[CachedMeasurement, bool]:
        """Cached ``measure_with_factors``; returns (measurement, was_hit).

        Legacy vectorization shorthand for :meth:`measure_action`.
        """
        key = self.key_for(
            kernel,
            pipeline.machine,
            loop_index,
            vf,
            interleave,
            default_symbol_value=pipeline.default_symbol_value,
        )
        return self._measure_cached(
            key,
            lambda: pipeline.measure_with_factors(
                kernel, {loop_index: (vf, interleave)}
            ),
        )

    def measure_action(
        self,
        pipeline: "CompileAndMeasure",
        task: "OptimizationTask",
        kernel: "LoopKernel",
        site_index: int,
        action: Tuple[int, ...],
    ) -> Tuple[CachedMeasurement, bool]:
        """Cached single-site evaluation of one task action."""
        action = task.cache_key(action)
        key = self.key_for(
            kernel,
            pipeline.machine,
            site_index,
            default_symbol_value=pipeline.default_symbol_value,
            action=action,
            task=task.name,
        )
        return self._measure_cached(
            key, lambda: task.evaluate(pipeline, kernel, site_index, action)
        )

    def measure_application(
        self,
        pipeline: "CompileAndMeasure",
        task: "OptimizationTask",
        kernel: "LoopKernel",
        decisions,
        compute,
    ) -> Tuple[CachedMeasurement, bool]:
        """Cached full-application measurement of one task decision map.

        ``compute`` runs the task's own transform-and-measure; the key
        flattens the whole ``{site: action}`` map (sorted by site) into the
        action tuple, so a repeat run applying identical decisions to an
        unchanged kernel is a lookup, not a simulation.
        """
        flattened: List[int] = []
        for site_index in sorted(decisions):
            flattened.append(int(site_index))
            flattened.extend(int(value) for value in decisions[site_index])
        key = self.key_for(
            kernel,
            pipeline.machine,
            WHOLE_FUNCTION_APPLICATION,
            default_symbol_value=pipeline.default_symbol_value,
            action=tuple(flattened),
            task=task.name,
        )
        return self._measure_cached(key, compute)

    def measure_baseline(
        self, pipeline: "CompileAndMeasure", kernel: "LoopKernel"
    ) -> Tuple[CachedMeasurement, bool]:
        """Cached whole-function baseline (``clang -O3``) measurement."""
        key = self.key_for(
            kernel,
            pipeline.machine,
            WHOLE_FUNCTION_BASELINE,
            default_symbol_value=pipeline.default_symbol_value,
            action=(0, 0),
            task=WHOLE_FUNCTION_TASK,
        )
        return self._measure_cached(key, lambda: pipeline.measure_baseline(kernel))

    def measure_pragmas(
        self,
        pipeline: "CompileAndMeasure",
        kernel: "LoopKernel",
        source: Optional[str] = None,
    ) -> Tuple[CachedMeasurement, bool]:
        """Cached whole-function measurement honouring in-source loop pragmas.

        ``source`` (the pragma-annotated rewrite of the kernel) is keyed as
        its own kernel content, so every distinct pragma assignment gets its
        own entry.
        """
        tagged = kernel if source is None else kernel.with_source(source)
        key = self.key_for(
            tagged,
            pipeline.machine,
            WHOLE_FUNCTION_PRAGMAS,
            default_symbol_value=pipeline.default_symbol_value,
            action=(0, 0),
            task=WHOLE_FUNCTION_TASK,
        )
        return self._measure_cached(
            key, lambda: pipeline.measure_with_pragmas(kernel, source=source)
        )


@dataclass
class _PendingRequest:
    key: RewardKey
    kernel: "LoopKernel"
    site_index: int
    action: Tuple[int, ...]


@dataclass
class BatchOutcome:
    """Per-request result of one :meth:`EvaluationBatcher.flush`."""

    measurement: CachedMeasurement
    was_cached: bool


def normalize_requests(requests) -> List[Tuple["LoopKernel", int, Tuple[int, ...]]]:
    """Normalise reward requests to ``(kernel, site_index, action)`` triples.

    Accepts both the legacy 4-tuple ``(kernel, loop_index, vf, interleave)``
    and the generic 3-tuple ``(kernel, site_index, action_tuple)``.
    """
    normalized = []
    for request in requests:
        if len(request) == 4:
            kernel, site_index, vf, interleave = request
            action: Tuple[int, ...] = (int(vf), int(interleave))
        elif len(request) == 3:
            kernel, site_index, action = request
            action = tuple(int(value) for value in action)
        else:
            raise ValueError(
                "reward requests are (kernel, site, action) or the legacy "
                f"(kernel, loop, vf, interleave); got a {len(request)}-tuple"
            )
        normalized.append((kernel, int(site_index), action))
    return normalized


class EvaluationBatcher:
    """Deduplicating batch front-end over a :class:`RewardCache`.

    ``add``/``add_action`` enqueue a request and return a ticket; ``flush``
    evaluates the unique cache misses (one pipeline call each, through the
    configured task), fills the cache, and returns outcomes indexed by
    ticket.  Duplicate requests within a batch cost one evaluation total and
    are counted in ``cache.stats.batch_deduplicated``.
    """

    def __init__(
        self,
        pipeline: "CompileAndMeasure",
        cache: RewardCache,
        task: Optional["OptimizationTask"] = None,
    ):
        self.pipeline = pipeline
        self.cache = cache
        self.task = task if task is not None else _resolve_default_task()
        self._pending: List[_PendingRequest] = []

    def __len__(self) -> int:
        return len(self._pending)

    def add(
        self, kernel: "LoopKernel", loop_index: int, vf: int, interleave: int
    ) -> int:
        """Legacy vectorization shorthand for :meth:`add_action`."""
        return self.add_action(kernel, loop_index, (int(vf), int(interleave)))

    def add_action(
        self, kernel: "LoopKernel", site_index: int, action: Tuple[int, ...]
    ) -> int:
        action = self.task.cache_key(action)
        key = self.cache.key_for(
            kernel,
            self.pipeline.machine,
            site_index,
            default_symbol_value=self.pipeline.default_symbol_value,
            action=action,
            task=self.task.name,
        )
        self._pending.append(_PendingRequest(key, kernel, int(site_index), action))
        return len(self._pending) - 1

    def flush(self) -> List[BatchOutcome]:
        pending, self._pending = self._pending, []
        first_seen: Dict[RewardKey, int] = {}
        outcomes: List[Optional[BatchOutcome]] = [None] * len(pending)
        for ticket, request in enumerate(pending):
            cached = self.cache.get(request.key)
            if cached is not None:
                outcomes[ticket] = BatchOutcome(cached, True)
                continue
            leader = first_seen.setdefault(request.key, ticket)
            if leader != ticket:
                # A duplicate of an earlier miss in this same batch: the
                # get() above already counted a miss, correct it to a dedup.
                self.cache.stats.misses -= 1
                self.cache.stats.batch_deduplicated += 1
                continue
        # Keep this pass's results in a local map too: a bounded cache may
        # evict them before the outcome loop reads them back.
        measured: Dict[RewardKey, CachedMeasurement] = {}
        for key, leader in first_seen.items():
            request = pending[leader]
            result = self.task.evaluate(
                self.pipeline, request.kernel, request.site_index, request.action
            )
            measurement = CachedMeasurement(
                cycles=result.cycles, compile_seconds=result.compile_seconds
            )
            measured[key] = measurement
            self.cache.put(key, measurement)
        for ticket, request in enumerate(pending):
            if outcomes[ticket] is None:
                outcomes[ticket] = BatchOutcome(
                    measured[request.key], first_seen.get(request.key) != ticket
                )
        return outcomes  # type: ignore[return-value]


def resolve_cache(
    reward_cache: Optional[RewardCache], evaluation_service=None
) -> RewardCache:
    """The run-wide cache for a consumer: the explicit one, else the
    attached service's, else a fresh private instance.  (``is None`` checks
    throughout — an empty cache is falsy via ``__len__``.)"""
    if reward_cache is not None:
        return reward_cache
    if evaluation_service is not None:
        return evaluation_service.cache
    return RewardCache()


def evaluate_requests(
    pipeline: "CompileAndMeasure",
    cache: RewardCache,
    requests,
    service=None,
    task: Optional["OptimizationTask"] = None,
) -> List[BatchOutcome]:
    """Route reward requests to the right evaluator: a
    :class:`repro.distributed.EvaluationService` when attached (sharded
    workers / persistent store), a plain :class:`EvaluationBatcher`
    otherwise.  The single front door every batched consumer shares.

    Requests are ``(kernel, site_index, action)`` triples or the legacy
    ``(kernel, loop_index, vf, interleave)`` 4-tuples; ``task`` defaults to
    the vectorization task.

    A service measuring under a different machine model (or writing to a
    different cache) than the caller would silently mix inconsistent
    measurements within one run, so that mismatch is rejected here."""
    if service is not None:
        if service.cache is not cache:
            raise ValueError(
                "evaluation service uses a different RewardCache than the "
                "caller; share one cache (e.g. pass service.cache)"
            )
        # A consumer may have no in-process pipeline at all (service-only
        # wiring) — then the service's pipeline is trivially authoritative.
        if pipeline is not None and service.pipeline is not pipeline and (
            service.pipeline.machine != pipeline.machine
            or service.pipeline.default_symbol_value != pipeline.default_symbol_value
        ):
            raise ValueError(
                "evaluation service pipeline disagrees with the caller's "
                "(machine model or default_symbol_value); build both from "
                "the same machine description"
            )
        return service.evaluate(requests, task=task)
    batcher = EvaluationBatcher(pipeline, cache, task=task)
    for kernel, site_index, action in normalize_requests(requests):
        batcher.add_action(kernel, site_index, action)
    return batcher.flush()
