"""The NeuroVectorizer facade: embedding + agent + task application + measure.

Since the task redesign the facade is generic over an
:class:`repro.tasks.OptimizationTask`: the task defines what is decided per
site and how a decision map is applied and measured.  Every public name
(:class:`NeuroVectorizer`, :class:`TrainingConfig`,
:class:`VectorizationDecision`, ...) keeps its pre-redesign behaviour when
the task is the default vectorization one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.reward_cache import RewardCache, resolve_cache
from repro.core.loop_extractor import ExtractedLoop, extract_loops
from repro.core.pipeline import CompilationResult, CompileAndMeasure
from repro.datasets.kernels import LoopKernel
from repro.embedding.ast_paths import PathContext, extract_path_contexts
from repro.embedding.code2vec import Code2VecConfig, Code2VecModel
from repro.embedding.vocab import build_vocabularies, normalize_identifiers
from repro.machine.description import MachineDescription
from repro.tasks import OptimizationTask, resolve_task


@dataclass
class VectorizationDecision:
    """The factors chosen for one innermost loop of a kernel."""

    function_name: str
    loop_index: int
    vf: int
    interleave: int
    source_line: int = 0

    def as_pragma(self) -> str:
        from repro.frontend.pragmas import LoopPragma, format_pragma

        return format_pragma(
            LoopPragma(vectorize_width=self.vf, interleave_count=self.interleave)
        )


@dataclass
class VectorizationResult:
    """Outcome of vectorizing one kernel end-to-end."""

    kernel_name: str
    decisions: List[VectorizationDecision]
    vectorized_source: str
    cycles: float
    baseline_cycles: float
    compile_seconds: float

    @property
    def speedup_over_baseline(self) -> float:
        return self.baseline_cycles / self.cycles if self.cycles > 0 else float("inf")

    @property
    def reward(self) -> float:
        """The paper's reward for this result (Equation 2)."""
        return (self.baseline_cycles - self.cycles) / max(self.baseline_cycles, 1e-9)


@dataclass
class OptimizationResult:
    """Task-generic outcome of optimizing one kernel end-to-end."""

    kernel_name: str
    task: str
    decisions: Dict[int, Tuple[int, ...]]
    cycles: float
    baseline_cycles: float
    compile_seconds: float
    transformed_source: Optional[str] = None
    description: str = ""

    @property
    def speedup_over_baseline(self) -> float:
        return self.baseline_cycles / self.cycles if self.cycles > 0 else float("inf")

    @property
    def reward(self) -> float:
        """The paper's reward for this result (Equation 2)."""
        return (self.baseline_cycles - self.cycles) / max(self.baseline_cycles, 1e-9)


@dataclass
class TrainingConfig:
    """End-to-end training settings for :meth:`NeuroVectorizer.train`."""

    embedding: Code2VecConfig = field(default_factory=Code2VecConfig)
    pretrain_epochs: int = 1
    pretrain_samples: int = 200
    rl_total_steps: int = 2000
    rl_batch_size: int = 200
    learning_rate: float = 5e-5
    hidden_sizes: Tuple[int, ...] = (64, 64)
    policy: str = "discrete"
    seed: int = 0
    #: The registered optimization task this run trains for.  The default
    #: keeps the paper's (VF, IF) vectorization decision; ``"polly-tiling"``
    #: trains per-nest tile-size/fusion decisions instead.  This is the
    #: single-task compatibility shim: it is ignored when ``tasks`` is set.
    task: str = "vectorization"
    #: Multi-task joint training: the tasks one shared-trunk policy with
    #: task-conditioned head banks trains over (supersedes ``task``).
    #: Entries are registered task names or task *objects* — the latter
    #: keeps unregistered custom-task plug-ins trainable jointly, exactly
    #: as the single-task ``task=`` shim accepts them.  ``None`` means
    #: single-task training on ``task``.
    tasks: Optional[Sequence] = None
    #: Multi-task head architecture handed to ``make_policy``:
    #: ``"embedding"`` (task-embedding-conditioned shared head stacks),
    #: ``"banks"`` (the legacy per-task head banks), or ``None`` — the
    #: default — which picks "embedding" for joint runs (two or more
    #: tasks) and "banks" for single-task runs, keeping the latter
    #: byte-identical to the pre-conditioning wiring.
    conditioning: Optional[str] = None
    #: Per-task advantage normalization (running mean/std per task id),
    #: forwarded to :class:`repro.rl.ppo.PPOConfig`.  ``None`` enables it
    #: exactly for joint batches; ``True``/``False`` force it.
    per_task_advantage_norm: Optional[bool] = None
    #: Transfer protocol: a task name excluded from joint training and
    #: recorded on the framework, so a later
    #: :meth:`NeuroVectorizer.fine_tune` can train just that task's
    #: embedding row and head with the trunk frozen.  Must name one of the
    #: configured ``tasks`` (and leave at least one task to train).
    holdout_task: Optional[str] = None
    #: Held-out kernels excluded from *every* training stage (embedding
    #: vocabularies, pretraining, PPO rollouts): either a fraction in
    #: (0, 1) — split seed-stably by kernel name via
    #: :func:`repro.evaluation.splits.split_kernels` under this config's
    #: ``seed`` — or an explicit sequence of kernel names.  The resulting
    #: :class:`repro.evaluation.splits.KernelSplit` is recorded on the
    #: framework for ``compare_all_tasks(kernel_split=True)``.
    holdout_kernels: Optional[object] = None
    #: Evaluation-service settings: worker processes for sharded reward
    #: evaluation (0 = serial in-process) and the directory of the
    #: persistent cross-run reward store (None = memory only).
    workers: int = 0
    cache_dir: Optional[str] = None
    #: Fleet evaluation: ``host:port`` addresses of running
    #: :class:`repro.fleet.FleetWorker` daemons.  When set (and at least
    #: one is reachable) reward evaluation shards across those hosts
    #: instead of local worker processes; ``workers`` becomes the local
    #: fallback pool used if none answer.  ``fleet_prefetch_top_k`` is the
    #: number of most-likely next actions speculatively evaluated per
    #: upcoming sample while the trainer is busy inferring (0 disables
    #: prefetch).
    fleet_workers: Sequence[str] = ()
    fleet_prefetch_top_k: int = 8
    #: Store-compaction policy applied by ``NeuroVectorizer.close()``: when
    #: enabled and the cache directory holds at least ``compact_min_segments``
    #: segment files (optionally also at least ``compact_min_bytes`` in
    #: total), the segments are merged into one.  Enable only when the
    #: directory is private to this run — compaction is offline maintenance.
    compact_on_close: bool = False
    compact_min_segments: int = 2
    compact_min_bytes: Optional[int] = None

    def resolved_tasks(self) -> Tuple[OptimizationTask, ...]:
        """The task objects this config trains (``tasks``, else ``(task,)``).

        Entries may be registered names or task instances (so unregistered
        custom tasks train jointly too); duplicates by resolved name are
        rejected.
        """
        from repro.tasks import resolve_tasks

        entries = tuple(self.tasks) if self.tasks else (self.task,)
        return tuple(resolve_tasks(entries))


@dataclass
class TrainingArtifacts:
    """Everything produced by a training run besides the framework itself."""

    history: object = None
    pretrain_result: object = None
    samples: List[object] = field(default_factory=list)
    #: Joint training: the environment samples per task name (for a
    #: single-task run, one entry equal to ``samples``).
    samples_by_task: Dict[str, List[object]] = field(default_factory=dict)


def build_embedding_model(
    kernels: Sequence[LoopKernel],
    config: Optional[Code2VecConfig] = None,
) -> Code2VecModel:
    """Build token/path vocabularies from a corpus and create the model."""
    bags: List[List[PathContext]] = []
    for kernel in kernels:
        try:
            loops = extract_loops(kernel.source, function_name=kernel.function_name)
        except Exception:
            continue
        for loop in loops:
            rename_map = normalize_identifiers(loop.nest_root)
            bags.append(extract_path_contexts(loop.nest_root, rename_map=rename_map))
    token_vocab, path_vocab = build_vocabularies(bags)
    return Code2VecModel(token_vocab, path_vocab, config or Code2VecConfig())


def compare_agents(
    kernels: Sequence[LoopKernel],
    agents=None,
    task=None,
    machine: Optional[MachineDescription] = None,
    pipeline: Optional[CompileAndMeasure] = None,
    embedding_model: Optional[Code2VecModel] = None,
    reward_cache: Optional[RewardCache] = None,
    evaluation_service=None,
    seed: int = 0,
):
    """Agents x kernels x task → the paper's speedup-over-baseline matrix.

    The task-generic front door to :class:`repro.evaluation.comparison.
    ComparisonRunner`: every registered task (vectorization, Polly tiling,
    unrolling, user plug-ins) produces the same Figure 7/8/9-style
    :class:`TaskComparison` — per-kernel speedups, per-site decision logs,
    and cache-traffic accounting.  ``agents`` is a name → agent mapping;
    when omitted the training-free baseline/random/brute-force trio runs.
    All measurements share ``reward_cache`` (or the ``evaluation_service``'s
    cache), so a warm persistent store makes a rerun simulate nothing.
    """
    from repro.evaluation.comparison import ComparisonRunner

    runner = ComparisonRunner(
        task=task,
        pipeline=pipeline,
        machine=machine,
        embedding_model=embedding_model,
        reward_cache=reward_cache,
        evaluation_service=evaluation_service,
    )
    return runner.run(agents or runner.default_agents(seed=seed), kernels)


class NeuroVectorizer:
    """End-to-end automatic loop optimization (Figure 3 of the paper).

    ``agent`` is any :class:`repro.agents.base.VectorizationAgent`; the
    default is the trained RL policy, but NNS, decision trees, random search,
    brute force or the compiler baseline slot in identically (§3.5).
    ``task`` selects what is being decided per site (vectorization factors
    by default, Polly tile/fusion choices with ``"polly-tiling"``).
    """

    def __init__(
        self,
        embedding_model: Code2VecModel,
        agent,
        pipeline: Optional[CompileAndMeasure] = None,
        machine: Optional[MachineDescription] = None,
        reward_cache: Optional[RewardCache] = None,
        evaluation_service=None,
        task: Optional[OptimizationTask] = None,
        compaction=None,
        tasks: Optional[Sequence] = None,
        kernel_split=None,
        training_kernel_names: Optional[Sequence[str]] = None,
        holdout_task: Optional[str] = None,
    ):
        self.machine = machine or MachineDescription()
        self.pipeline = pipeline or CompileAndMeasure(machine=self.machine)
        self.embedding_model = embedding_model
        self.agent = agent
        # ``tasks`` is the joint-training surface: every task the (shared)
        # agent was trained for.  ``self.task`` stays the primary task every
        # single-task method defaults to, so the pre-joint API is the
        # one-task special case.
        if tasks:
            from repro.tasks import resolve_tasks

            self.tasks = resolve_tasks(tasks)
            names = [entry.name for entry in self.tasks]
            if task is not None and resolve_task(task).name not in names:
                raise ValueError(
                    f"primary task {resolve_task(task).name!r} is not among "
                    f"tasks={names}"
                )
            primary = resolve_task(task).name if task is not None else names[0]
            self.task = next(t for t in self.tasks if t.name == primary)
        else:
            self.task = resolve_task(task)
            self.tasks = [self.task]
        # A task-aware agent deciding for a different task would feed its
        # actions straight into this task's apply/cache path — both tasks
        # may share an action arity, so the mix-up would be silent garbage
        # (VF/IF applied as tile/fuse).  Fail loudly instead.
        agent_task = getattr(agent, "task", None)
        if agent_task is not None and agent_task.name not in {
            t.name for t in self.tasks
        }:
            raise ValueError(
                f"agent decides for task {agent_task.name!r} but the "
                f"framework runs task(s) {[t.name for t in self.tasks]}; "
                f"construct the agent with one of those tasks"
            )
        # An optional repro.distributed.EvaluationService owning the run's
        # worker pool; its cache is adopted as the run-wide cache unless one
        # was passed explicitly.  close() shuts the service (and any
        # disk-backed store) down.
        self.evaluation_service = evaluation_service
        # The run-wide measurement cache: shared with the training env and
        # any cache-aware agent so every consumer sees each other's work.
        self.reward_cache = resolve_cache(reward_cache, evaluation_service)
        # Optional repro.distributed.CompactionPolicy consulted by close().
        self.compaction = compaction
        # Transfer-protocol provenance, recorded by train(): the train/test
        # kernel split (when holdout_kernels was set), the names of the
        # kernels the policy actually trained on (for leakage checks in
        # compare_all_tasks), and the task held out for fine_tune().
        self.kernel_split = kernel_split
        self.training_kernel_names = (
            tuple(str(name) for name in training_kernel_names)
            if training_kernel_names is not None
            else None
        )
        self.holdout_task = holdout_task

    # -- service lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut down the evaluation service and flush/close the disk store.

        With a :class:`repro.distributed.CompactionPolicy` attached (see
        ``TrainingConfig.compact_on_close``), a fragmented persistent store
        is compacted into a single segment first — this process is the last
        writer at close time, which is exactly when compaction is safe for a
        run-private cache directory.
        """
        if self.evaluation_service is not None:
            self.evaluation_service.close()
        store = getattr(self.reward_cache, "store", None)
        if (
            store is not None
            and self.compaction is not None
            and self.compaction.should_compact(store)
        ):
            store.compact()
        closer = getattr(self.reward_cache, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "NeuroVectorizer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- statistics -------------------------------------------------------------------

    def cache_stats_report(self, title: str = "reward cache"):
        """Hit/miss statistics of the shared reward cache as a text table.

        Before any evaluation has run the report says so explicitly instead
        of rendering an all-zero table (or worse, dividing by zero).
        """
        from repro.evaluation.report import (
            format_cache_stats_table,
            format_no_evaluations_table,
        )
        from repro.frontend.cache import frontend_cache

        stats = self.reward_cache.stats
        if stats.lookups == 0 and stats.batch_deduplicated == 0:
            return format_no_evaluations_table(title=title)
        service_stats = getattr(self.evaluation_service, "stats", None)
        return format_cache_stats_table(
            stats,
            title=title,
            simulator_memo=self.pipeline.simulator_memo_stats(),
            frontend=frontend_cache().stats.as_dict(),
            # A fleet service's stats carry the speculative-prefetch
            # ledger; split those hits out from demand-earned ones.
            fleet=(
                service_stats
                if hasattr(service_stats, "prefetch_issued")
                else None
            ),
        )

    def service_stats_report(self, title: str = "evaluation service"):
        """Per-worker dispatch statistics of the evaluation service.

        Returns ``None`` when no service is attached; includes persistent
        store statistics when the cache is disk-backed.  A fleet-backed
        service renders the fleet table (robustness + prefetch counters)
        instead of the local-service one.
        """
        from repro.evaluation.report import (
            format_fleet_stats_table,
            format_service_stats_table,
        )

        if self.evaluation_service is None:
            return None
        store = getattr(self.reward_cache, "store", None)
        formatter = (
            format_fleet_stats_table
            if hasattr(self.evaluation_service.stats, "prefetch_issued")
            else format_service_stats_table
        )
        if formatter is format_fleet_stats_table and title == "evaluation service":
            title = "fleet evaluation"
        return formatter(
            self.evaluation_service.stats,
            store_stats=store.stats if store is not None else None,
            preloaded=getattr(self.reward_cache, "preloaded", 0),
            title=title,
        )

    # -- observation -----------------------------------------------------------------

    def observe_loop(self, loop: ExtractedLoop) -> np.ndarray:
        """The embedding the agent sees for one extracted loop."""
        rename_map = normalize_identifiers(loop.nest_root)
        contexts = extract_path_contexts(loop.nest_root, rename_map=rename_map)
        return self.embedding_model.embed(contexts)

    # -- task routing -----------------------------------------------------------------

    def _member_task(self, task=None) -> OptimizationTask:
        """Resolve ``task`` to one of this framework's trained tasks."""
        if task is None:
            return self.task
        resolved = resolve_task(task)
        for candidate in self.tasks:
            if candidate.name == resolved.name:
                return candidate
        raise ValueError(
            f"this framework was trained for task(s) "
            f"{[t.name for t in self.tasks]}, not {resolved.name!r}"
        )

    def _agent_for_task(self, task: OptimizationTask):
        """The framework agent pinned to ``task``.

        A task-selecting agent (a :class:`repro.agents.policy_agent.
        PolicyAgent` over a jointly-trained policy) is re-pinned via its
        ``for_task``; other agents must already decide for the task.
        """
        agent_task = getattr(self.agent, "task", None)
        if agent_task is not None and agent_task.name == task.name:
            return self.agent
        for_task = getattr(self.agent, "for_task", None)
        if for_task is not None:
            return for_task(task)
        if agent_task is not None:
            raise ValueError(
                f"agent decides for task {agent_task.name!r}, not "
                f"{task.name!r}, and cannot be re-pinned"
            )
        return self.agent

    # -- decision making -----------------------------------------------------------------

    def decide_sites(self, kernel: LoopKernel, task=None) -> Dict[int, Tuple[int, ...]]:
        """Run the agent on every decision site; returns site → action.

        ``task`` selects one of a jointly-trained framework's tasks (the
        primary task by default) — the agent decides with that task's head
        bank and the actions are validated against that task's menus.
        """
        task = self._member_task(task)
        agent = self._agent_for_task(task)
        decisions: Dict[int, Tuple[int, ...]] = {}
        for site in task.decision_sites(kernel):
            observation = task.observation_features(site, self.embedding_model)
            chosen = agent.select_factors(
                observation, kernel=kernel, loop_index=site.index
            )
            decisions[site.index] = task.cache_key(chosen.as_tuple())
        return decisions

    def decide_kernel(self, kernel: LoopKernel) -> List[VectorizationDecision]:
        """Run the agent on every innermost loop of a kernel.

        Vectorization-task API: returns the legacy per-loop (VF, IF)
        records.  Use :meth:`decide_sites` for task-generic decisions.
        """
        self._require_vectorization("decide_kernel")
        # Route through the task-pinned agent: on a jointly-trained
        # framework the raw PolicyAgent has no task and a multi-bank
        # policy would refuse to act without one.
        agent = self._agent_for_task(self.task)
        loops = extract_loops(kernel.source, function_name=kernel.function_name)
        decisions: List[VectorizationDecision] = []
        for loop in loops:
            observation = self.observe_loop(loop)
            chosen = agent.select_factors(
                observation, kernel=kernel, loop_index=loop.loop_index
            )
            decisions.append(
                VectorizationDecision(
                    function_name=loop.function_name,
                    loop_index=loop.loop_index,
                    vf=chosen.vf,
                    interleave=chosen.interleave,
                    source_line=loop.source_line,
                )
            )
        return decisions

    def _require_vectorization(self, method: str) -> None:
        if self.task.name != "vectorization":
            raise ValueError(
                f"{method}() is the vectorization-task API but this framework "
                f"runs task {self.task.name!r}; use optimize_kernel()/"
                f"optimize_suite() instead"
            )

    # -- end-to-end optimization -----------------------------------------------------------

    def optimize_kernel(self, kernel: LoopKernel, task=None) -> OptimizationResult:
        """Decide every site, apply the task's transform, and measure.

        The task-generic end-to-end path: works for every registered task
        (for vectorization it injects pragmas, for Polly tiling it rewrites
        the IR).  ``task`` selects one of a jointly-trained framework's
        tasks.  Both the baseline and the applied measurement go through
        the run's reward cache, so with a disk-backed cache a repeat run
        over the same kernels and decisions simulates nothing.
        """
        task = self._member_task(task)
        decisions = self.decide_sites(kernel, task=task)
        baseline, _ = self.reward_cache.measure_baseline(self.pipeline, kernel)
        application = task.apply(
            self.pipeline, kernel, decisions, reward_cache=self.reward_cache
        )
        return OptimizationResult(
            kernel_name=kernel.name,
            task=task.name,
            decisions=application.decisions,
            cycles=application.result.cycles,
            baseline_cycles=baseline.cycles,
            compile_seconds=application.result.compile_seconds,
            transformed_source=application.transformed_source,
            description=application.description,
        )

    def optimize_suite(
        self, kernels: Sequence[LoopKernel], task=None
    ) -> List[OptimizationResult]:
        return [self.optimize_kernel(kernel, task=task) for kernel in kernels]

    def compare_agents(
        self, kernels: Sequence[LoopKernel], agents=None, seed: int = 0, task=None
    ):
        """Compare this framework's agent against the reference agents.

        Runs :func:`compare_agents` under one of this framework's tasks
        (``task=None`` selects the primary one), with this framework's
        pipeline, reward cache, evaluation service and embedding model; the
        trained agent — pinned to that task's head bank when it is a
        jointly-trained policy — joins the default baseline/random/
        brute-force trio under its own name (``"rl"`` for a trained
        policy) unless an explicit ``agents`` mapping replaces the line-up.
        """
        from repro.evaluation.comparison import ComparisonRunner

        task = self._member_task(task)
        runner = ComparisonRunner(
            task=task,
            pipeline=self.pipeline,
            embedding_model=self.embedding_model,
            reward_cache=self.reward_cache,
            evaluation_service=self.evaluation_service,
        )
        if agents is None:
            agent = self._agent_for_task(task)
            agents = runner.default_agents(seed=seed)
            agents[getattr(agent, "name", "agent")] = agent
        return runner.run(agents, kernels)

    @staticmethod
    def _repin_agents(agents, task):
        """Re-pin an explicit agents mapping to one task (``for_task``)."""
        from collections import OrderedDict

        if agents is None:
            return None
        return OrderedDict(
            (
                name,
                agent.for_task(task) if hasattr(agent, "for_task") else agent,
            )
            for name, agent in agents.items()
        )

    def _resolve_kernel_split(self, kernel_split, kernels, seed: int):
        """Coerce a ``kernel_split`` argument to a :class:`KernelSplit`."""
        from repro.evaluation.splits import KernelSplit, split_kernels

        if kernel_split is True:
            if self.kernel_split is None:
                raise ValueError(
                    "compare_all_tasks(kernel_split=True) replays the "
                    "training run's split, but this framework was trained "
                    "without TrainingConfig(holdout_kernels=...) and "
                    "recorded none; pass a fraction or a KernelSplit"
                )
            return self.kernel_split
        if isinstance(kernel_split, KernelSplit):
            return kernel_split
        if isinstance(kernel_split, (int, float)) and not isinstance(
            kernel_split, bool
        ):
            return split_kernels(
                kernels, test_fraction=float(kernel_split), seed=seed
            )
        raise ValueError(
            "kernel_split must be True (replay the training split), a "
            f"test fraction, or a KernelSplit; got {kernel_split!r}"
        )

    def compare_all_tasks(
        self,
        kernels: Sequence[LoopKernel],
        agents=None,
        seed: int = 0,
        kernel_split=None,
    ):
        """One :meth:`compare_agents` table per trained task.

        The joint-training acceptance view: a single shared-trunk policy
        evaluated separately on every task it was trained on.  Agents in
        an explicit ``agents`` mapping that can re-pin themselves
        (``for_task``) are re-pinned per table, so one task-pinned
        ``PolicyAgent`` serves every task's line-up.  Returns an ordered
        ``task name -> TaskComparison`` mapping.

        ``kernel_split`` turns the run into a held-out-kernel
        generalization matrix instead: ``True`` replays the training run's
        recorded split (``TrainingConfig(holdout_kernels=...)``), a float
        computes a fresh seed-stable split of ``kernels``, and an explicit
        :class:`repro.evaluation.splits.KernelSplit` is used as-is.  Each
        task is compared twice — on the training-side kernels and on the
        held-out ones — and the result is a
        :class:`repro.evaluation.comparison.GeneralizationMatrix`.  A
        split whose test side overlaps the kernels this framework trained
        on is rejected: that table would present memorization as
        transfer.
        """
        from collections import OrderedDict

        if kernel_split is None:
            results = OrderedDict()
            for task in self.tasks:
                results[task.name] = self.compare_agents(
                    kernels,
                    agents=self._repin_agents(agents, task),
                    seed=seed,
                    task=task,
                )
            return results

        from repro.evaluation.comparison import (
            GeneralizationMatrix,
            SplitComparison,
        )

        split = self._resolve_kernel_split(kernel_split, kernels, seed)
        if self.training_kernel_names is not None:
            split.assert_no_leakage(self.training_kernel_names)
        train_kernels, test_kernels = split.partition(kernels)
        entries = OrderedDict()
        for task in self.tasks:
            task_agents = self._repin_agents(agents, task)
            entries[task.name] = SplitComparison(
                task=task.name,
                split=split,
                train=self.compare_agents(
                    train_kernels, agents=task_agents, seed=seed, task=task
                ),
                test=self.compare_agents(
                    test_kernels, agents=task_agents, seed=seed, task=task
                ),
            )
        return GeneralizationMatrix(split=split, tasks=entries)

    def fine_tune(
        self,
        kernels: Sequence[LoopKernel],
        task=None,
        total_steps: int = 200,
        batch_size: Optional[int] = None,
        learning_rate: float = 5e-5,
        seed: int = 0,
    ):
        """Transfer the trained policy to a new task, trunk frozen.

        The paper's generalization recipe operationalized: the shared
        trunk (and every already-trained task's embedding row) keeps its
        exact bytes while PPO trains only ``task``'s embedding row and
        head stack on ``kernels``.  ``task`` defaults to the
        ``TrainingConfig(holdout_task=...)`` recorded at training time.
        An unseen task gets its embedding row seeded from the policy's
        trainable new-task prior (``add_task``); afterwards the task
        joins this framework's ``tasks`` so ``optimize_kernel`` /
        ``compare_all_tasks`` cover it.  Returns the fine-tune
        :class:`repro.rl.ppo.TrainingHistory`.

        Requires an embedding-conditioned policy — a head-bank policy has
        no shared decision function to transfer, so train with
        ``TrainingConfig(conditioning="embedding")`` (the joint-run
        default) first.
        """
        from repro.rl.env import MultiTaskEnv, build_samples
        from repro.rl.ppo import PPOConfig, PPOTrainer

        if task is None:
            if self.holdout_task is None:
                raise ValueError(
                    "fine_tune() needs a task: pass task=<name> or train "
                    "with TrainingConfig(holdout_task=...)"
                )
            task = self.holdout_task
        target = resolve_task(task)
        policy = getattr(self.agent, "policy", None)
        if policy is None or not hasattr(policy, "transfer_parameters"):
            raise ValueError(
                "fine_tune() transfers an embedding-conditioned policy "
                "(repro.rl.policy.ConditionedPolicy); this framework's "
                f"agent holds {type(policy).__name__ if policy is not None else 'no policy'} — "
                "train with TrainingConfig(conditioning='embedding')"
            )
        if target.name not in policy.task_names:
            policy.add_task(target.name, target.action_space(policy.policy_kind))
        samples = build_samples(
            kernels, self.embedding_model, self.pipeline, task=target
        )
        env = MultiTaskEnv(
            [target],
            {target.name: samples},
            pipeline=self.pipeline,
            seed=seed,
            reward_cache=self.reward_cache,
            evaluation_service=self.evaluation_service,
        )
        trainer = PPOTrainer(
            env,
            policy,
            PPOConfig(
                learning_rate=learning_rate,
                train_batch_size=batch_size or min(total_steps, 200),
            ),
            trainable_parameters=policy.transfer_parameters(target.name),
        )
        history = trainer.train(total_steps, batch_size=batch_size)
        if target.name not in {member.name for member in self.tasks}:
            self.tasks = list(self.tasks) + [target]
        return history

    def vectorize_kernel(self, kernel: LoopKernel) -> VectorizationResult:
        """Decide factors, inject pragmas, compile and measure one kernel.

        Both whole-function measurements go through the run's reward cache
        (keyed by the effective source text), so with a disk-backed cache a
        repeat run over the same kernels compiles nothing at all.
        """
        self._require_vectorization("vectorize_kernel")
        decisions = self.decide_kernel(kernel)
        factor_map = {d.loop_index: (d.vf, d.interleave) for d in decisions}
        baseline, _ = self.reward_cache.measure_baseline(self.pipeline, kernel)
        application = self.task.apply(
            self.pipeline, kernel, factor_map, reward_cache=self.reward_cache
        )
        return VectorizationResult(
            kernel_name=kernel.name,
            decisions=decisions,
            vectorized_source=application.transformed_source,
            cycles=application.result.cycles,
            baseline_cycles=baseline.cycles,
            compile_seconds=application.result.compile_seconds,
        )

    def vectorize_source(
        self, source: str, function_name: Optional[str] = None, name: str = "user_kernel"
    ) -> VectorizationResult:
        """Vectorize raw C source text (the quickstart entry point)."""
        if function_name is None:
            loops = extract_loops(source)
            if not loops:
                raise ValueError("no loops found in the given source")
            function_name = loops[0].function_name
        kernel = LoopKernel(
            name=name, source=source, function_name=function_name, suite="user"
        )
        return self.vectorize_kernel(kernel)

    def vectorize_suite(self, kernels: Sequence[LoopKernel]) -> List[VectorizationResult]:
        return [self.vectorize_kernel(kernel) for kernel in kernels]

    # -- constructors ---------------------------------------------------------------------

    @classmethod
    def default(cls, machine: Optional[MachineDescription] = None) -> "NeuroVectorizer":
        """A ready-to-use framework that defers to the compiler's cost model.

        Useful for exploring the pipeline without training; swap in a trained
        agent (or call :meth:`train`) for the paper's results.
        """
        from repro.agents.baseline import BaselineAgent
        from repro.datasets.synthetic import SyntheticDatasetConfig, generate_synthetic_dataset

        machine = machine or MachineDescription()
        pipeline = CompileAndMeasure(machine=machine)
        corpus = generate_synthetic_dataset(SyntheticDatasetConfig(count=50, seed=0))
        embedding_model = build_embedding_model(list(corpus))
        return cls(embedding_model, BaselineAgent(pipeline), pipeline, machine)

    @classmethod
    def train(
        cls,
        train_kernels: Sequence[LoopKernel],
        config: Optional[TrainingConfig] = None,
        machine: Optional[MachineDescription] = None,
    ) -> Tuple["NeuroVectorizer", TrainingArtifacts]:
        """Train the full stack: embedding pretraining, then PPO.

        ``config.task`` selects the optimization task being learned — or
        ``config.tasks`` a *list* of tasks to train jointly: one shared-
        trunk :class:`repro.rl.policy.MultiTaskPolicy` whose task-
        conditioned head banks learn every listed task at once from an
        interleaved :class:`repro.rl.env.MultiTaskEnv`, rewards sharded
        per task through the run's cache/store/service.  Single-task
        training is the one-task special case of the same loop.  Returns
        the framework (with a :class:`PolicyAgent`) and the training
        artifacts (loss/reward curves — per task for joint runs —
        pretraining metrics, the environment samples) so callers can plot
        Figure-5-style curves.
        """
        from collections import OrderedDict as _OrderedDict

        from repro.agents.policy_agent import PolicyAgent
        from repro.analysis.loopinfo import analyze_loop
        from repro.embedding.pretrain import Code2VecPretrainer, loop_property_labels
        from repro.rl.env import MultiTaskEnv, build_samples
        from repro.rl.policy import make_policy
        from repro.rl.ppo import PPOConfig, PPOTrainer

        config = config or TrainingConfig()
        tasks = list(config.resolved_tasks())

        # Transfer protocol, part 1: a held-out *task* is excluded from
        # joint training entirely; fine_tune() later grows the policy a
        # fresh embedding row + head for it with the trunk frozen.
        holdout_task_name: Optional[str] = None
        if config.holdout_task is not None:
            holdout_task_name = resolve_task(config.holdout_task).name
            remaining = [
                member for member in tasks if member.name != holdout_task_name
            ]
            if len(remaining) == len(tasks):
                raise ValueError(
                    f"holdout_task {holdout_task_name!r} is not among the "
                    f"configured tasks {[member.name for member in tasks]}"
                )
            if not remaining:
                raise ValueError(
                    f"holdout_task {holdout_task_name!r} would leave no "
                    "tasks to train on; configure at least two tasks"
                )
            tasks = remaining

        # Transfer protocol, part 2: held-out *kernels* never reach the
        # embedding build, pretraining, or PPO sampling; compare_all_tasks
        # (kernel_split=True) replays the recorded split as the
        # generalization matrix's train/test rows.
        kernel_split = None
        training_kernels = list(train_kernels)
        if config.holdout_kernels is not None:
            from repro.evaluation.splits import KernelSplit, split_kernels

            holdout = config.holdout_kernels
            if isinstance(holdout, KernelSplit):
                kernel_split = holdout
            elif isinstance(holdout, (int, float)) and not isinstance(
                holdout, bool
            ):
                kernel_split = split_kernels(
                    training_kernels,
                    test_fraction=float(holdout),
                    seed=config.seed,
                )
            else:
                kernel_split = KernelSplit.from_holdout(
                    training_kernels, holdout, seed=config.seed
                )
            training_kernels, _ = kernel_split.partition(training_kernels)

        task = tasks[0]
        machine = machine or MachineDescription()
        pipeline = CompileAndMeasure(machine=machine)

        # Evaluation service: persistent store and/or worker pool per config.
        evaluation_service = None
        compaction = None
        if config.cache_dir:
            from repro.distributed.store import CompactionPolicy, DiskBackedRewardCache

            reward_cache: RewardCache = DiskBackedRewardCache.open(config.cache_dir)
            compaction = CompactionPolicy(
                enabled=config.compact_on_close,
                min_segments=config.compact_min_segments,
                min_total_bytes=config.compact_min_bytes,
            )
        else:
            reward_cache = RewardCache()
        if config.fleet_workers:
            from repro.fleet import FleetEvaluationService

            # Shard reward evaluation across remote fleet workers; when
            # none of the addresses answer this degrades to a local
            # EvaluationService with ``config.workers`` processes.
            evaluation_service = FleetEvaluationService.connect(
                pipeline,
                reward_cache,
                addresses=list(config.fleet_workers),
                fallback_workers=config.workers,
                prefetch_top_k=config.fleet_prefetch_top_k,
            )
        elif config.workers > 0:
            from repro.distributed.service import EvaluationService

            evaluation_service = EvaluationService(
                pipeline, reward_cache, workers=config.workers
            )
        # From here on the service/store own live resources (worker
        # processes, an open segment file); if any training stage raises
        # before the framework that owns close() exists, release them.
        try:
            embedding_model = build_embedding_model(
                training_kernels, config.embedding
            )

            # --- stage 1: self-supervised pretraining of the embedding -----------
            # Task-agnostic: the embedding predicts loop properties, which
            # is useful context whatever is decided per site.
            bags: List[List[PathContext]] = []
            labels = []
            for kernel in training_kernels[: config.pretrain_samples]:
                try:
                    loops = extract_loops(
                        kernel.source, function_name=kernel.function_name
                    )
                    ir_function = pipeline.lower_kernel(kernel)
                    ir_loops = ir_function.innermost_loops()
                except Exception:
                    continue
                for loop in loops:
                    if loop.loop_index >= len(ir_loops):
                        continue
                    rename_map = normalize_identifiers(loop.nest_root)
                    bags.append(
                        extract_path_contexts(loop.nest_root, rename_map=rename_map)
                    )
                    labels.append(
                        loop_property_labels(
                            analyze_loop(ir_function, ir_loops[loop.loop_index])
                        )
                    )
            pretrainer = Code2VecPretrainer(embedding_model, seed=config.seed)
            pretrain_result = None
            if bags and config.pretrain_epochs > 0:
                pretrain_result = pretrainer.train(
                    bags, labels, epochs=config.pretrain_epochs
                )

            # --- stage 2: PPO over the frozen embedding ---------------------------
            # The joint loop: one environment interleaving every task's
            # decision sites, one policy with a head bank per task.  A
            # single task is the one-lane/one-bank special case, identical
            # to pre-joint single-task training.
            samples_by_task: Dict[str, List[object]] = _OrderedDict()
            for member in tasks:
                samples_by_task[member.name] = build_samples(
                    training_kernels, embedding_model, pipeline, task=member
                )
            env = MultiTaskEnv(
                tasks,
                samples_by_task,
                pipeline=pipeline,
                seed=config.seed,
                reward_cache=reward_cache,
                evaluation_service=evaluation_service,
            )
            policy = make_policy(
                config.policy,
                env.observation_dim,
                hidden_sizes=config.hidden_sizes,
                seed=config.seed,
                spaces=_OrderedDict(
                    (member.name, member.action_space(config.policy))
                    for member in tasks
                ),
                conditioning=config.conditioning,
            )
            ppo_config = PPOConfig(
                learning_rate=config.learning_rate,
                train_batch_size=config.rl_batch_size,
                per_task_advantage_norm=config.per_task_advantage_norm,
            )
            trainer = PPOTrainer(env, policy, ppo_config)
            history = trainer.train(
                config.rl_total_steps, batch_size=config.rl_batch_size
            )
        except BaseException:
            if evaluation_service is not None:
                evaluation_service.close()
            closer = getattr(reward_cache, "close", None)
            if closer is not None:
                closer()
            raise

        framework = cls(
            embedding_model,
            # Pinned to the primary task; per-task surfaces re-pin it via
            # _agent_for_task / PolicyAgent.for_task.
            PolicyAgent(policy, task=task),
            pipeline,
            machine,
            reward_cache,
            evaluation_service=evaluation_service,
            task=task,
            compaction=compaction,
            tasks=tasks,
            kernel_split=kernel_split,
            training_kernel_names=[kernel.name for kernel in training_kernels],
            holdout_task=holdout_task_name,
        )
        artifacts = TrainingArtifacts(
            history=history,
            pretrain_result=pretrain_result,
            samples=samples_by_task[task.name],
            samples_by_task=dict(samples_by_task),
        )
        return framework, artifacts
