"""Compile-and-measure pipeline (the stand-in for "clang + run + time")."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.datasets.kernels import LoopKernel
from repro.frontend.cache import frontend_cache
from repro.ir.lowering import LoweringContext, lower_function
from repro.ir.nodes import IRFunction
from repro.machine.description import MachineDescription
from repro.simulator.compile_time import estimate_compile_time
from repro.simulator.cost import memo_stats as cost_memo_stats
from repro.simulator.engine import FunctionCost, Simulator
from repro.vectorizer.cost_model import BaselineCostModel
from repro.vectorizer.planner import (
    FunctionVectorPlan,
    build_plan,
    factors_from_pragma,
)


@dataclass
class CompilationResult:
    """What the paper would get from one compile-and-run of a kernel."""

    kernel_name: str
    plan: FunctionVectorPlan
    cost: FunctionCost
    compile_seconds: float
    factors: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return self.cost.total_cycles

    @property
    def seconds(self) -> float:
        return self.cost.seconds

    def speedup_over(self, other: "CompilationResult") -> float:
        return other.cycles / self.cycles if self.cycles > 0 else float("inf")


class CompileAndMeasure:
    """Parses, lowers, plans and simulates kernels under one machine model.

    Three entry points mirror the ways the paper exercises clang:

    * :meth:`measure_with_pragmas` — honour whatever ``#pragma clang loop``
      hints are present in the kernel source (the RL/agent path),
    * :meth:`measure_with_factors` — explicit per-loop (VF, IF) requests,
      bypassing the source-rewriting step (used by brute force and the
      supervised agents),
    * :meth:`measure_baseline` — let the built-in cost model decide, i.e.
      plain ``clang -O3``.
    """

    def __init__(
        self,
        machine: Optional[MachineDescription] = None,
        default_symbol_value: int = 256,
    ):
        self.machine = machine or MachineDescription()
        self.default_symbol_value = default_symbol_value
        self.baseline_model = BaselineCostModel(machine=self.machine)
        self._ir_cache: Dict[Tuple[str, str], IRFunction] = {}
        # One simulator per (kernel, bindings) so its per-function memos
        # (statement costs, loop analyses, whole simulations) survive across
        # the thousands of measure calls a training run makes per kernel.
        self._simulator_cache: Dict[Tuple[str, Tuple[Tuple[str, int], ...]], Simulator] = {}

    # -- lowering --------------------------------------------------------------------

    def lower_kernel(self, kernel: LoopKernel, source: Optional[str] = None) -> IRFunction:
        """Lower a kernel (or an alternative source text for it) to IR."""
        text = source if source is not None else kernel.source
        key = (kernel.name, text)
        cached = self._ir_cache.get(key)
        if cached is not None:
            return cached
        # Parse through the process-wide content-hash memo: repeated kernels
        # skip preprocess/tokenize/parse across pipelines and agents.
        unit = frontend_cache().parse(text, filename=f"{kernel.name}.c")
        function = unit.find_function(kernel.function_name)
        if function is None:
            raise ValueError(
                f"kernel {kernel.name!r} has no function {kernel.function_name!r}"
            )
        ir_function = lower_function(
            unit, function, context=LoweringContext(bindings=dict(kernel.bindings))
        )
        if len(self._ir_cache) > 512:
            self._ir_cache.clear()
        self._ir_cache[key] = ir_function
        return ir_function

    def _simulator(self, kernel: LoopKernel) -> Simulator:
        key = (kernel.name, tuple(sorted(kernel.bindings.items())))
        simulator = self._simulator_cache.get(key)
        if simulator is None:
            simulator = Simulator(
                machine=self.machine,
                bindings=dict(kernel.bindings),
                default_symbol_value=self.default_symbol_value,
            )
            if len(self._simulator_cache) > 512:
                self._simulator_cache.clear()
            self._simulator_cache[key] = simulator
        return simulator

    def simulator_memo_stats(self) -> Dict[str, float]:
        """Aggregate memo counters over every cached per-kernel simulator.

        Sums the whole-function LRU's hit/miss/eviction counts and the
        entry counts of the per-function stores (analyses, statement
        prices, region playbooks) so cache-pressure regressions show up in
        :meth:`repro.core.framework.NeuroVectorizer.cache_stats_report`.
        The iteration-cost memo counters (process-wide, from
        :func:`repro.simulator.cost.memo_stats`) ride along under
        ``cost_*`` keys, including how many (VF, IF) grid points the
        one-pass sweeps prepaid.
        """
        totals: Dict[str, float] = {
            "simulators": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
            "analysis_entries": 0,
            "statement_entries": 0,
            "playbook_entries": 0,
        }
        for simulator in self._simulator_cache.values():
            stats = simulator.memo_stats()
            totals["simulators"] += 1
            for name in (
                "hits",
                "misses",
                "evictions",
                "entries",
                "analysis_entries",
                "statement_entries",
                "playbook_entries",
            ):
                totals[name] += stats[name]
        lookups = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / lookups if lookups else 0.0
        cost_stats = cost_memo_stats()
        totals["cost_iteration_hits"] = cost_stats["iteration_hits"]
        totals["cost_iteration_misses"] = cost_stats["iteration_misses"]
        totals["cost_iteration_hit_rate"] = cost_stats["iteration_hit_rate"]
        totals["cost_sweeps"] = cost_stats["sweeps"]
        totals["cost_swept_configs"] = cost_stats["swept_configs"]
        return totals

    def _result(
        self, kernel: LoopKernel, ir_function: IRFunction, plan: FunctionVectorPlan
    ) -> CompilationResult:
        cost = self._simulator(kernel).simulate(ir_function, plan)
        compile_seconds = estimate_compile_time(ir_function, plan, self.machine)
        factors = {}
        for index, loop in enumerate(ir_function.innermost_loops()):
            loop_plan = plan.plan_for(loop)
            if loop_plan is not None:
                factors[index] = (loop_plan.vf, loop_plan.interleave)
        return CompilationResult(
            kernel_name=kernel.name,
            plan=plan,
            cost=cost,
            compile_seconds=compile_seconds,
            factors=factors,
        )

    # -- measurement entry points -------------------------------------------------------

    def measure_with_pragmas(
        self, kernel: LoopKernel, source: Optional[str] = None
    ) -> CompilationResult:
        """Compile honouring the clang loop pragmas present in the source.

        Loops without a pragma fall back to the baseline cost model's choice,
        matching clang's behaviour when only some loops carry hints; pragma
        clauses resolve through the shared
        :func:`repro.vectorizer.planner.factors_from_pragma` rule (an
        ``unroll_count`` pins the unroll/interleave factor — plain unrolling
        when the loop is scalar or ``vectorize(disable)``d — while the width
        stays with the cost model unless ``vectorize_width`` says otherwise).
        """
        ir_function = self.lower_kernel(kernel, source)
        baseline_decisions = self.baseline_model.decide_function(ir_function)
        decisions = dict(baseline_decisions)
        for loop in ir_function.innermost_loops():
            pragma = loop.pragma
            if pragma is None or pragma.is_empty:
                continue
            default_vf, default_if = decisions.get(loop.loop_id, (1, 1))
            decisions[loop.loop_id] = factors_from_pragma(
                pragma, default_vf, default_if
            )
        plan = build_plan(ir_function, decisions, self.machine)
        return self._result(kernel, ir_function, plan)

    def measure_with_factors(
        self, kernel: LoopKernel, factors_by_index: Dict[int, Tuple[int, int]]
    ) -> CompilationResult:
        """Compile with explicit (VF, IF) requests keyed by innermost-loop index."""
        ir_function = self.lower_kernel(kernel)
        decisions: Dict[int, Tuple[int, int]] = {}
        for index, loop in enumerate(ir_function.innermost_loops()):
            if index in factors_by_index:
                decisions[loop.loop_id] = factors_by_index[index]
            else:
                decision = self.baseline_model.decide_loop(ir_function, loop)
                decisions[loop.loop_id] = (decision.vf, decision.interleave)
        plan = build_plan(ir_function, decisions, self.machine)
        return self._result(kernel, ir_function, plan)

    def measure_function(
        self,
        kernel: LoopKernel,
        ir_function: IRFunction,
        factors_by_index: Optional[Dict[int, Tuple[int, int]]] = None,
    ) -> CompilationResult:
        """Measure an already-lowered (possibly transformed) IR function.

        This is the path the Polly experiments use: the polyhedral pass
        rewrites the loop structure, then either the baseline cost model
        (``factors_by_index is None``) or explicit per-loop factors decide
        the vectorization of the transformed code.
        """
        decisions: Dict[int, Tuple[int, int]] = {}
        for index, loop in enumerate(ir_function.innermost_loops()):
            if factors_by_index is not None and index in factors_by_index:
                decisions[loop.loop_id] = factors_by_index[index]
            else:
                decision = self.baseline_model.decide_loop(ir_function, loop)
                decisions[loop.loop_id] = (decision.vf, decision.interleave)
        plan = build_plan(ir_function, decisions, self.machine)
        return self._result(kernel, ir_function, plan)

    def measure_baseline(self, kernel: LoopKernel) -> CompilationResult:
        """Compile with the built-in cost model only (the paper's baseline)."""
        ir_function = self.lower_kernel(kernel)
        plan = self.baseline_model.plan_function(ir_function)
        return self._result(kernel, ir_function, plan)

    def measure_scalar(self, kernel: LoopKernel) -> CompilationResult:
        """Compile with vectorization disabled everywhere (VF = IF = 1)."""
        ir_function = self.lower_kernel(kernel)
        decisions = {loop.loop_id: (1, 1) for loop in ir_function.innermost_loops()}
        plan = build_plan(ir_function, decisions, self.machine)
        return self._result(kernel, ir_function, plan)
