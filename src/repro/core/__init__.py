"""The end-to-end NeuroVectorizer framework (Figure 3 of the paper).

Pipeline: source files → loop extractor → code embedding → agent → pragma
injection → compile-and-measure → reward.  The pieces are:

* :mod:`repro.core.loop_extractor` — finds loops and their nests in C source,
* :mod:`repro.core.pragma_injector` — writes ``#pragma clang loop`` hints
  into the source text (Figure 4),
* :mod:`repro.core.pipeline` — the stand-in for "compile with clang and time
  it": parse, lower, plan from pragmas, simulate,
* :mod:`repro.core.framework` — the :class:`NeuroVectorizer` facade tying an
  embedding model and an agent together, plus its training entry point.
"""

from repro.core.loop_extractor import ExtractedLoop, LoopExtractor, extract_loops
from repro.core.pragma_injector import inject_pragma_line, inject_pragmas, strip_loop_pragmas
from repro.core.pipeline import CompilationResult, CompileAndMeasure
from repro.core.framework import (
    NeuroVectorizer,
    VectorizationDecision,
    VectorizationResult,
)

__all__ = [
    "ExtractedLoop",
    "LoopExtractor",
    "extract_loops",
    "inject_pragma_line",
    "inject_pragmas",
    "strip_loop_pragmas",
    "CompilationResult",
    "CompileAndMeasure",
    "NeuroVectorizer",
    "VectorizationDecision",
    "VectorizationResult",
]
