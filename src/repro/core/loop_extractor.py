"""Automatic loop extraction from C source (the first stage of Figure 3)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import ast, parse_source
from repro.frontend.printer import print_stmt


@dataclass
class ExtractedLoop:
    """One innermost loop found in a source file, with its nest context.

    * ``ast_loop`` is the innermost loop statement (where the pragma goes —
      "the pragma is injected to the most inner loop in case of nested
      loops", §3),
    * ``nest_root`` is the outermost loop of the nest containing it — the
      text the embedding generator reads, because the paper found that
      "feeding the loop body of the most outer loop ... performed better",
    * ``source_line`` is the 1-based line of the innermost ``for`` in the
      original text, used by the pragma injector.
    """

    function_name: str
    loop_index: int
    ast_loop: ast.Stmt
    nest_root: ast.Stmt
    source_line: int
    nest_depth: int
    source_text: str = ""

    @property
    def is_nested(self) -> bool:
        return self.nest_depth > 1


class LoopExtractor:
    """Finds every innermost loop of every function in a translation unit."""

    def __init__(self, include_while_loops: bool = True):
        self.include_while_loops = include_while_loops

    def extract_from_source(
        self, source: str, filename: str = "<source>"
    ) -> List[ExtractedLoop]:
        unit = parse_source(source, filename=filename)
        return self.extract_from_unit(unit)

    def extract_from_unit(self, unit: ast.TranslationUnit) -> List[ExtractedLoop]:
        extracted: List[ExtractedLoop] = []
        for function in unit.functions:
            extracted.extend(self.extract_from_function(function))
        return extracted

    def extract_from_function(self, function: ast.FunctionDecl) -> List[ExtractedLoop]:
        if function.body is None:
            return []
        loop_types = (ast.ForStmt, ast.WhileStmt) if self.include_while_loops else (
            ast.ForStmt,
        )
        top_level: List[ast.Stmt] = [
            node
            for node in ast.iter_loops(function.body)
            if isinstance(node, loop_types)
        ]
        # Determine the nest root of each loop: the outermost loop whose
        # subtree contains it.
        roots: Dict[int, ast.Stmt] = {}
        outermost: List[ast.Stmt] = []
        seen: set = set()
        for loop in top_level:
            if id(loop) in seen:
                continue
            outermost.append(loop)
            for inner in ast.iter_loops(loop):
                roots[id(inner)] = loop
                seen.add(id(inner))

        extracted: List[ExtractedLoop] = []
        index = 0
        for loop in ast.iter_loops(function.body):
            if not isinstance(loop, loop_types):
                continue
            if list(ast.iter_loops(getattr(loop, "body", None) or ast.CompoundStmt())):
                continue  # not innermost
            nest_root = roots.get(id(loop), loop)
            line = loop.span.start.line if loop.span is not None else 0
            extracted.append(
                ExtractedLoop(
                    function_name=function.name,
                    loop_index=index,
                    ast_loop=loop,
                    nest_root=nest_root,
                    source_line=line,
                    nest_depth=ast.loop_nest_depth(nest_root),
                    source_text=print_stmt(nest_root),
                )
            )
            index += 1
        return extracted


def extract_loops(
    source: str,
    function_name: Optional[str] = None,
    filename: str = "<source>",
) -> List[ExtractedLoop]:
    """Extract innermost loops from source, optionally from one function only.

    Results are memoized in the process-wide frontend cache by content hash
    (parse results are shared with every other consumer of the same source),
    so embedding pretraining, site discovery and evaluation runs extract
    each distinct kernel once per process, not once per caller.
    """
    from repro.frontend.cache import frontend_cache, source_fingerprint

    cache = frontend_cache()
    key = ("loops", source_fingerprint(source), function_name, filename)
    loops = cache.cached(
        key, lambda: _extract_loops_uncached(source, function_name, filename)
    )
    # Hand back a fresh list so callers may filter/extend without
    # corrupting the cached entry (the ExtractedLoop objects are shared).
    return list(loops)


def _extract_loops_uncached(
    source: str, function_name: Optional[str], filename: str
) -> List[ExtractedLoop]:
    from repro.frontend.cache import frontend_cache

    unit = frontend_cache().parse(source, filename=filename)
    loops = LoopExtractor().extract_from_unit(unit)
    if function_name is not None:
        loops = [loop for loop in loops if loop.function_name == function_name]
        for index, loop in enumerate(loops):
            loop.loop_index = index
    return loops
