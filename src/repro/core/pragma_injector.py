"""Injecting ``#pragma clang loop`` hints into C source text (Figure 4)."""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.core.loop_extractor import ExtractedLoop, extract_loops
from repro.frontend.pragmas import LoopPragma, format_pragma

_PRAGMA_LINE_RE = re.compile(r"^\s*#\s*pragma\s+clang\s+loop\b")


def strip_loop_pragmas(source: str) -> str:
    """Remove every existing ``#pragma clang loop`` line from the source.

    The injector always starts from a clean slate so that repeated calls are
    idempotent (the RL environment re-injects pragmas on every step).
    """
    lines = source.split("\n")
    kept = [line for line in lines if not _PRAGMA_LINE_RE.match(line)]
    return "\n".join(kept)


def inject_pragma_text(source: str, line_number: int, pragma: LoopPragma) -> str:
    """Insert ``pragma`` immediately before ``line_number`` (1-based).

    The pragma copies the indentation of the target line so the result looks
    like the hand-written examples in the paper.
    """
    lines = source.split("\n")
    index = max(0, min(len(lines), line_number - 1))
    target = lines[index] if index < len(lines) else ""
    indent = target[: len(target) - len(target.lstrip())]
    lines.insert(index, indent + format_pragma(pragma))
    return "\n".join(lines)


def inject_pragma_line(
    source: str,
    line_number: int,
    vectorize_width: int,
    interleave_count: int,
) -> str:
    """(VF, IF) shorthand for :func:`inject_pragma_text`."""
    return inject_pragma_text(
        source,
        line_number,
        LoopPragma(
            vectorize_width=vectorize_width, interleave_count=interleave_count
        ),
    )


def inject_loop_pragmas(
    source: str,
    pragmas: Dict[int, LoopPragma],
    function_name: Optional[str] = None,
) -> str:
    """Inject one arbitrary :class:`LoopPragma` per innermost loop.

    ``pragmas`` maps the loop index (as produced by
    :func:`repro.core.loop_extractor.extract_loops`) to the directive to
    place before that loop — vectorization hints, unroll counts, or any mix.
    Loops without an entry are left untouched (the compiler's own cost model
    will handle them).  Existing clang loop pragmas are stripped first.
    """
    cleaned = strip_loop_pragmas(source)
    loops = extract_loops(cleaned, function_name=function_name)
    # Insert from the bottom of the file upwards so earlier line numbers stay
    # valid while we mutate the text.
    insertions: List[Tuple[int, LoopPragma]] = [
        (loop.source_line, pragmas[loop.loop_index])
        for loop in loops
        if loop.loop_index in pragmas
    ]
    insertions.sort(key=lambda item: item[0], reverse=True)
    result = cleaned
    for line, pragma in insertions:
        result = inject_pragma_text(result, line, pragma)
    return result


def inject_pragmas(
    source: str,
    decisions: Dict[int, Tuple[int, int]],
    function_name: Optional[str] = None,
) -> str:
    """Inject one (VF, IF) pragma per innermost loop according to
    ``decisions`` (the vectorization-task shorthand for
    :func:`inject_loop_pragmas`)."""
    return inject_loop_pragmas(
        source,
        {
            loop_index: LoopPragma(
                vectorize_width=vectorize_width, interleave_count=interleave_count
            )
            for loop_index, (vectorize_width, interleave_count) in decisions.items()
        },
        function_name=function_name,
    )
