"""Abstract syntax tree for the C subset.

Nodes are plain dataclasses.  Every node exposes:

* ``children()`` — child nodes in source order (used by the code2vec path
  extractor and by generic traversals),
* ``label()`` — a short node label used when building AST path contexts,
* an optional ``span`` locating the node in the original text.

The tree distinguishes expressions, statements and top-level declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.frontend.ctypes import CType
from repro.frontend.errors import SourceSpan
from repro.frontend.pragmas import LoopPragma


# ---------------------------------------------------------------------------
# Base classes
# ---------------------------------------------------------------------------


@dataclass
class Node:
    """Base class for every AST node."""

    span: Optional[SourceSpan] = field(default=None, repr=False, compare=False)

    def children(self) -> Iterable["Node"]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree (including self)."""
        yield self
        for child in self.children():
            if child is not None:
                yield from child.walk()


@dataclass
class Expr(Node):
    """Base class for expressions.  ``ctype`` is filled in by sema."""

    ctype: Optional[CType] = field(default=None, compare=False)


@dataclass
class Stmt(Node):
    """Base class for statements."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class IntLiteral(Expr):
    value: int = 0

    def label(self) -> str:
        return f"Int:{self.value}"


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0

    def label(self) -> str:
        return f"Float:{self.value}"


@dataclass
class CharLiteral(Expr):
    value: int = 0

    def label(self) -> str:
        return f"Char:{self.value}"


@dataclass
class StringLiteral(Expr):
    value: str = ""

    def label(self) -> str:
        return "String"


@dataclass
class Identifier(Expr):
    name: str = ""

    def label(self) -> str:
        return f"Name:{self.name}"


@dataclass
class ArraySubscript(Expr):
    """``base[index]``.  Multi-dimensional accesses nest subscripts."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.base, self.index)

    def label(self) -> str:
        return "Subscript"

    def root_array(self) -> Optional[Identifier]:
        """The identifier at the bottom of a (possibly nested) subscript."""
        node: Optional[Expr] = self.base
        while isinstance(node, ArraySubscript):
            node = node.base
        return node if isinstance(node, Identifier) else None

    def indices(self) -> List[Expr]:
        """All indices ordered outermost-dimension first."""
        collected: List[Expr] = []
        node: Expr = self
        while isinstance(node, ArraySubscript):
            collected.append(node.index)
            node = node.base
        collected.reverse()
        return collected


@dataclass
class UnaryOp(Expr):
    op: str = "-"
    operand: Optional[Expr] = None
    is_postfix: bool = False

    def children(self) -> Iterable[Node]:
        return (self.operand,)

    def label(self) -> str:
        suffix = "post" if self.is_postfix else "pre"
        return f"Unary:{self.op}:{suffix}"


@dataclass
class BinaryOp(Expr):
    op: str = "+"
    left: Optional[Expr] = None
    right: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"Binary:{self.op}"


@dataclass
class Assignment(Expr):
    """``target op value`` where op is ``=`` or a compound assignment."""

    op: str = "="
    target: Optional[Expr] = None
    value: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.target, self.value)

    def label(self) -> str:
        return f"Assign:{self.op}"


@dataclass
class TernaryOp(Expr):
    condition: Optional[Expr] = None
    then_value: Optional[Expr] = None
    else_value: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.condition, self.then_value, self.else_value)

    def label(self) -> str:
        return "Ternary"


@dataclass
class Cast(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.operand,)

    def label(self) -> str:
        return f"Cast:{self.target_type}"


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)

    def children(self) -> Iterable[Node]:
        return tuple(self.args)

    def label(self) -> str:
        return f"Call:{self.callee}"


@dataclass
class SizeOf(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.operand,) if self.operand is not None else ()

    def label(self) -> str:
        return "SizeOf"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class VarDecl(Node):
    """A single declared variable (possibly part of a multi-declarator stmt)."""

    name: str = ""
    ctype: Optional[CType] = None
    init: Optional[Expr] = None
    attributes: List[str] = field(default_factory=list)
    is_global: bool = False

    def children(self) -> Iterable[Node]:
        return (self.init,) if self.init is not None else ()

    def label(self) -> str:
        return f"Decl:{self.name}"

    @property
    def alignment(self) -> Optional[int]:
        """Alignment requested via ``__attribute__((aligned(N)))``, if any."""
        for attr in self.attributes:
            if attr.startswith("aligned(") and attr.endswith(")"):
                try:
                    return int(attr[len("aligned(") : -1])
                except ValueError:
                    return None
        return None


@dataclass
class DeclStmt(Stmt):
    declarations: List[VarDecl] = field(default_factory=list)

    def children(self) -> Iterable[Node]:
        return tuple(self.declarations)

    def label(self) -> str:
        return "DeclStmt"


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.expr,) if self.expr is not None else ()

    def label(self) -> str:
        return "ExprStmt"


@dataclass
class CompoundStmt(Stmt):
    statements: List[Stmt] = field(default_factory=list)

    def children(self) -> Iterable[Node]:
        return tuple(self.statements)

    def label(self) -> str:
        return "Block"


@dataclass
class ForStmt(Stmt):
    """A ``for`` loop.  ``pragma`` carries any clang loop hint attached to it."""

    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    increment: Optional[Expr] = None
    body: Optional[Stmt] = None
    pragma: Optional[LoopPragma] = None

    def children(self) -> Iterable[Node]:
        return tuple(
            child
            for child in (self.init, self.condition, self.increment, self.body)
            if child is not None
        )

    def label(self) -> str:
        return "For"


@dataclass
class WhileStmt(Stmt):
    condition: Optional[Expr] = None
    body: Optional[Stmt] = None
    pragma: Optional[LoopPragma] = None

    def children(self) -> Iterable[Node]:
        return tuple(child for child in (self.condition, self.body) if child)

    def label(self) -> str:
        return "While"


@dataclass
class DoWhileStmt(Stmt):
    body: Optional[Stmt] = None
    condition: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return tuple(child for child in (self.body, self.condition) if child)

    def label(self) -> str:
        return "DoWhile"


@dataclass
class IfStmt(Stmt):
    condition: Optional[Expr] = None
    then_branch: Optional[Stmt] = None
    else_branch: Optional[Stmt] = None

    def children(self) -> Iterable[Node]:
        return tuple(
            child
            for child in (self.condition, self.then_branch, self.else_branch)
            if child is not None
        )

    def label(self) -> str:
        return "If"


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None

    def children(self) -> Iterable[Node]:
        return (self.value,) if self.value is not None else ()

    def label(self) -> str:
        return "Return"


@dataclass
class BreakStmt(Stmt):
    def label(self) -> str:
        return "Break"


@dataclass
class ContinueStmt(Stmt):
    def label(self) -> str:
        return "Continue"


@dataclass
class PragmaStmt(Stmt):
    """A pragma that has not (yet) been attached to a following loop."""

    pragma: Optional[LoopPragma] = None
    raw_text: str = ""

    def label(self) -> str:
        return "Pragma"


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class Parameter(Node):
    name: str = ""
    ctype: Optional[CType] = None

    def label(self) -> str:
        return f"Param:{self.name}"


@dataclass
class FunctionDecl(Node):
    name: str = ""
    return_type: Optional[CType] = None
    parameters: List[Parameter] = field(default_factory=list)
    body: Optional[CompoundStmt] = None
    attributes: List[str] = field(default_factory=list)

    def children(self) -> Iterable[Node]:
        children: Tuple[Node, ...] = tuple(self.parameters)
        if self.body is not None:
            children = children + (self.body,)
        return children

    def label(self) -> str:
        return f"Function:{self.name}"


@dataclass
class TranslationUnit(Node):
    """The root of the AST for one source file."""

    filename: str = "<source>"
    globals: List[VarDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)

    def children(self) -> Iterable[Node]:
        return tuple(self.globals) + tuple(self.functions)

    def label(self) -> str:
        return "TranslationUnit"

    def find_function(self, name: str) -> Optional[FunctionDecl]:
        for function in self.functions:
            if function.name == name:
                return function
        return None

    def find_global(self, name: str) -> Optional[VarDecl]:
        for decl in self.globals:
            if decl.name == name:
                return decl
        return None


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def iter_loops(node: Node) -> Iterator[Stmt]:
    """Yield every ``for``/``while`` loop in the subtree, outermost first."""
    for child in node.walk():
        if isinstance(child, (ForStmt, WhileStmt, DoWhileStmt)):
            yield child


def _outermost_loops(node: Node) -> Iterator[Stmt]:
    """Loops in the subtree with no enclosing loop inside it (node included)."""
    if isinstance(node, (ForStmt, WhileStmt, DoWhileStmt)):
        yield node
        return
    for child in node.children():
        yield from _outermost_loops(child)


def loop_nest_depth(loop: Node) -> int:
    """Number of loop levels contained in ``loop`` (1 for a simple loop)."""
    if not isinstance(loop, (ForStmt, WhileStmt, DoWhileStmt)):
        return 0
    body = getattr(loop, "body", None)
    if body is None:
        return 1
    # Recurse only on the body's outermost loops (the body itself may be one
    # for brace-less nesting); visiting every descendant loop would re-enter
    # deep nests once per ancestor, i.e. exponentially.
    deepest = 0
    for child in _outermost_loops(body):
        deepest = max(deepest, loop_nest_depth(child))
    return 1 + deepest


def innermost_loops(node: Node) -> List[Stmt]:
    """All loops in the subtree that contain no further loops."""
    result: List[Stmt] = []
    for loop in iter_loops(node):
        body = getattr(loop, "body", None)
        has_inner = body is not None and any(True for _ in iter_loops(body))
        if not has_inner:
            result.append(loop)
    return result


def count_nodes(node: Node, node_type: Optional[type] = None) -> int:
    """Count nodes in the subtree, optionally restricted to one class."""
    if node_type is None:
        return sum(1 for _ in node.walk())
    return sum(1 for child in node.walk() if isinstance(child, node_type))
