"""Semantic analysis: symbol resolution and expression type annotation.

The analysis is deliberately permissive — the loop kernels in the dataset are
frequently fragments whose arrays and bounds are declared elsewhere, so an
unknown identifier is assumed to be an ``int`` scalar (and a warning is
recorded) rather than rejected.  What the rest of the pipeline needs from
sema is:

* a symbol table mapping names to declared types (arrays with shapes),
* ``ctype`` annotations on expressions (element widths drive both legality
  and the cost model),
* detection of obviously malformed programs (assigning to a literal, calling
  an array, subscripting a scalar).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import ast
from repro.frontend.ctypes import (
    ArrayType,
    CType,
    DOUBLE,
    FLOAT,
    INT,
    IntType,
    PointerType,
    common_type,
)
from repro.frontend.errors import DiagnosticEngine, SemanticError


@dataclass
class Symbol:
    """A named entity visible to the program: variable, parameter or array."""

    name: str
    ctype: CType
    is_global: bool = False
    is_parameter: bool = False
    alignment: Optional[int] = None
    declaration: Optional[ast.Node] = None


@dataclass
class Scope:
    """One lexical scope in the symbol table chain."""

    parent: Optional["Scope"] = None
    symbols: Dict[str, Symbol] = field(default_factory=dict)

    def define(self, symbol: Symbol) -> None:
        self.symbols[symbol.name] = symbol

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


@dataclass
class SemanticInfo:
    """Result of analysing one translation unit."""

    unit: ast.TranslationUnit
    globals: Dict[str, Symbol] = field(default_factory=dict)
    function_symbols: Dict[str, Dict[str, Symbol]] = field(default_factory=dict)
    diagnostics: DiagnosticEngine = field(default_factory=DiagnosticEngine)

    def symbol_for(self, function_name: str, variable: str) -> Optional[Symbol]:
        table = self.function_symbols.get(function_name, {})
        if variable in table:
            return table[variable]
        return self.globals.get(variable)


class SemanticAnalyzer:
    """Walks the AST, building symbol tables and annotating expression types."""

    def __init__(self, permissive: bool = True):
        self.permissive = permissive
        self.diagnostics = DiagnosticEngine()

    def analyze(self, unit: ast.TranslationUnit) -> SemanticInfo:
        info = SemanticInfo(unit=unit, diagnostics=self.diagnostics)
        global_scope = Scope()
        for decl in unit.globals:
            symbol = Symbol(
                name=decl.name,
                ctype=decl.ctype or INT,
                is_global=True,
                alignment=decl.alignment,
                declaration=decl,
            )
            global_scope.define(symbol)
            info.globals[decl.name] = symbol
            if decl.init is not None:
                self._visit_expr(decl.init, global_scope)
        for function in unit.functions:
            info.function_symbols[function.name] = self._analyze_function(
                function, global_scope
            )
        return info

    # -- functions -------------------------------------------------------------

    def _analyze_function(
        self, function: ast.FunctionDecl, global_scope: Scope
    ) -> Dict[str, Symbol]:
        scope = Scope(parent=global_scope)
        collected: Dict[str, Symbol] = {}
        for parameter in function.parameters:
            if not parameter.name:
                continue
            symbol = Symbol(
                name=parameter.name,
                ctype=parameter.ctype or INT,
                is_parameter=True,
                declaration=parameter,
            )
            scope.define(symbol)
            collected[parameter.name] = symbol
        if function.body is not None:
            self._visit_stmt(function.body, scope, collected)
        return collected

    # -- statements --------------------------------------------------------------

    def _visit_stmt(
        self, stmt: ast.Stmt, scope: Scope, collected: Dict[str, Symbol]
    ) -> None:
        if isinstance(stmt, ast.CompoundStmt):
            inner = Scope(parent=scope)
            for child in stmt.statements:
                self._visit_stmt(child, inner, collected)
            return
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarations:
                if decl.init is not None:
                    self._visit_expr(decl.init, scope)
                symbol = Symbol(
                    name=decl.name,
                    ctype=decl.ctype or INT,
                    alignment=decl.alignment,
                    declaration=decl,
                )
                scope.define(symbol)
                collected.setdefault(decl.name, symbol)
            return
        if isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._visit_expr(stmt.expr, scope)
            return
        if isinstance(stmt, ast.ForStmt):
            loop_scope = Scope(parent=scope)
            if stmt.init is not None:
                self._visit_stmt(stmt.init, loop_scope, collected)
            if stmt.condition is not None:
                self._visit_expr(stmt.condition, loop_scope)
            if stmt.increment is not None:
                self._visit_expr(stmt.increment, loop_scope)
            if stmt.body is not None:
                self._visit_stmt(stmt.body, loop_scope, collected)
            return
        if isinstance(stmt, ast.WhileStmt):
            if stmt.condition is not None:
                self._visit_expr(stmt.condition, scope)
            if stmt.body is not None:
                self._visit_stmt(stmt.body, scope, collected)
            return
        if isinstance(stmt, ast.DoWhileStmt):
            if stmt.body is not None:
                self._visit_stmt(stmt.body, scope, collected)
            if stmt.condition is not None:
                self._visit_expr(stmt.condition, scope)
            return
        if isinstance(stmt, ast.IfStmt):
            self._visit_expr(stmt.condition, scope)
            if stmt.then_branch is not None:
                self._visit_stmt(stmt.then_branch, scope, collected)
            if stmt.else_branch is not None:
                self._visit_stmt(stmt.else_branch, scope, collected)
            return
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._visit_expr(stmt.value, scope)
            return
        # Break, Continue, Pragma: nothing to do.

    # -- expressions ---------------------------------------------------------------

    def _visit_expr(self, expr: Optional[ast.Expr], scope: Scope) -> CType:
        if expr is None:
            return INT
        if isinstance(expr, ast.IntLiteral):
            expr.ctype = INT
        elif isinstance(expr, ast.FloatLiteral):
            expr.ctype = DOUBLE
        elif isinstance(expr, ast.CharLiteral):
            expr.ctype = IntType(8, True)
        elif isinstance(expr, ast.StringLiteral):
            expr.ctype = PointerType(IntType(8, True))
        elif isinstance(expr, ast.Identifier):
            symbol = scope.lookup(expr.name)
            if symbol is None:
                if not self.permissive:
                    raise SemanticError(f"use of undeclared identifier {expr.name!r}")
                self.diagnostics.warn(
                    f"identifier {expr.name!r} is not declared; assuming int"
                )
                expr.ctype = INT
            else:
                expr.ctype = symbol.ctype
        elif isinstance(expr, ast.ArraySubscript):
            base_type = self._visit_expr(expr.base, scope)
            self._visit_expr(expr.index, scope)
            expr.ctype = _element_type_after_subscript(base_type, self.diagnostics,
                                                       self.permissive)
        elif isinstance(expr, ast.UnaryOp):
            operand_type = self._visit_expr(expr.operand, scope)
            if expr.op == "!":
                expr.ctype = INT
            elif expr.op == "*" and isinstance(operand_type, (PointerType, ArrayType)):
                expr.ctype = (
                    operand_type.pointee
                    if isinstance(operand_type, PointerType)
                    else operand_type.element
                )
            elif expr.op == "&":
                expr.ctype = PointerType(operand_type)
            else:
                expr.ctype = operand_type
        elif isinstance(expr, ast.BinaryOp):
            left = self._visit_expr(expr.left, scope)
            right = self._visit_expr(expr.right, scope)
            if expr.op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
                expr.ctype = INT
            else:
                expr.ctype = common_type(left, right)
        elif isinstance(expr, ast.Assignment):
            target_type = self._visit_expr(expr.target, scope)
            self._visit_expr(expr.value, scope)
            if isinstance(expr.target, (ast.IntLiteral, ast.FloatLiteral)):
                raise SemanticError("cannot assign to a literal")
            expr.ctype = target_type
        elif isinstance(expr, ast.TernaryOp):
            self._visit_expr(expr.condition, scope)
            then_type = self._visit_expr(expr.then_value, scope)
            else_type = self._visit_expr(expr.else_value, scope)
            expr.ctype = common_type(then_type, else_type)
        elif isinstance(expr, ast.Cast):
            self._visit_expr(expr.operand, scope)
            expr.ctype = expr.target_type or INT
        elif isinstance(expr, ast.Call):
            for argument in expr.args:
                self._visit_expr(argument, scope)
            expr.ctype = _call_return_type(expr.callee)
        elif isinstance(expr, ast.SizeOf):
            if expr.operand is not None:
                self._visit_expr(expr.operand, scope)
            expr.ctype = IntType(64, False)
        else:
            expr.ctype = INT
        return expr.ctype or INT


def _element_type_after_subscript(
    base_type: CType, diagnostics: DiagnosticEngine, permissive: bool
) -> CType:
    if isinstance(base_type, ArrayType):
        if base_type.rank > 1:
            return ArrayType(element=base_type.element, dims=base_type.dims[1:])
        return base_type.element
    if isinstance(base_type, PointerType):
        return base_type.pointee
    if permissive:
        diagnostics.warn("subscript of a non-array value; assuming int element")
        return INT
    raise SemanticError("subscripted value is not an array or pointer")


_MATH_CALLS_DOUBLE = {"sqrt", "fabs", "exp", "log", "pow", "sin", "cos", "floor",
                      "ceil"}
_MATH_CALLS_FLOAT = {"sqrtf", "fabsf", "expf", "logf", "powf", "sinf", "cosf"}


def _call_return_type(callee: str) -> CType:
    if callee in _MATH_CALLS_DOUBLE:
        return DOUBLE
    if callee in _MATH_CALLS_FLOAT:
        return FLOAT
    if callee in ("abs", "rand", "strlen"):
        return INT
    return INT


def analyze(unit: ast.TranslationUnit, permissive: bool = True) -> SemanticInfo:
    """Run semantic analysis over a parsed translation unit."""
    return SemanticAnalyzer(permissive=permissive).analyze(unit)
