"""Process-wide content-hash memo for frontend results (ASTs, loop lists).

Before this cache every :class:`~repro.core.pipeline.CompileAndMeasure`
instance re-ran preprocess → tokenize → parse for kernels any *other*
pipeline had already seen, because memoization lived per instance.
Comparison runs build several pipelines (one per agent) over the same
kernel set, so the same sources were parsed over and over.

This module hoists that memoization to one process-wide store, keyed by
content hash exactly like :mod:`repro.cache.reward_cache` keys kernels
(sha1 of the source text, plus whatever parameters shape the result), with
an explicit entry cap (LRU eviction) and hit/miss/eviction stats:

    from repro.frontend.cache import frontend_cache
    cache = frontend_cache()
    unit = cache.parse(source_text, filename="kernel.c")
    cache.stats.as_dict()     # {"hits": ..., "misses": ..., ...}
    cache.set_capacity(1024)  # cap the entry count (default 512)
    cache.disable()           # pass-through mode (e.g. for benchmarking)

Cached ASTs are shared read-only: the parser normalizes loop bodies during
parsing and semantic analysis annotates its own tables, so a
``TranslationUnit`` is safe to hand to any number of lowering calls.

The environment variables ``REPRO_FRONTEND_CACHE=0`` (disable) and
``REPRO_FRONTEND_CACHE_CAPACITY=<n>`` configure the process-wide instance.
They are re-read on every :func:`frontend_cache` call, and a *changed*
value is applied to the live instance — so exporting a new capacity (or
toggling the cache off) between runs in one process takes effect without a
restart.  Unchanged variables never override programmatic
:meth:`FrontendCache.set_capacity` / :meth:`FrontendCache.disable` calls.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.frontend import ast
from repro.frontend.parser import parse_source


def source_fingerprint(source: str) -> str:
    """Stable content hash of a source text (the reward-cache keying idiom)."""
    return hashlib.sha1(source.encode("utf-8")).hexdigest()


@dataclass
class FrontendCacheStats:
    """Hit/miss/eviction counters for the process-wide frontend memo."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class FrontendCache:
    """Content-hash LRU store for frontend results, shared process-wide.

    ``cached(key, compute)`` is the generic lookup-or-compute primitive;
    :meth:`parse` is the canonical user.  Keys must start with a result-kind
    tag (``"parse"``, ``"loops"``, ...) so different result types never
    collide even for the same source hash.
    """

    def __init__(self, capacity: int = 512, enabled: bool = True):
        if capacity < 1:
            raise ValueError("frontend cache capacity must be at least 1")
        self.capacity = int(capacity)
        self.enabled = bool(enabled)
        self.stats = FrontendCacheStats()
        self._entries: "OrderedDict[tuple, object]" = OrderedDict()
        self._lock = threading.Lock()

    # -- generic store ------------------------------------------------------

    def cached(self, key: tuple, compute: Callable[[], object]) -> object:
        """Return the memoized value for ``key``, computing it on a miss."""
        if not self.enabled:
            return compute()
        with self._lock:
            if key in self._entries:
                self.stats.hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self.stats.misses += 1
        value = compute()
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return value

    # -- canonical users ----------------------------------------------------

    def parse(
        self,
        source: str,
        filename: str = "<source>",
        defines: Optional[Dict[str, str]] = None,
    ) -> ast.TranslationUnit:
        """Preprocess/tokenize/parse ``source``, memoized by content hash."""
        key = (
            "parse",
            source_fingerprint(source),
            filename,
            tuple(sorted((defines or {}).items())),
        )
        return self.cached(
            key, lambda: parse_source(source, filename=filename, defines=defines)
        )

    # -- management ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self, reset_stats: bool = True) -> None:
        with self._lock:
            self._entries.clear()
            if reset_stats:
                self.stats.reset()

    def set_capacity(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("frontend cache capacity must be at least 1")
        with self._lock:
            self.capacity = int(capacity)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Pass-through mode: every call recomputes, nothing is stored."""
        self.enabled = False


def _environment_settings() -> Dict[str, object]:
    """The current env-var view of the cache configuration."""
    return {
        "capacity": int(os.environ.get("REPRO_FRONTEND_CACHE_CAPACITY", "512")),
        "enabled": os.environ.get("REPRO_FRONTEND_CACHE", "1").lower()
        not in ("0", "off", "false"),
    }


def _from_environment() -> FrontendCache:
    settings = _environment_settings()
    return FrontendCache(
        capacity=settings["capacity"], enabled=settings["enabled"]
    )


_GLOBAL_CACHE: Optional[FrontendCache] = None
_GLOBAL_LOCK = threading.Lock()
#: The env settings last applied to the global instance.  Only *changes*
#: relative to this snapshot are re-applied, so an unchanged environment
#: never clobbers programmatic set_capacity()/disable() calls.
_GLOBAL_ENV: Optional[Dict[str, object]] = None


def frontend_cache() -> FrontendCache:
    """The process-wide frontend memo (created on first use).

    ``REPRO_FRONTEND_CACHE`` / ``REPRO_FRONTEND_CACHE_CAPACITY`` are
    re-read on every call; a variable whose value changed since it was
    last applied reconfigures the live instance (per field), so env
    reconfiguration works mid-process — including between ``disable()`` /
    re-enable cycles — without discarding the cache or its stats.
    """
    global _GLOBAL_CACHE, _GLOBAL_ENV
    with _GLOBAL_LOCK:
        settings = _environment_settings()
        if _GLOBAL_CACHE is None:
            _GLOBAL_CACHE = FrontendCache(
                capacity=settings["capacity"], enabled=settings["enabled"]
            )
        else:
            assert _GLOBAL_ENV is not None
            if settings["capacity"] != _GLOBAL_ENV["capacity"]:
                _GLOBAL_CACHE.set_capacity(settings["capacity"])
            if settings["enabled"] != _GLOBAL_ENV["enabled"]:
                if settings["enabled"]:
                    _GLOBAL_CACHE.enable()
                else:
                    _GLOBAL_CACHE.disable()
        _GLOBAL_ENV = settings
    return _GLOBAL_CACHE
